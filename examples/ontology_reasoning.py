"""Ontology-based query answering: DL axioms -> GTGDs -> Datalog rewriting.

The paper derives its benchmark GTGDs from OWL ontologies using the standard
translation (classes = unary relations, properties = binary relations).  This
example follows the same pipeline on a small hand-written university ontology:

1. write DL axioms (including a nested existential that exercises the
   structural transformation),
2. translate them into GTGDs,
3. rewrite with our algorithms and with the KAON2-style baseline, and
4. answer queries over an ABox (base instance).

Run with::

    python examples/ontology_reasoning.py
"""

from __future__ import annotations

from repro import ConjunctiveQuery, KnowledgeBase, Variable, parse_facts
from repro.dl import (
    Conjunction,
    Existential,
    Kaon2Baseline,
    NamedClass,
    Ontology,
    PropertyDomain,
    PropertyRange,
    SubClassOf,
    SubPropertyOf,
    structural_transformation,
    translate_ontology,
)
from repro.logic.atoms import Predicate


def build_ontology() -> Ontology:
    """A small university ontology in the GTGD-translatable DL fragment."""
    professor = NamedClass("Professor")
    lecturer = NamedClass("Lecturer")
    staff = NamedClass("AcademicStaff")
    course = NamedClass("Course")
    graduate_course = NamedClass("GraduateCourse")
    student = NamedClass("Student")
    person = NamedClass("Person")
    department = NamedClass("Department")

    axioms = (
        # taxonomy
        SubClassOf(professor, staff),
        SubClassOf(lecturer, staff),
        SubClassOf(staff, person),
        SubClassOf(student, person),
        SubClassOf(graduate_course, course),
        # every professor teaches some course
        SubClassOf(professor, Existential("teaches", course)),
        # everyone who teaches something is academic staff
        SubClassOf(Existential("teaches", course), staff),
        # every graduate course is taught by a professor of some department
        # (nested existential: exercised by the structural transformation)
        SubClassOf(
            graduate_course,
            Existential("taughtBy", Conjunction((professor,
                        Existential("memberOf", department)))),
        ),
        # property semantics
        PropertyDomain("teaches", staff),
        PropertyRange("teaches", course),
        PropertyDomain("enrolledIn", student),
        PropertyRange("enrolledIn", course),
        SubPropertyOf("lectures", "teaches"),
    )
    return Ontology(axioms, name="university")


ABOX = """
Professor(turing).
Lecturer(hopper).
lectures(hopper, logic101).
GraduateCourse(complexity401).
enrolledIn(ada, complexity401).
"""


def main() -> None:
    ontology = build_ontology()
    print(f"Ontology '{ontology.name}' with {len(ontology)} axioms, "
          f"{len(ontology.class_names())} classes, "
          f"{len(ontology.property_names())} properties.")

    transformed = structural_transformation(ontology)
    print(f"Structural transformation: {len(ontology)} -> {len(transformed)} axioms.")

    tgds = translate_ontology(transformed)
    print(f"Translation produced {len(tgds)} guarded TGDs.\n")

    instance = parse_facts(ABOX)

    results = {}
    for algorithm in ("exbdr", "skdr", "hypdr"):
        kb = KnowledgeBase.compile(tgds, algorithm=algorithm)
        results[algorithm] = kb
        print(
            f"[{algorithm:6s}] {kb.rewriting.output_size:3d} Datalog rules, "
            f"{kb.rewriting.statistics.derived:4d} derived clauses, "
            f"{kb.rewriting.statistics.elapsed_seconds:.3f}s"
        )

    baseline = Kaon2Baseline()
    baseline_result = baseline.rewrite_ontology(ontology)
    print(
        f"[kaon2 ] {baseline_result.output_size:3d} Datalog rules "
        f"(structural transformation + resolution baseline)\n"
    )

    kb = results["hypdr"]
    x = Variable("x")
    queries = {
        "all persons": ConjunctiveQuery((x,), (Predicate("Person", 1)(x),)),
        "all academic staff": ConjunctiveQuery((x,), (Predicate("AcademicStaff", 1)(x),)),
        "all courses": ConjunctiveQuery((x,), (Predicate("Course", 1)(x),)),
        "all students": ConjunctiveQuery((x,), (Predicate("Student", 1)(x),)),
    }
    for label, query in queries.items():
        answers = kb.answer(query, instance)
        rendered = ", ".join(sorted(str(term) for (term,) in answers)) or "(none)"
        print(f"{label:22s}: {rendered}")

    # cross-check: every algorithm returns the same certain answers
    reference = results["hypdr"].certain_base_facts(instance)
    for knowledge_base in results.values():
        assert knowledge_base.certain_base_facts(instance) == reference
    print("\nAll algorithms agree on the certain answers.")


if __name__ == "__main__":
    main()
