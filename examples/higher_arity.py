"""Higher-arity GTGDs: the arity blow-up of Section 7.4.

KAON2-style DL reasoners only handle relations of arity at most two; the
GTGD algorithms of the paper have no such restriction.  This example takes
the CIM GTGDs, blows their relation arity up by a configurable factor (the
paper uses 5, producing arity-10 relations), and shows that ExbDR/SkDR/HypDR
still compute correct rewritings while the KAON2 baseline has to give up.

Run with::

    python examples/higher_arity.py [factor]
"""

from __future__ import annotations

import sys
import time

from repro import KnowledgeBase
from repro.dl import Kaon2Baseline, UnsupportedArityError
from repro.logic.tgd import bwidth, head_normalize, hwidth
from repro.workloads.blowup import blow_up_arity
from repro.workloads.families import cim_example
from repro.workloads.instances import generate_instance


def main(factor: int = 3) -> None:
    tgds, _ = cim_example()
    blown_up = blow_up_arity(tgds, factor=factor, extra_atom_probability=0.4, seed=3)

    arities = sorted(
        {atom.predicate.arity for tgd in blown_up for atom in tgd.body + tgd.head}
    )
    print(
        f"Blew up {len(tgds)} CIM GTGDs by a factor of {factor}: "
        f"relation arities are now {arities}, "
        f"body width {bwidth(head_normalize(blown_up))}, "
        f"head width {hwidth(head_normalize(blown_up))}.\n"
    )

    instance = generate_instance(blown_up, fact_count=60, constant_count=25, seed=1)

    answers = {}
    for algorithm in ("exbdr", "skdr", "hypdr"):
        start = time.perf_counter()
        kb = KnowledgeBase.compile(blown_up, algorithm=algorithm)
        elapsed = time.perf_counter() - start
        answers[algorithm] = kb.certain_base_facts(instance)
        print(
            f"[{algorithm:6s}] {kb.rewriting.output_size:3d} Datalog rules in "
            f"{elapsed:.3f}s; {len(answers[algorithm])} certain base facts"
        )

    try:
        Kaon2Baseline().rewrite_tgds(blown_up)
        print("[kaon2 ] unexpectedly accepted a higher-arity input")
    except UnsupportedArityError as error:
        print(f"[kaon2 ] refused the input: {error}")

    assert answers["exbdr"] == answers["skdr"] == answers["hypdr"]
    print("\nAll three GTGD algorithms agree on the certain answers.")


if __name__ == "__main__":
    blow_up_factor = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    main(blow_up_factor)
