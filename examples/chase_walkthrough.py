"""A walkthrough of the tree-like chase on the paper's running example.

The script replays (a prefix of) the chase sequence of Figure 1 step by step,
printing every chase tree, then extracts the loops (Definition 4.4) and shows
the "shortcut" Datalog rules (14)-(16) that each rewriting algorithm derives
for them.

Run with::

    python examples/chase_walkthrough.py
"""

from __future__ import annotations

from repro.chase.sequence import ChaseSequence, ChaseStepRecord
from repro.chase.tree import ChaseTree
from repro.logic.atoms import Predicate
from repro.logic.printer import format_datalog_program
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Null, Variable
from repro.logic.tgd import head_normalize, program_constants
from repro.rewriting import rewrite
from repro.workloads.families import running_example


def main() -> None:
    tgds, instance = running_example()
    tgds = head_normalize(tgds)
    sigma_constants = program_constants(tgds)

    print("Input GTGDs (8)-(13):")
    for tgd in tgds:
        print(f"  {tgd}")
    print(f"\nBase instance: {sorted(str(fact) for fact in instance)}\n")

    a, b = Constant("a"), Constant("b")
    x1, x2 = Variable("x1"), Variable("x2")
    B, D, E = Predicate("B", 2), Predicate("D", 2), Predicate("E", 1)

    tgd8 = next(t for t in tgds if t.is_non_full and t.head[0].predicate == B)
    tgd9 = next(t for t in tgds if t.is_full and t.head[0].predicate == D)
    tgd10 = next(t for t in tgds if t.is_full and t.head[0].predicate == E)

    nulls = iter([Null(1)])
    sequence = ChaseSequence(ChaseTree.initial(instance))
    tree = sequence.trees[0]
    root = tree.root_id

    print("T0 (the base instance at the root):")
    print(tree.pretty(), "\n")

    tree, child = tree.apply_non_full_step(
        root, tgd8, Substitution({x1: a, x2: b}), sigma_constants, lambda: next(nulls)
    )
    sequence.record(tree, ChaseStepRecord(kind="non_full", vertex_id=root, tgd=tgd8,
                                          created_vertex_id=child))
    print("T1 (chase step with GTGD (8): a fresh child holds B(a,n1), C(a,n1)):")
    print(tree.pretty(), "\n")

    tree = tree.apply_full_step(child, tgd9, Substitution({x1: a, x2: Null(1)}))
    sequence.record(tree, ChaseStepRecord(kind="full", vertex_id=child, tgd=tgd9))
    print("T2 (chase step with GTGD (9) derives D(a,n1) in the child):")
    print(tree.pretty(), "\n")

    tree = tree.apply_full_step(child, tgd10, Substitution({x1: a, x2: Null(1)}))
    sequence.record(tree, ChaseStepRecord(kind="full", vertex_id=child, tgd=tgd10))
    print("T3 (chase step with GTGD (10) derives E(a) in the child):")
    print(tree.pretty(), "\n")

    tree = tree.apply_propagation_step(child, root, [E(a)], sigma_constants)
    sequence.record(
        tree,
        ChaseStepRecord(kind="propagation", vertex_id=child, propagated=(E(a),),
                        target_vertex_id=root),
    )
    print("T4 (propagation step copies E(a) back to the root):")
    print(tree.pretty(), "\n")

    print(f"The sequence is one-pass: {sequence.is_one_pass(sigma_constants)}")
    for loop in sequence.loops():
        print(
            f"Loop at v{loop.vertex_id}: length {loop.length}, "
            f"input {sorted(str(f) for f in sequence.loop_input_facts(loop))}, "
            f"output fact {loop.output_fact}"
        )

    print("\nThe rewriting algorithms derive 'shortcut' rules for such loops.")
    for algorithm in ("exbdr", "skdr", "hypdr"):
        result = rewrite(running_example()[0], algorithm=algorithm)
        print(f"\n{algorithm} rewriting ({result.output_size} Datalog rules):")
        print(format_datalog_program(
            sorted(result.datalog_rules, key=lambda rule: str(rule))
        ))


if __name__ == "__main__":
    main()
