"""Quickstart: rewriting the CIM example from the paper's introduction.

The script

1. parses the GTGDs (1)-(4) and the facts (5)-(6) of Example 1.1,
2. computes a Datalog rewriting with each algorithm,
3. materializes the rewriting on the base instance, and
4. answers the user's question from the introduction: "list all pieces of
   equipment known to the system" — which must return both sw1 and sw2 even
   though neither is explicitly classified as equipment.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ConjunctiveQuery, KnowledgeBase, Variable, parse_program
from repro.logic import format_datalog_program, format_fact
from repro.logic.atoms import Predicate

CIM_PROGRAM = """
% GTGDs (1)-(4): a fragment of the IEC Common Information Model
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
ACTerminal(?x) -> exists ?y. partOf(?x, ?y), ACEquipment(?y).

% facts (5)-(6): one source knows both switches, the other only sw1's terminal
ACEquipment(sw1).
ACEquipment(sw2).
hasTerminal(sw1, trm1).
ACTerminal(trm1).
"""


def main() -> None:
    program = parse_program(CIM_PROGRAM)
    print(f"Parsed {len(program.tgds)} GTGDs and {len(program.instance)} base facts.\n")

    for algorithm in ("exbdr", "skdr", "hypdr"):
        kb = KnowledgeBase.compile(program.tgds, algorithm=algorithm)
        stats = kb.rewriting.statistics
        print(
            f"[{algorithm:6s}] rewriting has {kb.rewriting.output_size} Datalog rules "
            f"(derived {stats.derived} clauses in {stats.elapsed_seconds:.3f}s)"
        )

    # use the default algorithm (HypDR) for query answering
    kb = KnowledgeBase.compile(program.tgds)
    print("\nDatalog rewriting produced by HypDR:")
    print(format_datalog_program(kb.rewriting.datalog_rules))

    x = Variable("x")
    equipment_query = ConjunctiveQuery((x,), (Predicate("Equipment", 1)(x),))
    answers = kb.answer(equipment_query, program.instance)
    print("\nAll pieces of equipment known to the system:")
    for (term,) in sorted(answers, key=str):
        print(f"  {term}")

    print("\nAll entailed base facts:")
    for fact in sorted(kb.certain_base_facts(program.instance), key=str):
        print(f"  {format_fact(fact)}")


if __name__ == "__main__":
    main()
