"""Session demo: compile → save → load → session → incremental adds → batch.

The script walks the full service-oriented lifecycle of the API:

1. compile the CIM GTGDs once (the expensive saturation),
2. save the compiled knowledge base to a versioned JSON artifact,
3. load it back — the way a fleet of query servers would start up,
4. open a :class:`repro.ReasoningSession` on the initial base facts,
5. stream two incremental fact deltas through semi-naive delta propagation
   (no re-materialization), and
6. answer a batch of queries against the live materialization.

Run with::

    python examples/session_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import KnowledgeBase, parse_program, parse_query
from repro.kb import compile_cache_stats

CIM_DEPENDENCIES = """
% a fragment of the IEC Common Information Model (Example 1.1)
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

INITIAL_FACTS = """
ACEquipment(sw1).
hasTerminal(sw1, trm1).
ACTerminal(trm1).
"""

DELTAS = (
    "ACEquipment(sw2).",
    "ACEquipment(sw3). hasTerminal(sw3, trm7). ACTerminal(trm7).",
)

QUERIES = (
    "Equipment(?x)",
    "Equipment(?x), hasTerminal(?x, ?y)",
)


def main() -> None:
    dependencies = parse_program(CIM_DEPENDENCIES)

    # 1. compile once — repeated compiles of the same Σ hit the cache
    kb = KnowledgeBase.compile(dependencies.tgds, algorithm="hypdr")
    KnowledgeBase.compile(dependencies.tgds, algorithm="hypdr")
    print(
        f"compiled {len(kb.tgds)} GTGDs into {kb.rewriting.output_size} Datalog "
        f"rules; compile cache: {compile_cache_stats()}"
    )

    # 2./3. save and load the compiled artifact (what a query server ships)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cim.kb.json"
        kb.save(path)
        served = KnowledgeBase.load(path)
        print(f"saved + loaded {path.name}: fingerprint {served.fingerprint[:12]}")

    # 4. open a long-lived session on the initial facts
    session = served.session(parse_program(INITIAL_FACTS).instance)
    print(f"session opened: {session}")

    # 5. stream deltas — each one is propagated semi-naively, not re-run
    for delta_text in DELTAS:
        delta = parse_program(delta_text).instance
        update = session.add_facts(delta)
        print(
            f"  delta of {len(delta)}: +{update.added_facts} facts, "
            f"{update.derived_count} inferred in {update.rounds} rounds"
        )

    # 6. answer a batch of queries against the live materialization
    queries = [parse_query(text) for text in QUERIES]
    for query, answers in zip(queries, session.answer_many(queries)):
        print(f"{query}")
        for row in sorted(answers, key=str):
            print("   " + ", ".join(str(term) for term in row))

    # snapshots are decoupled from later updates
    snapshot = session.snapshot()
    session.add_facts(parse_program("ACEquipment(sw99).").instance)
    print(
        f"snapshot holds {len(snapshot)} facts; live session grew to "
        f"{len(session)} after one more delta"
    )


if __name__ == "__main__":
    main()
