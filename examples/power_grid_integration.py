"""Data-integration scenario: completing an incomplete power-grid dataset.

The introduction of the paper motivates GTGDs with data integration: data
sources are incomplete (some switches have no recorded terminals), and the
dependencies complete the data so that queries return every certain answer.

This example scales that scenario up: it generates a power grid with hundreds
of pieces of equipment, only some of which have terminals recorded, compiles
the CIM-style GTGDs once, and then answers several monitoring queries over the
completed data — comparing the answers with and without reasoning.

Run with::

    python examples/power_grid_integration.py [equipment_count]
"""

from __future__ import annotations

import sys
import time

from repro import ConjunctiveQuery, KnowledgeBase, Variable
from repro.datalog import FactStore, evaluate_query
from repro.logic.atoms import Predicate
from repro.workloads.families import cim_example
from repro.workloads.instances import generate_power_grid_instance


def main(equipment_count: int = 200) -> None:
    tgds, _ = cim_example()
    instance = generate_power_grid_instance(
        equipment_count=equipment_count, terminal_fraction=0.6, seed=7
    )
    print(
        f"Generated a power grid with {equipment_count} pieces of AC equipment "
        f"({len(instance)} base facts); only ~60% have terminals recorded.\n"
    )

    start = time.perf_counter()
    kb = KnowledgeBase.compile(tgds, algorithm="hypdr")
    compile_time = time.perf_counter() - start
    print(
        f"Compiled the GTGDs into {kb.rewriting.output_size} Datalog rules "
        f"in {compile_time:.3f}s (done once, reused for every instance).\n"
    )

    start = time.perf_counter()
    materialization = kb.materialize(instance)
    materialize_time = time.perf_counter() - start
    print(
        f"Materialization: {len(instance)} input facts -> "
        f"{len(materialization)} facts in {materialize_time:.3f}s "
        f"({materialization.rounds} semi-naive rounds).\n"
    )

    x = Variable("x")
    equipment = Predicate("Equipment", 1)
    equipment_query = ConjunctiveQuery((x,), (equipment(x),))

    # without reasoning: evaluate the query directly on the base instance
    raw_answers = evaluate_query(equipment_query, FactStore(instance))
    # with reasoning: evaluate on the materialized rewriting
    certain_answers = evaluate_query(equipment_query, materialization)

    print("Query: list all pieces of equipment")
    print(f"  answers without reasoning: {len(raw_answers)}")
    print(f"  certain answers with GTGD reasoning: {len(certain_answers)}")
    print(
        "  -> the dependencies recovered "
        f"{len(certain_answers) - len(raw_answers)} pieces of equipment that no "
        "source classified explicitly.\n"
    )

    terminal = Predicate("Terminal", 1)
    terminal_query = ConjunctiveQuery((x,), (terminal(x),))
    print("Query: list all terminals")
    print(f"  answers without reasoning: "
          f"{len(evaluate_query(terminal_query, FactStore(instance)))}")
    print(f"  certain answers with reasoning: "
          f"{len(evaluate_query(terminal_query, materialization))}")

    # a join query: equipment together with one of its recorded terminals
    y = Variable("y")
    has_terminal = Predicate("hasTerminal", 2)
    join_query = ConjunctiveQuery((x, y), (equipment(x), has_terminal(x, y)))
    join_answers = evaluate_query(join_query, materialization)
    print(
        "\nQuery: equipment joined with its recorded terminals "
        f"-> {len(join_answers)} answer pairs"
    )


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    main(count)
