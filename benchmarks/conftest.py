"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 7).  The scale is controlled by environment variables so that a
default run finishes in minutes on a laptop while still reproducing the shape
of the paper's results; raising the knobs approaches the paper's scale.

* ``REPRO_BENCH_SUITE_SIZE``   — number of synthetic ontology inputs (default 18)
* ``REPRO_BENCH_TIMEOUT``      — per-input timeout in seconds (default 8)
* ``REPRO_BENCH_MAX_AXIOMS``   — number of axioms of the largest input (default 180)
* ``REPRO_BENCH_RESULTS_DIR``  — where textual reports are written
                                 (default ``benchmarks/results``)

Reports are printed to stdout (run pytest with ``-s`` to see them) and always
written to the results directory, so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.runner import BenchmarkRunner
from repro.workloads.ontology_suite import generate_suite

SUITE_SIZE = int(os.environ.get("REPRO_BENCH_SUITE_SIZE", "18"))
TIMEOUT_SECONDS = float(os.environ.get("REPRO_BENCH_TIMEOUT", "8"))
MAX_AXIOMS = int(os.environ.get("REPRO_BENCH_MAX_AXIOMS", "180"))
RESULTS_DIR = Path(
    os.environ.get(
        "REPRO_BENCH_RESULTS_DIR", Path(__file__).resolve().parent / "results"
    )
)


def write_report(name: str, text: str) -> Path:
    """Persist a textual report and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[report written to {path}]")
    return path


@pytest.fixture(scope="session")
def ontology_suite():
    """The shared synthetic ontology suite (stands in for the 428 ontologies)."""
    return generate_suite(
        count=SUITE_SIZE, seed=2022, min_axioms=12, max_axioms=MAX_AXIOMS
    )


@pytest.fixture(scope="session")
def benchmark_runner():
    return BenchmarkRunner(timeout_seconds=TIMEOUT_SECONDS, include_kaon2=True)


@pytest.fixture(scope="session")
def figure4_records(ontology_suite, benchmark_runner):
    """Figure 4 run records, computed once and shared by several benchmarks."""
    return benchmark_runner.run_suite(
        ontology_suite, algorithms=("exbdr", "skdr", "hypdr")
    )
