"""Standalone timing probe for the separation-families saturation workload.

Mirrors benchmarks/bench_separation_families.py without pytest so that the
wall time of the saturation loop itself can be measured before and after
optimizations.  Run with::

    PYTHONPATH=src python benchmarks/perf_baseline_probe.py
"""

from __future__ import annotations

import json
import time

from repro.rewriting import RewritingSettings
from repro.rewriting.exbdr import ExbDR
from repro.rewriting.hypdr import HypDR
from repro.rewriting.saturation import Saturation
from repro.rewriting.skdr import SkDR
from repro.workloads.families import (
    exbdr_blowup_family,
    hypdr_advantage_family,
    skdr_blowup_family,
)

NS = (2, 3, 4, 5)
RAW_SETTINGS = RewritingSettings(use_subsumption=False, use_lookahead=False)


def _clause_count(inference_cls, tgds) -> int:
    saturation = Saturation(inference_cls(RAW_SETTINGS))
    saturation.run(tgds)
    return len(saturation._worked_off)


def run_once() -> dict:
    timings = {}
    start_all = time.perf_counter()
    for n in NS:
        family_514 = exbdr_blowup_family(n)
        family_515 = skdr_blowup_family(n)
        family_520 = hypdr_advantage_family(n)
        start = time.perf_counter()
        _clause_count(ExbDR, family_514)
        _clause_count(SkDR, family_514)
        _clause_count(ExbDR, family_515)
        _clause_count(SkDR, family_515)
        _clause_count(SkDR, family_520)
        _clause_count(HypDR, family_520)
        timings[f"n={n}"] = time.perf_counter() - start
    timings["total"] = time.perf_counter() - start_all
    return timings


if __name__ == "__main__":
    runs = [run_once() for _ in range(3)]
    best = {key: min(run[key] for run in runs) for key in runs[0]}
    print(json.dumps(best, indent=2))
