"""Experiment E6 — Section 7.2 ablation: impact of the structural transformation.

KAON2 simplifies ontology axioms with a structural transformation before
translating them into GTGDs; the paper reports that feeding equally
transformed axioms to its own algorithms improved SkDR by an order of
magnitude on some ontologies and never hurt HypDR.  This benchmark generates
ontologies with a raised fraction of nested existentials, rewrites their
translations with and without the transformation, and reports the per-
algorithm time and derivation ratios.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.dl.structural import structural_transformation
from repro.dl.translate import translate_ontology
from repro.harness.reports import format_table
from repro.rewriting import RewritingSettings, rewrite
from repro.workloads.ontology_suite import OntologyProfile, generate_input

from conftest import TIMEOUT_SECONDS, write_report

INPUT_COUNT = int(os.environ.get("REPRO_BENCH_STRUCTURAL_INPUTS", "6"))
ALGORITHMS = ("skdr", "hypdr")


@pytest.fixture(scope="module")
def nested_ontologies():
    """Ontologies with many nested existentials (where the transformation matters)."""
    inputs = []
    for index in range(INPUT_COUNT):
        profile = OntologyProfile(
            class_count=20 + 6 * index,
            property_count=6,
            axiom_count=40 + 20 * index,
            existential_fraction=0.35,
            nested_existential_fraction=0.3,
            seed=900 + index,
        )
        inputs.append(generate_input(profile, identifier=f"nested-{index:02d}"))
    return tuple(inputs)


def _rewrite_timed(tgds, algorithm):
    settings = RewritingSettings(timeout_seconds=TIMEOUT_SECONDS)
    start = time.perf_counter()
    result = rewrite(tgds, algorithm=algorithm, settings=settings)
    return result, time.perf_counter() - start


def test_structural_transformation_report(nested_ontologies, benchmark):
    def collect():
        collected = []
        for algorithm in ALGORITHMS:
            raw_time = transformed_time = 0.0
            raw_derived = transformed_derived = 0
            for item in nested_ontologies:
                raw_result, raw_elapsed = _rewrite_timed(item.tgds, algorithm)
                transformed_tgds = translate_ontology(
                    structural_transformation(item.ontology)
                )
                transformed_result, transformed_elapsed = _rewrite_timed(
                    transformed_tgds, algorithm
                )
                raw_time += raw_elapsed
                transformed_time += transformed_elapsed
                raw_derived += raw_result.statistics.derived
                transformed_derived += transformed_result.statistics.derived
            collected.append(
                [
                    algorithm,
                    round(raw_time, 3),
                    round(transformed_time, 3),
                    raw_derived,
                    transformed_derived,
                    round(raw_time / max(transformed_time, 1e-9), 2),
                ]
            )
        return collected

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report = (
        "Section 7.2 ablation: impact of the structural transformation\n"
        + format_table(
            [
                "Algorithm",
                "Time raw (s)",
                "Time transformed (s)",
                "Derived raw",
                "Derived transformed",
                "Speed-up",
            ],
            rows,
        )
    )
    write_report("ablation_structural", report)
    assert rows, "no results collected"


@pytest.mark.parametrize("transformed", [False, True])
def test_skdr_with_and_without_structural_transformation(
    nested_ontologies, benchmark, transformed
):
    item = nested_ontologies[0]
    tgds = (
        translate_ontology(structural_transformation(item.ontology))
        if transformed
        else item.tgds
    )
    result = benchmark(_rewrite_timed, tgds, "skdr")
    assert result[0].datalog_rules is not None
