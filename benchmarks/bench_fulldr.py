"""Experiment E8 — Appendix E: FullDR is not competitive.

The paper implemented FullDR with the same subsumption and indexing machinery
but found it uncompetitive (it timed out on 173 ontologies, more than any
other algorithm) because its (COMPOSE) and (PROPAGATE) variants enumerate
bounded substitutions instead of most general unifiers — Example E.3 shows
2401 candidate substitutions for a single premise pair.  This benchmark
contrasts FullDR with the other algorithms on Example E.3 and on the smallest
suite inputs, reporting derivation counts, output sizes, and timeouts.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.harness.reports import format_table
from repro.rewriting import RewritingSettings, rewrite
from repro.workloads.families import fulldr_example_e3, running_example

from conftest import TIMEOUT_SECONDS, write_report

SUBSET_SIZE = int(os.environ.get("REPRO_BENCH_FULLDR_INPUTS", "4"))
ALGORITHMS = ("fulldr", "exbdr", "skdr", "hypdr")


def _run(tgds, algorithm):
    settings = RewritingSettings(timeout_seconds=TIMEOUT_SECONDS)
    start = time.perf_counter()
    result = rewrite(tgds, algorithm=algorithm, settings=settings)
    return result, time.perf_counter() - start


def test_fulldr_comparison_report(ontology_suite, benchmark):
    inputs = {
        "example-4.3": running_example()[0],
        "example-E.3": fulldr_example_e3(),
    }
    for item in sorted(ontology_suite, key=lambda entry: entry.size)[:SUBSET_SIZE]:
        inputs[item.identifier] = item.tgds

    def collect():
        collected_rows = []
        fulldr_total = 0
        others_total = 0
        for input_id, tgds in inputs.items():
            per_algorithm = {}
            for algorithm in ALGORITHMS:
                result, elapsed = _run(tgds, algorithm)
                per_algorithm[algorithm] = (result, elapsed)
            fulldr_result, fulldr_time = per_algorithm["fulldr"]
            best_other = min(
                (per_algorithm[name] for name in ("exbdr", "skdr", "hypdr")),
                key=lambda pair: pair[0].statistics.derived,
            )
            fulldr_total += fulldr_result.statistics.derived
            others_total += best_other[0].statistics.derived
            collected_rows.append(
                [
                    input_id,
                    fulldr_result.statistics.derived,
                    best_other[0].statistics.derived,
                    round(fulldr_time, 3),
                    round(best_other[1], 3),
                    "timeout" if not fulldr_result.completed else "ok",
                ]
            )
        return collected_rows, fulldr_total, others_total

    rows, fulldr_derived_total, others_best_derived_total = benchmark.pedantic(
        collect, rounds=1, iterations=1
    )
    report = "Appendix E: FullDR versus the main algorithms\n" + format_table(
        [
            "Input",
            "FullDR derived",
            "Best other derived",
            "FullDR time (s)",
            "Best other time (s)",
            "FullDR status",
        ],
        rows,
    )
    write_report("fulldr_comparison", report)
    # the headline claim: FullDR derives (much) more than the best competitor
    assert fulldr_derived_total > others_best_derived_total


@pytest.mark.parametrize("algorithm", ["fulldr", "hypdr"])
def test_example_e3_time(benchmark, algorithm):
    """pytest-benchmark rows for the Example E.3 family."""
    tgds = fulldr_example_e3()
    result, _ = benchmark(_run, tgds, algorithm)
    assert result.datalog_rules is not None
