"""Dependency-free timing probe for the chase engines.

Quick A/B loop for optimizing the delta-driven chase: runs the semi-naive
plan-based Skolem chase against the retained naive reference, and the
dirty-type worklist guarded engine against the retained recursive reference,
on the same ontology-suite workloads the ``skolem_chase`` / ``guarded_oracle``
perf scenarios record.  No pytest, no JSON — just wall times and the
``chase_plan`` counters, so a tight edit-measure loop stays a one-liner:

    PYTHONPATH=src python benchmarks/bench_chase_probe.py
    PYTHONPATH=src python benchmarks/bench_chase_probe.py --skip-guarded
    PYTHONPATH=src python benchmarks/bench_chase_probe.py --fact-count 300 --depth 3
"""

from __future__ import annotations

import argparse
import time


def probe_skolem(suite_size: int, max_axioms: int, fact_count: int, depth: int) -> None:
    from repro.chase.skolem_chase import SkolemChase
    from repro.workloads.instances import generate_instance
    from repro.workloads.ontology_suite import generate_suite

    print(f"== skolem chase (depth {depth}, {fact_count} facts) ==")
    suite = generate_suite(
        count=suite_size, seed=2022, min_axioms=10, max_axioms=max_axioms
    )
    semi_total = naive_total = 0.0
    for item in suite:
        instance = generate_instance(
            item.tgds,
            fact_count=fact_count,
            constant_count=max(20, fact_count // 4),
            seed=int(item.identifier),
        )
        chase = SkolemChase(item.tgds, max_term_depth=depth)
        start = time.perf_counter()
        semi = chase.run(instance)
        semi_seconds = time.perf_counter() - start
        start = time.perf_counter()
        naive = chase.run_naive_reference(instance)
        naive_seconds = time.perf_counter() - start
        agree = "ok" if semi.facts == naive.facts else "MISMATCH"
        semi_total += semi_seconds
        naive_total += naive_seconds
        print(
            f"  {item.identifier}: {len(semi.facts)} facts  "
            f"semi {semi_seconds:.3f}s  naive {naive_seconds:.3f}s  "
            f"({naive_seconds / semi_seconds:.1f}x)  [{agree}]"
        )
        print(f"    chase_plan: {semi.plan_stats}")
    if semi_total:
        print(
            f"  total: semi {semi_total:.3f}s  naive {naive_total:.3f}s  "
            f"speedup {naive_total / semi_total:.2f}x"
        )


def probe_guarded(suite_size: int, max_axioms: int, fact_count: int) -> None:
    from repro.chase.guarded_engine import (
        GuardedChaseReasoner,
        ReferenceGuardedReasoner,
    )
    from repro.workloads.instances import generate_instance
    from repro.workloads.ontology_suite import generate_suite

    print(f"== guarded oracle ({fact_count} facts) ==")
    suite = generate_suite(
        count=suite_size, seed=2022, min_axioms=10, max_axioms=max_axioms
    )
    worklist_total = naive_total = 0.0
    for item in suite:
        instance = generate_instance(
            item.tgds,
            fact_count=fact_count,
            constant_count=max(20, fact_count // 4),
            seed=int(item.identifier),
        )
        reasoner = GuardedChaseReasoner(item.tgds, max_types=500_000)
        start = time.perf_counter()
        facts = reasoner.entailed_base_facts(instance)
        worklist_seconds = time.perf_counter() - start
        reference = ReferenceGuardedReasoner(item.tgds, max_types=500_000)
        start = time.perf_counter()
        expected = reference.entailed_base_facts(instance)
        naive_seconds = time.perf_counter() - start
        agree = "ok" if facts == expected else "MISMATCH"
        worklist_total += worklist_seconds
        naive_total += naive_seconds
        print(
            f"  {item.identifier}: {len(facts)} base facts  "
            f"worklist {worklist_seconds:.3f}s  naive {naive_seconds:.3f}s  "
            f"({naive_seconds / worklist_seconds:.1f}x)  [{agree}]"
        )
        print(f"    chase_plan: {reasoner.stats.snapshot()}")
    if worklist_total:
        print(
            f"  total: worklist {worklist_total:.3f}s  naive {naive_total:.3f}s  "
            f"speedup {naive_total / worklist_total:.2f}x"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite-size", type=int, default=3)
    parser.add_argument("--max-axioms", type=int, default=22)
    parser.add_argument("--fact-count", type=int, default=150)
    parser.add_argument("--depth", type=int, default=2)
    parser.add_argument("--skip-skolem", action="store_true")
    parser.add_argument("--skip-guarded", action="store_true")
    args = parser.parse_args()
    if not args.skip_skolem:
        probe_skolem(args.suite_size, args.max_axioms, args.fact_count, args.depth)
    if not args.skip_guarded:
        probe_guarded(
            args.suite_size, args.max_axioms, min(args.fact_count, 110)
        )


if __name__ == "__main__":
    main()
