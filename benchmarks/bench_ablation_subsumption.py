"""Experiment E5 — Section 7.2 ablation: the impact of subsumption.

The paper reruns its algorithms with redundancy elimination disabled (the
containment-up-to-redundancy check of Algorithm 1 replaced by a plain
duplicate check) and reports that the number of derived TGDs/rules grows by
two orders of magnitude on average, with ExbDR and HypDR timing out on many
additional inputs while SkDR occasionally gets faster.  This benchmark reruns
a subset of the suite with subsumption on and off and reports the derivation
blow-up per algorithm.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.reports import format_table
from repro.rewriting import RewritingSettings, rewrite

from conftest import TIMEOUT_SECONDS, write_report

SUBSET_SIZE = int(os.environ.get("REPRO_BENCH_ABLATION_INPUTS", "8"))
ALGORITHMS = ("exbdr", "skdr", "hypdr")


@pytest.fixture(scope="module")
def ablation_inputs(ontology_suite):
    return sorted(ontology_suite, key=lambda item: item.size)[:SUBSET_SIZE]


def _run(tgds, algorithm, use_subsumption):
    settings = RewritingSettings(
        use_subsumption=use_subsumption, timeout_seconds=TIMEOUT_SECONDS
    )
    return rewrite(tgds, algorithm=algorithm, settings=settings)


def test_subsumption_ablation_report(ablation_inputs, benchmark):
    """Derived-clause counts and timeouts with and without redundancy elimination."""

    def collect():
        collected_rows = []
        collected_blowups = {}
        for algorithm in ALGORITHMS:
            derived_with = derived_without = 0
            timeouts_with = timeouts_without = 0
            for item in ablation_inputs:
                with_result = _run(item.tgds, algorithm, True)
                without_result = _run(item.tgds, algorithm, False)
                derived_with += with_result.statistics.derived
                derived_without += without_result.statistics.derived
                timeouts_with += int(not with_result.completed)
                timeouts_without += int(not without_result.completed)
            factor = derived_without / max(derived_with, 1)
            collected_blowups[algorithm] = factor
            collected_rows.append(
                [
                    algorithm,
                    derived_with,
                    derived_without,
                    round(factor, 2),
                    timeouts_with,
                    timeouts_without,
                ]
            )
        return collected_rows, collected_blowups

    rows, blowups = benchmark.pedantic(collect, rounds=1, iterations=1)
    report = "Section 7.2 ablation: impact of subsumption\n" + format_table(
        [
            "Algorithm",
            "Derived (with subsumption)",
            "Derived (without)",
            "Blow-up factor",
            "Timeouts (with)",
            "Timeouts (without)",
        ],
        rows,
    )
    write_report("ablation_subsumption", report)
    # disabling redundancy elimination must never reduce the number of derivations
    assert all(factor >= 1.0 for factor in blowups.values())


@pytest.mark.parametrize("use_subsumption", [True, False])
def test_hypdr_with_and_without_subsumption(ablation_inputs, benchmark, use_subsumption):
    """pytest-benchmark rows contrasting the two configurations on one input."""
    target = ablation_inputs[-1]
    result = benchmark(_run, target.tgds, "hypdr", use_subsumption)
    assert result.datalog_rules is not None
