"""Experiment E4 — Figure 5: GTGDs with relations of higher arity.

The paper blows up the arity of its ontology-derived GTGDs by a factor of
five (giving arity-ten relations) and reruns ExbDR, SkDR, and HypDR; KAON2 is
excluded because it only supports arity two.  This benchmark applies the same
transformation to a subset of the synthetic suite and regenerates the
Figure 5 report.  The paper's headline finding — HypDR, best on ontology
inputs, loses its edge on higher-arity inputs because selecting the many
premises of a hyperresolution step becomes harder — is visible in the
pairwise matrices at this scale too.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.reports import full_figure_report
from repro.harness.runner import BenchmarkRunner
from repro.harness.stats import summarize
from repro.workloads.blowup import blow_up_arity
from repro.workloads.ontology_suite import BenchmarkInput

from conftest import TIMEOUT_SECONDS, write_report

BLOWUP_FACTOR = int(os.environ.get("REPRO_BENCH_BLOWUP_FACTOR", "5"))
SUBSET_SIZE = int(os.environ.get("REPRO_BENCH_BLOWUP_INPUTS", "10"))


@pytest.fixture(scope="module")
def blown_up_suite(ontology_suite):
    """Arity-blown-up versions of the smaller suite inputs."""
    subset = sorted(ontology_suite, key=lambda item: item.size)[:SUBSET_SIZE]
    blown = []
    for index, item in enumerate(subset):
        blown.append(
            BenchmarkInput(
                identifier=f"blowup-{item.identifier}",
                ontology=item.ontology,
                tgds=blow_up_arity(
                    item.tgds,
                    factor=BLOWUP_FACTOR,
                    extra_atom_probability=0.3,
                    seed=index,
                ),
                profile=item.profile,
            )
        )
    return tuple(blown)


def test_figure5_report(blown_up_suite, benchmark):
    """Regenerate the Figure 5 tables (ExbDR/SkDR/HypDR only, no KAON2)."""
    runner = BenchmarkRunner(timeout_seconds=TIMEOUT_SECONDS, include_kaon2=False)
    records = benchmark.pedantic(
        runner.run_suite,
        args=(blown_up_suite,),
        kwargs={"algorithms": ("exbdr", "skdr", "hypdr")},
        rounds=1,
        iterations=1,
    )
    report = full_figure_report(
        records,
        f"Figure 5: Results for TGDs with Higher-Arity Relations "
        f"(blow-up factor {BLOWUP_FACTOR})",
    )
    write_report("figure5_higher_arity", report)
    summaries = {summary.algorithm: summary for summary in summarize(records)}
    assert set(summaries) == {"exbdr", "skdr", "hypdr"}
    # at least one algorithm must process at least one input at this scale
    assert any(summary.processed_inputs > 0 for summary in summaries.values())


@pytest.mark.parametrize("algorithm", ["exbdr", "skdr", "hypdr"])
def test_single_blown_up_input_time(blown_up_suite, benchmark, algorithm):
    """pytest-benchmark rows: one small higher-arity input per algorithm."""
    runner = BenchmarkRunner(timeout_seconds=TIMEOUT_SECONDS, include_kaon2=False)
    target = blown_up_suite[0]
    record = benchmark(runner.run_algorithm, algorithm, target)
    assert record.algorithm == algorithm


def test_blowup_preserves_guardedness(blown_up_suite, benchmark):
    from repro.logic.tgd import all_guarded

    def check_all():
        return all(all_guarded(item.tgds) for item in blown_up_suite)

    assert benchmark.pedantic(check_all, rounds=1, iterations=1)
