"""Experiment E1 — Table 1: "Input GTGDs at a Glance".

The paper summarizes its 428 ontology-derived inputs by the minimum, maximum,
average, and median numbers of full and non-full TGDs.  This benchmark
generates the synthetic stand-in suite, prints the same table, and times both
suite generation and the per-input head normalization that the statistics are
based on.
"""

from __future__ import annotations

from repro.harness.reports import table1_report
from repro.logic.tgd import head_normalize, split_full_non_full
from repro.workloads.ontology_suite import generate_suite, suite_statistics

from conftest import MAX_AXIOMS, SUITE_SIZE, write_report


def test_table1_report(ontology_suite, benchmark):
    """Regenerate Table 1 over the synthetic suite."""
    statistics = benchmark(suite_statistics, ontology_suite)
    report = table1_report(statistics, len(ontology_suite))
    write_report("table1_inputs", report)
    assert statistics["full"]["max"] >= statistics["full"]["min"]
    assert statistics["non_full"]["max"] >= 1


def test_suite_generation_time(benchmark):
    """Time the generation of a small suite (workload generator throughput)."""
    suite = benchmark(
        generate_suite, count=min(SUITE_SIZE, 12), seed=7, min_axioms=12,
        max_axioms=min(MAX_AXIOMS, 120),
    )
    assert len(suite) == min(SUITE_SIZE, 12)


def test_head_normalization_of_largest_input(ontology_suite, benchmark):
    """Time head normalization, the preprocessing step shared by all algorithms."""
    largest = max(ontology_suite, key=lambda item: item.size)
    normalized = benchmark(head_normalize, largest.tgds)
    full, non_full = split_full_non_full(normalized)
    assert len(full) + len(non_full) == len(normalized)
