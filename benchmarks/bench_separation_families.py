"""Experiment E7 — the exponential separation families of Propositions 5.14, 5.15, 5.20.

The paper proves three pairwise separations between its algorithms:

* Proposition 5.14 — ExbDR derives O(2^n) times more TGDs than SkDR derives rules;
* Proposition 5.15 — SkDR derives O(2^n) times more rules than ExbDR derives TGDs;
* Proposition 5.20 — SkDR derives O(2^n) more rules than HypDR.

This benchmark instantiates each family for growing n, counts the clauses
each algorithm retains (with redundancy elimination disabled, as the
propositions count raw derivations), and prints the growth table, confirming
the exponential-versus-linear shapes.
"""

from __future__ import annotations

import pytest

from repro.harness.reports import format_table
from repro.rewriting import RewritingSettings
from repro.rewriting.exbdr import ExbDR
from repro.rewriting.hypdr import HypDR
from repro.rewriting.saturation import Saturation
from repro.rewriting.skdr import SkDR
from repro.workloads.families import (
    exbdr_blowup_family,
    hypdr_advantage_family,
    skdr_blowup_family,
)

from conftest import write_report

NS = (2, 3, 4, 5)
RAW_SETTINGS = RewritingSettings(use_subsumption=False, use_lookahead=False)


def _clause_count(inference_cls, tgds) -> int:
    saturation = Saturation(inference_cls(RAW_SETTINGS))
    saturation.run(tgds)
    return len(saturation._worked_off)


def test_separation_growth_report(benchmark):
    def collect():
        collected_rows = []
        collected_growth = {"5.14": [], "5.15": [], "5.20": []}
        for n in NS:
            family_514 = exbdr_blowup_family(n)
            family_515 = skdr_blowup_family(n)
            family_520 = hypdr_advantage_family(n)
            exbdr_514 = _clause_count(ExbDR, family_514)
            skdr_514 = _clause_count(SkDR, family_514)
            exbdr_515 = _clause_count(ExbDR, family_515)
            skdr_515 = _clause_count(SkDR, family_515)
            skdr_520 = _clause_count(SkDR, family_520)
            hypdr_520 = _clause_count(HypDR, family_520)
            collected_growth["5.14"].append(exbdr_514 / max(skdr_514, 1))
            collected_growth["5.15"].append(skdr_515 / max(exbdr_515, 1))
            collected_growth["5.20"].append(skdr_520 / max(hypdr_520, 1))
            collected_rows.append(
                [n, exbdr_514, skdr_514, exbdr_515, skdr_515, skdr_520, hypdr_520]
            )
        return collected_rows, collected_growth

    rows, growth = benchmark.pedantic(collect, rounds=1, iterations=1)
    report = (
        "Exponential separation families (clauses retained, no redundancy elimination)\n"
        + format_table(
            [
                "n",
                "P5.14 ExbDR",
                "P5.14 SkDR",
                "P5.15 ExbDR",
                "P5.15 SkDR",
                "P5.20 SkDR",
                "P5.20 HypDR",
            ],
            rows,
        )
    )
    write_report("separation_families", report)
    # the ratios must grow with n in each separation
    for key, ratios in growth.items():
        assert ratios[-1] > ratios[0], f"no growth for Proposition {key}: {ratios}"


@pytest.mark.parametrize(
    "family,inference_cls",
    [
        (exbdr_blowup_family, ExbDR),
        (skdr_blowup_family, SkDR),
        (hypdr_advantage_family, HypDR),
    ],
    ids=["P5.14-ExbDR", "P5.15-SkDR", "P5.20-HypDR"],
)
def test_family_saturation_time(benchmark, family, inference_cls):
    """pytest-benchmark rows: saturation time on the n=4 member of each family."""
    tgds = family(4)
    count = benchmark(_clause_count, inference_cls, tgds)
    assert count > 0
