"""Experiment E2 — Figure 4: rewriting GTGDs derived from ontologies.

The paper's Figure 4 contains (i) a cactus plot of the number of inputs each
algorithm processes within a given time, (ii) a statistics table (processed
inputs, maximum input/output sizes, blow-ups, body atoms, and time
aggregates), and (iii) two pairwise matrices (order-of-magnitude slowdowns and
joint failures).  This benchmark regenerates all three over the synthetic
ontology suite for ExbDR, SkDR, HypDR, and the KAON2-style baseline, and
additionally times each algorithm on a single mid-sized input so that
pytest-benchmark records comparable per-algorithm timings.
"""

from __future__ import annotations

import pytest

from repro.harness.reports import full_figure_report
from repro.harness.stats import inputs_unprocessed_by_all, summarize
from repro.rewriting import RewritingSettings, rewrite

from conftest import TIMEOUT_SECONDS, write_report


def test_figure4_report(figure4_records, ontology_suite, benchmark):
    """Regenerate the Figure 4 tables from the shared run records."""

    def build_report():
        return full_figure_report(
            figure4_records, "Figure 4: Results for TGDs Derived from Ontologies"
        )

    report = benchmark(build_report)
    unprocessed = inputs_unprocessed_by_all(figure4_records)
    report += (
        f"\n\nInputs processed by no algorithm within {TIMEOUT_SECONDS:.0f}s: "
        f"{len(unprocessed)} of {len(ontology_suite)}"
    )
    write_report("figure4_ontologies", report)

    summaries = {summary.algorithm: summary for summary in summarize(figure4_records)}
    # every one of our algorithms must process at least as many inputs as it fails
    for name in ("exbdr", "skdr", "hypdr"):
        assert summaries[name].processed_inputs >= summaries[name].failed_inputs


@pytest.mark.parametrize("algorithm", ["exbdr", "skdr", "hypdr", "kaon2"])
def test_single_input_rewriting_time(ontology_suite, benchmark_runner, benchmark, algorithm):
    """Per-algorithm timing on one mid-sized input (the pytest-benchmark rows)."""
    target = ontology_suite[len(ontology_suite) // 2]
    record = benchmark(benchmark_runner.run_algorithm, algorithm, target)
    assert record.input_id == target.identifier


@pytest.mark.parametrize("algorithm", ["exbdr", "skdr", "hypdr"])
def test_rewriting_output_quality(ontology_suite, benchmark, algorithm):
    """The blow-up on typical ontology inputs stays moderate (paper: same order
    of magnitude as the input for the vast majority of inputs)."""
    target = ontology_suite[len(ontology_suite) // 3]
    result = benchmark.pedantic(
        rewrite,
        args=(target.tgds,),
        kwargs={
            "algorithm": algorithm,
            "settings": RewritingSettings(timeout_seconds=TIMEOUT_SECONDS),
        },
        rounds=1,
        iterations=1,
    )
    if result.completed and result.statistics.input_size:
        assert result.blowup() < 20.0
