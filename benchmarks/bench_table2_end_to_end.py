"""Experiment E3 — Table 2: computing the fixpoint of the rewriting.

The paper selects the ten inputs with the largest ExbDR rewritings, generates
large WatDiv base instances, and uses RDFox to materialize each rewriting,
reporting the number of rules, input facts, output facts, and the time.  This
benchmark reproduces the pipeline with the synthetic suite, the schema-aware
instance generator, and the built-in semi-naive Datalog engine (the RDFox
substitution documented in DESIGN.md); instance sizes are scaled down so a
pure-Python engine finishes quickly, but the reported output/input fact ratio
— the quantity the paper's discussion is about — is preserved.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datalog import materialize
from repro.harness.reports import end_to_end_report
from repro.rewriting import RewritingSettings, rewrite
from repro.workloads.instances import generate_instance

from conftest import TIMEOUT_SECONDS, write_report

TOP_K = int(os.environ.get("REPRO_BENCH_END_TO_END_INPUTS", "5"))
FACTS_PER_INSTANCE = int(os.environ.get("REPRO_BENCH_END_TO_END_FACTS", "2000"))


@pytest.fixture(scope="module")
def selected_rewritings(ontology_suite):
    """The TOP_K inputs with the largest ExbDR rewritings (as in the paper)."""
    settings = RewritingSettings(timeout_seconds=TIMEOUT_SECONDS)
    completed = []
    for item in ontology_suite:
        result = rewrite(item.tgds, algorithm="exbdr", settings=settings)
        if result.completed:
            completed.append((item, result))
    completed.sort(key=lambda pair: pair[1].output_size, reverse=True)
    return completed[:TOP_K]


def test_table2_report(selected_rewritings, benchmark):
    """Regenerate the Table 2 rows: rules, input facts, output facts, time."""

    def build_rows():
        collected = []
        for item, rewriting in selected_rewritings:
            instance = generate_instance(
                item.tgds,
                fact_count=FACTS_PER_INSTANCE,
                constant_count=max(50, FACTS_PER_INSTANCE // 10),
                seed=int(item.identifier),
            )
            start = time.perf_counter()
            result = materialize(rewriting.program(), instance)
            elapsed = time.perf_counter() - start
            collected.append(
                {
                    "input_id": item.identifier,
                    "rule_count": rewriting.output_size,
                    "input_facts": len(instance),
                    "output_facts": len(result),
                    "elapsed_seconds": elapsed,
                }
            )
        return collected

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report = end_to_end_report(rows)
    write_report("table2_end_to_end", report)
    # the fixpoint must contain the input and, on these recursive inputs,
    # strictly extend it
    for row in rows:
        assert row["output_facts"] >= row["input_facts"]
    assert any(row["output_facts"] > row["input_facts"] for row in rows)


def test_materialization_time_on_largest_rewriting(selected_rewritings, benchmark):
    """pytest-benchmark row: fixpoint of the largest rewriting."""
    item, rewriting = selected_rewritings[0]
    instance = generate_instance(
        item.tgds, fact_count=FACTS_PER_INSTANCE // 2, constant_count=100, seed=1
    )
    program = rewriting.program()
    result = benchmark(materialize, program, instance)
    assert len(result) >= len(instance)


def test_rewrite_once_query_many(selected_rewritings, benchmark):
    """The deployment argument of the paper: the rewriting is computed once and
    amortized over many instances — materialization must not depend on
    recomputing the rewriting."""
    item, rewriting = selected_rewritings[-1]
    program = rewriting.program()
    instances = [
        generate_instance(item.tgds, fact_count=300, constant_count=60, seed=seed)
        for seed in range(3)
    ]

    def run_all():
        return [len(materialize(program, instance)) for instance in instances]

    sizes = benchmark(run_all)
    assert len(sizes) == 3
