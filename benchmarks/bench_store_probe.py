"""Standalone A/B probe: object-column versus ID-encoded join pipelines.

Builds one two-way equi-join workload — ``R(x, y) ⋈ S(y, z)`` over a
Zipf-ish constant pool — and times the same hash join twice:

* **object** — the pre-change representation: hash buckets keyed by interned
  :class:`~repro.logic.terms.Constant` objects, probed with term objects
  (equality falls back to ``Constant.__eq__``/``__hash__`` on every probe);
* **int** — the :class:`~repro.datalog.store.FactStore` representation:
  rows of dense term IDs, probed through ``key_index`` with bare ints.

Both sides produce the same join cardinality (asserted), so the timing gap
isolates the encoding.  Run with::

    PYTHONPATH=src python benchmarks/bench_store_probe.py
"""

from __future__ import annotations

import json
import random
import time

from repro.datalog.store import FactStore
from repro.logic.atoms import Predicate
from repro.logic.terms import Constant

R = Predicate("R", 2)
S = Predicate("S", 2)

FACTS_PER_RELATION = 20_000
CONSTANT_COUNT = 800
SEED = 2022


def _workload():
    """Deterministic R/S fact lists sharing a skewed join-column pool."""
    rng = random.Random(SEED)
    pool = [Constant(f"c{i}") for i in range(CONSTANT_COUNT)]
    # skew the join column towards the front of the pool so buckets vary
    join_pool = [
        pool[min(rng.randrange(CONSTANT_COUNT), rng.randrange(CONSTANT_COUNT))]
        for _ in range(FACTS_PER_RELATION)
    ]
    r_facts = [R(rng.choice(pool), join_pool[i]) for i in range(FACTS_PER_RELATION)]
    s_facts = [S(join_pool[-1 - i], rng.choice(pool)) for i in range(FACTS_PER_RELATION)]
    # the store is a set; dedup here so both sides join identical relations
    return list(dict.fromkeys(r_facts)), list(dict.fromkeys(s_facts))


def _object_join(r_facts, s_facts):
    """The pre-change shape: term-object buckets, term-object probes."""
    build_start = time.perf_counter()
    buckets = {}
    for fact in r_facts:
        buckets.setdefault(fact.args[1], []).append(fact.args)
    build = time.perf_counter() - build_start
    join_start = time.perf_counter()
    matches = 0
    for fact in s_facts:
        for args in buckets.get(fact.args[0], ()):
            if args[1] is fact.args[0]:  # interned: identity == equality
                matches += 1
    return build, time.perf_counter() - join_start, matches


def _int_join(r_facts, s_facts):
    """The store shape: ID rows, int-keyed buckets, int probes."""
    build_start = time.perf_counter()
    store = FactStore(r_facts + s_facts)
    index = store.key_index(R, (1,))
    build = time.perf_counter() - build_start
    join_start = time.perf_counter()
    matches = 0
    for s_row in store.relation_rows(S):
        key = s_row[0]
        for r_row in index.get(key, ()):
            if r_row[1] == key:
                matches += 1
    return build, time.perf_counter() - join_start, matches


def run_once() -> dict:
    r_facts, s_facts = _workload()
    object_build, object_join, object_matches = _object_join(r_facts, s_facts)
    int_build, int_join, int_matches = _int_join(r_facts, s_facts)
    assert object_matches == int_matches, (object_matches, int_matches)
    return {
        "join_matches": object_matches,
        "object_build_seconds": object_build,
        "object_join_seconds": object_join,
        "int_build_seconds": int_build,
        "int_join_seconds": int_join,
    }


if __name__ == "__main__":
    runs = [run_once() for _ in range(3)]
    best = {key: min(run[key] for run in runs) for key in runs[0]}
    best["join_matches"] = int(best["join_matches"])
    best["speedup_int_vs_object_join"] = round(
        best["object_join_seconds"] / best["int_join_seconds"], 2
    )
    print(json.dumps(best, indent=2))
