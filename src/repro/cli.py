"""Command-line interface.

The CLI mirrors how the paper's system is used in practice: rewrite a file of
GTGDs into a Datalog program, materialize a rewriting over a file of facts,
or check entailment of a single fact.  The dependency/fact syntax is the one
accepted by :mod:`repro.logic.parser`.

The service-style workflow compiles once and serves many batches::

    python -m repro compile deps.gtgd -o cim.kb.json     # saturate + persist
    python -m repro load cim.kb.json                     # inspect a saved KB
    python -m repro serve-batch cim.kb.json data.facts queries.txt \
        --delta day1.facts --retract stale.facts \
        --delta day2.facts                               # incremental session

``--delta`` (add) and ``--retract`` (DRed un-assert) files are applied to
the live session in the order they appear on the command line.  The
queries file may be ``-`` to read from stdin, and ``--json`` emits one
NDJSON result line per query (the wire format of the server).

The long-lived server (:mod:`repro.serve`) keeps knowledge bases resident
and answers concurrent clients over newline-delimited JSON::

    python -m repro serve cim.kb.json --port 7411 --workers 4
    python -m repro serve cim=cim.kb.json grid=grid.gtgd \
        --facts cim=data.facts                           # several KBs

Each positional argument is ``PATH`` or ``NAME=PATH`` (the name clients
address; default: the file stem).  SIGINT/SIGTERM drain in-flight batches
before exiting.

One-shot commands::

    python -m repro rewrite deps.gtgd --algorithm hypdr -o rewriting.dl
    python -m repro materialize deps.gtgd data.facts
    python -m repro entails deps.gtgd data.facts "Equipment(sw2)"
    python -m repro stats deps.gtgd
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .api import KnowledgeBase
from .datalog.query import parse_query
from .logic.parser import parse_fact, parse_program
from .logic.printer import format_datalog_program, format_fact
from .logic.tgd import bwidth, head_normalize, hwidth, split_full_non_full
from .rewriting.base import RewritingSettings
from .rewriting.rewriter import available_algorithms

#: scenarios faster than this (in both captures) are exempt from the
#: ``perf --max-regression`` gate — sub-half-second workloads routinely vary
#: by 2x between identical runs on shared machines, so gating them would
#: only produce noise failures
MIN_GATE_WALL_SECONDS = 0.5

#: mirror of :data:`repro.harness.perfcapture.SCENARIO_NAMES`, inlined so
#: building the parser does not import the harness (every CLI invocation
#: pays parser-build time); a harness test asserts the two stay in sync
PERF_SCENARIO_NAMES = (
    "separation_families",
    "fulldr_comparison",
    "end_to_end",
    "incremental_updates",
    "churn",
    "skolem_chase",
    "guarded_oracle",
    "serving_throughput",
    "demand_queries",
)


class _SessionUpdateAction(argparse.Action):
    """Collect ``--delta``/``--retract`` as one ordered list of (op, path).

    Argparse gives each option its own ``append`` list, losing the relative
    order of mixed adds and retractions; sharing one ``dest`` keeps the
    command line's interleaving, which is the order the session applies.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        updates = getattr(namespace, self.dest, None) or []
        operation = "retract" if option_string == "--retract" else "add"
        updates.append((operation, values))
        setattr(namespace, self.dest, updates)


def _newly_timed_out_scenarios(payload) -> "List[str]":
    """Scenarios whose status flipped completed -> timed_out vs the baseline.

    Status-changed scenarios carry no wall-time ratio (different work), so
    the ``--max-regression`` gate must catch this flip explicitly — a
    scenario that used to finish and now times out is the worst regression
    the gate exists for, not a reason to skip comparison.
    """
    changes = payload.get("scenario_status_vs_baseline")
    if not isinstance(changes, dict):
        return []
    return sorted(
        name
        for name, change in changes.items()
        if isinstance(change, dict)
        and change.get("baseline") == "completed"
        and change.get("current") == "timed_out"
    )


def _read_program(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_program(text)


def _settings_from_args(args: argparse.Namespace) -> RewritingSettings:
    return RewritingSettings(
        use_subsumption=not args.no_subsumption,
        use_lookahead=not args.no_lookahead,
        exact_subsumption=args.exact_subsumption,
        timeout_seconds=args.timeout,
    )


def _add_rewriting_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--algorithm",
        choices=available_algorithms(),
        default="hypdr",
        help="rewriting algorithm (default: hypdr)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="time budget in seconds"
    )
    parser.add_argument(
        "--no-subsumption",
        action="store_true",
        help="disable redundancy elimination (Section 7.2 ablation)",
    )
    parser.add_argument(
        "--no-lookahead",
        action="store_true",
        help="disable the cheap lookahead optimization",
    )
    parser.add_argument(
        "--exact-subsumption",
        action="store_true",
        help="use the exact (NP-hard) subsumption check instead of the approximation",
    )


def _command_rewrite(args: argparse.Namespace) -> int:
    program = _read_program(args.dependencies)
    kb = KnowledgeBase.compile(
        program.tgds, algorithm=args.algorithm, settings=_settings_from_args(args)
    )
    stats = kb.rewriting.statistics
    text = format_datalog_program(
        sorted(kb.rewriting.datalog_rules, key=lambda rule: str(rule))
    )
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    print(
        f"# {args.algorithm}: {kb.rewriting.output_size} Datalog rules from "
        f"{stats.input_size} input clauses in {stats.elapsed_seconds:.3f}s "
        f"(derived {stats.derived}, forward-subsumed {stats.discarded_forward})",
        file=sys.stderr,
    )
    return 0 if kb.rewriting.completed else 2


def _command_materialize(args: argparse.Namespace) -> int:
    dependencies = _read_program(args.dependencies)
    data = _read_program(args.facts)
    instance = data.instance
    instance.update(dependencies.instance)
    kb = KnowledgeBase.compile(
        dependencies.tgds, algorithm=args.algorithm, settings=_settings_from_args(args)
    )
    start = time.perf_counter()
    result = kb.materialize(instance)
    elapsed = time.perf_counter() - start
    for fact in sorted(result.facts(), key=str):
        print(format_fact(fact))
    print(
        f"# {len(instance)} input facts -> {len(result)} facts in {elapsed:.3f}s "
        f"({result.rounds} rounds)",
        file=sys.stderr,
    )
    return 0


def _command_entails(args: argparse.Namespace) -> int:
    dependencies = _read_program(args.dependencies)
    data = _read_program(args.facts)
    instance = data.instance
    instance.update(dependencies.instance)
    fact = parse_fact(args.fact)
    kb = KnowledgeBase.compile(
        dependencies.tgds, algorithm=args.algorithm, settings=_settings_from_args(args)
    )
    entailed = kb.entails(instance, fact)
    print("entailed" if entailed else "not entailed")
    return 0 if entailed else 1


def _command_compile(args: argparse.Namespace) -> int:
    """Saturate a GTGD file and persist the compiled knowledge base."""
    program = _read_program(args.dependencies)
    kb = KnowledgeBase.compile(
        program.tgds, algorithm=args.algorithm, settings=_settings_from_args(args)
    )
    kb.save(args.output)
    stats = kb.rewriting.statistics
    print(
        f"# compiled {stats.input_size} input clauses with {args.algorithm} into "
        f"{kb.rewriting.output_size} Datalog rules in {stats.elapsed_seconds:.3f}s; "
        f"saved to {args.output} (fingerprint {kb.fingerprint[:12]})",
        file=sys.stderr,
    )
    return 0 if kb.rewriting.completed else 2


def _command_load(args: argparse.Namespace) -> int:
    """Inspect a saved knowledge base: summary and (optionally) its rules."""
    from .kb import KnowledgeBaseFormatError

    try:
        kb = KnowledgeBase.load(args.knowledge_base)
    except (KnowledgeBaseFormatError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = kb.rewriting.statistics
    print(f"algorithm:      {kb.rewriting.algorithm}")
    print(f"input TGDs:     {len(kb.tgds)}")
    print(f"datalog rules:  {kb.rewriting.output_size}")
    print(f"completed:      {kb.rewriting.completed}")
    print(f"compile time:   {stats.elapsed_seconds:.3f}s")
    print(f"fingerprint:    {kb.fingerprint}")
    if args.rules:
        print(
            format_datalog_program(
                sorted(kb.rewriting.datalog_rules, key=lambda rule: str(rule))
            )
        )
    return 0


def _read_queries(path: str) -> List:
    """Parse one query per line; ``-`` reads from stdin (pipelines)."""
    if path == "-":
        text = sys.stdin.read()
    else:
        text = Path(path).read_text(encoding="utf-8")
    queries = []
    for line in text.splitlines():
        stripped = line.split("%", 1)[0].split("#", 1)[0].strip()
        if stripped:
            queries.append(parse_query(stripped))
    return queries


def _command_serve_batch(args: argparse.Namespace) -> int:
    """Open a session, apply delta files incrementally, answer a query batch."""
    from .kb import KnowledgeBaseFormatError

    try:
        kb, seed_facts = KnowledgeBase.load_or_compile(
            args.knowledge_base,
            algorithm=args.algorithm,
            settings=_settings_from_args(args),
        )
    except (KnowledgeBaseFormatError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not kb.rewriting.completed:
        print(
            "error: the rewriting is incomplete (timeout or clause limit hit "
            "during compile); serving it would silently drop certain answers — "
            "recompile without limits",
            file=sys.stderr,
        )
        return 2
    instance = parse_program(Path(args.facts).read_text(encoding="utf-8")).instance
    instance.update(seed_facts)
    # demand/auto strategies want a cold session so bound point queries can
    # go goal-directed; the materialized strategy pays the fixpoint up front
    strategy = getattr(args, "strategy", "auto") or "auto"
    defer = strategy != "materialized"
    start = time.perf_counter()
    session = kb.session(instance, defer_materialization=defer)
    setup = time.perf_counter() - start
    if session.is_cold:
        print(
            f"# session: {len(kb.program)} rules, {len(instance)} base facts, "
            f"cold (strategy={strategy}) in {setup:.3f}s",
            file=sys.stderr,
        )
    else:
        print(
            f"# session: {len(kb.program)} rules, {len(instance)} base facts -> "
            f"{len(session)} facts in {setup:.3f}s",
            file=sys.stderr,
        )
    for operation, path in args.updates or ():
        delta = parse_program(Path(path).read_text(encoding="utf-8")).instance
        start = time.perf_counter()
        if operation == "retract":
            retraction = session.retract_facts(delta)
            elapsed = time.perf_counter() - start
            print(
                f"# retract {path}: -{retraction.retracted_facts} facts "
                f"({retraction.ignored_facts} ignored), "
                f"{retraction.overdeleted} overdeleted / "
                f"{retraction.rederived} rederived, net -{retraction.net_removed} "
                f"in {retraction.rounds} rounds ({elapsed:.3f}s)",
                file=sys.stderr,
            )
        else:
            update = session.add_facts(delta)
            elapsed = time.perf_counter() - start
            print(
                f"# delta {path}: +{update.added_facts} facts, "
                f"{update.derived_count} derived in {update.rounds} rounds "
                f"({elapsed:.3f}s)",
                file=sys.stderr,
            )
    from .datalog.query import QueryOptions

    queries = _read_queries(args.queries)
    start = time.perf_counter()
    answer_sets = session.answer_many(queries, options=QueryOptions(strategy=strategy))
    elapsed = time.perf_counter() - start
    if args.json:
        from .serve.protocol import encode_message, query_result

        for query, answers in zip(queries, answer_sets):
            sys.stdout.write(
                encode_message(query_result(str(query), answers)).decode("utf-8")
            )
    else:
        for query, answers in zip(queries, answer_sets):
            print(f"{query}")
            for row in sorted(answers, key=str):
                print("  " + ", ".join(str(term) for term in row))
            if not answers:
                print("  (no answers)")
    if session.is_cold:
        demand = session.demand_stats
        print(
            f"# answered {len(queries)} queries goal-directed "
            f"({demand['queries']} demand evaluations, "
            f"{demand['predicates_touched']}/{demand['predicates_total']} "
            f"predicates touched) in {elapsed:.3f}s",
            file=sys.stderr,
        )
    else:
        print(
            f"# answered {len(queries)} queries over {len(session)} facts "
            f"in {elapsed:.3f}s",
            file=sys.stderr,
        )
    return 0


def _parse_named_path(spec: str, default_name: Optional[str] = None):
    """Split a ``NAME=PATH`` spec; a bare ``PATH`` names itself by file stem."""
    if "=" in spec:
        name, _, path = spec.partition("=")
        return name, path
    return default_name or Path(spec).stem, spec


async def _serve_until_signalled(server, host: str, port: int) -> int:
    """Run the long-lived server until SIGINT/SIGTERM, then drain."""
    import signal

    await server.start()
    await server.warm()
    bound_host, bound_port = await server.start_tcp(host, port)
    print(
        f"# serving on {bound_host}:{bound_port} "
        "(newline-delimited JSON; Ctrl-C drains and exits)",
        file=sys.stderr,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            # platforms without loop signal handlers fall back to KeyboardInterrupt
            pass
    try:
        await stop.wait()
    except KeyboardInterrupt:
        pass
    print("# draining in-flight batches ...", file=sys.stderr)
    await server.shutdown()
    print("# server stopped", file=sys.stderr)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Boot the long-lived reasoning server (see :mod:`repro.serve`)."""
    from .kb import KnowledgeBaseFormatError
    from .logic.instance import Instance
    from .serve.server import ReasoningServer, ServedKB

    loaded = {}
    order = []
    try:
        for spec in args.knowledge_base:
            name, path = _parse_named_path(spec)
            if name in loaded:
                print(f"error: duplicate knowledge base name {name!r}", file=sys.stderr)
                return 2
            kb, seed_facts = KnowledgeBase.load_or_compile(
                path, algorithm=args.algorithm, settings=_settings_from_args(args)
            )
            seed = Instance()
            seed.update(seed_facts)
            loaded[name] = (kb, seed)
            order.append(name)
        default = order[0] if len(order) == 1 else None
        for spec in args.facts or ():
            name, path = _parse_named_path(spec, default_name=default)
            if name not in loaded:
                print(
                    f"error: --facts {spec!r} names no loaded knowledge base "
                    f"(loaded: {', '.join(order)}); use NAME=PATH",
                    file=sys.stderr,
                )
                return 2
            loaded[name][1].update(
                parse_program(Path(path).read_text(encoding="utf-8")).instance
            )
    except (KnowledgeBaseFormatError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    options = {}
    if args.default_deadline_ms is not None:
        # 0 = no deadline; the server models that as None
        options["default_deadline_ms"] = args.default_deadline_ms or None
    if args.max_queue_depth is not None:
        options["max_queue_depth"] = args.max_queue_depth or None
    if args.checkpoint_threshold is not None:
        options["checkpoint_threshold"] = args.checkpoint_threshold
    try:
        server = ReasoningServer(
            [ServedKB(name, *loaded[name]) for name in order],
            workers=args.workers,
            cache_size=args.cache_size,
            max_batch_size=args.max_batch_size,
            **options,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return asyncio.run(_serve_until_signalled(server, args.host, args.port))


def _command_stats(args: argparse.Namespace) -> int:
    program = _read_program(args.dependencies)
    normalized = head_normalize(program.tgds)
    full, non_full = split_full_non_full(normalized)
    print(f"dependencies:      {len(program.tgds)}")
    print(f"head-normal form:  {len(normalized)}")
    print(f"full TGDs:         {len(full)}")
    print(f"non-full TGDs:     {len(non_full)}")
    print(f"body width:        {bwidth(normalized)}")
    print(f"head width:        {hwidth(normalized)}")
    predicates = {
        atom.predicate
        for tgd in normalized
        for atom in tgd.body + tgd.head
    }
    print(f"relations:         {len(predicates)}")
    print(f"maximum arity:     {max((p.arity for p in predicates), default=0)}")
    print(f"facts in file:     {len(program.instance)}")
    return 0


def _command_perf(args: argparse.Namespace) -> int:
    import json

    from .harness.runner import run_perf_capture
    from .harness.reports import perf_report

    # validate both paths before paying for the capture run
    previous = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"error: baseline file not found: {baseline_path}", file=sys.stderr)
            return 2
        try:
            previous = json.loads(baseline_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"error: baseline is not valid JSON: {exc}", file=sys.stderr)
            return 2
        expected_scale = "smoke" if args.smoke else "default"
        baseline_scale = previous.get("scale")
        if baseline_scale != expected_scale:
            print(
                f"error: scale mismatch: this run is {expected_scale!r} but the "
                f"baseline capture is {baseline_scale!r}; wall times would not "
                "be comparable",
                file=sys.stderr,
            )
            return 2
    output_dir = Path(args.output).resolve().parent
    if not output_dir.is_dir():
        print(f"error: output directory does not exist: {output_dir}", file=sys.stderr)
        return 2

    if args.max_regression is not None and previous is None:
        print("error: --max-regression requires --baseline", file=sys.stderr)
        return 2

    payload = run_perf_capture(
        smoke=args.smoke,
        output_path=args.output,
        baseline=previous,
        scenarios=args.scenario,
    )
    print(perf_report(payload))
    print(f"# written to {args.output}", file=sys.stderr)
    if args.step_summary:
        from .harness.reports import step_summary_markdown

        # append (GitHub writes other steps' summaries to the same file)
        with open(args.step_summary, "a", encoding="utf-8") as handle:
            handle.write(step_summary_markdown(payload) + "\n")
        print(f"# step summary appended to {args.step_summary}", file=sys.stderr)
    if args.max_regression is not None:
        comparison = payload.get("speedup_vs_baseline_file", {})
        if "error" in comparison:
            print(f"error: {comparison['error']}", file=sys.stderr)
            return 2
        newly_timed_out = _newly_timed_out_scenarios(payload)
        if newly_timed_out:
            print(
                "error: scenario(s) newly timed out vs baseline: "
                f"{', '.join(newly_timed_out)}",
                file=sys.stderr,
            )
            return 3
        # ratio is old/new wall time: 1.0 means unchanged, <1.0 slower.
        floor = 1.0 / (1.0 + args.max_regression / 100.0)
        scenarios = payload.get("scenarios", {})
        regressed = {}
        for name, ratio in comparison.items():
            new_wall = scenarios.get(name, {}).get("wall_seconds") or 0.0
            old_wall = new_wall * ratio
            if max(new_wall, old_wall) < MIN_GATE_WALL_SECONDS:
                print(
                    f"# gate: skipping {name} (wall time below "
                    f"{MIN_GATE_WALL_SECONDS:g}s, too noisy to compare)",
                    file=sys.stderr,
                )
                continue
            if ratio < floor:
                regressed[name] = ratio
        if regressed:
            rendered = ", ".join(
                f"{name} {round((1 / ratio - 1) * 100)}% slower"
                for name, ratio in sorted(regressed.items())
            )
            print(
                f"error: scenarios regressed more than {args.max_regression:g}% "
                f"vs baseline: {rendered}",
                file=sys.stderr,
            )
            return 3
        print(
            f"# no scenario regressed more than {args.max_regression:g}% vs baseline",
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Datalog rewriting of guarded TGDs (VLDB 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    rewrite_parser = subparsers.add_parser(
        "rewrite", help="rewrite a file of GTGDs into a Datalog program"
    )
    rewrite_parser.add_argument("dependencies", help="file containing the GTGDs")
    rewrite_parser.add_argument("-o", "--output", help="write the Datalog program here")
    _add_rewriting_options(rewrite_parser)
    rewrite_parser.set_defaults(handler=_command_rewrite)

    materialize_parser = subparsers.add_parser(
        "materialize", help="materialize the rewriting over a file of facts"
    )
    materialize_parser.add_argument("dependencies")
    materialize_parser.add_argument("facts")
    _add_rewriting_options(materialize_parser)
    materialize_parser.set_defaults(handler=_command_materialize)

    entails_parser = subparsers.add_parser(
        "entails", help="check whether a base fact is entailed"
    )
    entails_parser.add_argument("dependencies")
    entails_parser.add_argument("facts")
    entails_parser.add_argument("fact", help='the fact to check, e.g. "Equipment(sw2)"')
    _add_rewriting_options(entails_parser)
    entails_parser.set_defaults(handler=_command_entails)

    stats_parser = subparsers.add_parser(
        "stats", help="print structural statistics of a GTGD file"
    )
    stats_parser.add_argument("dependencies")
    stats_parser.set_defaults(handler=_command_stats)

    compile_parser = subparsers.add_parser(
        "compile", help="saturate a GTGD file and save the compiled knowledge base"
    )
    compile_parser.add_argument("dependencies", help="file containing the GTGDs")
    compile_parser.add_argument(
        "-o",
        "--output",
        required=True,
        help="where to write the KB JSON (repro-kb/v2 format)",
    )
    _add_rewriting_options(compile_parser)
    compile_parser.set_defaults(handler=_command_compile)

    load_parser = subparsers.add_parser(
        "load", help="inspect a knowledge base saved by 'compile'"
    )
    load_parser.add_argument("knowledge_base", help="a saved KB JSON file")
    load_parser.add_argument(
        "--rules", action="store_true", help="also print the Datalog rewriting"
    )
    load_parser.set_defaults(handler=_command_load)

    serve_parser = subparsers.add_parser(
        "serve-batch",
        help="open a reasoning session, apply deltas incrementally, answer a "
        "batch of queries",
    )
    serve_parser.add_argument(
        "knowledge_base",
        help="a saved KB JSON (from 'compile') or a GTGD file (compiled on the fly)",
    )
    serve_parser.add_argument("facts", help="file with the initial base facts")
    serve_parser.add_argument(
        "queries", help="file with one conjunctive query per line ('-' for stdin)"
    )
    serve_parser.add_argument(
        "--json",
        action="store_true",
        help="emit one NDJSON result line per query (the server's wire format) "
        "instead of the human-readable listing",
    )
    serve_parser.add_argument(
        "--delta",
        action=_SessionUpdateAction,
        dest="updates",
        metavar="FACTS_FILE",
        help="fact file added incrementally to the live session (repeatable; "
        "applied in command-line order, interleaved with --retract)",
    )
    serve_parser.add_argument(
        "--retract",
        action=_SessionUpdateAction,
        dest="updates",
        metavar="FACTS_FILE",
        help="fact file of base facts to un-assert via DRed (repeatable; "
        "applied in command-line order, interleaved with --delta)",
    )
    serve_parser.add_argument(
        "--strategy",
        choices=("auto", "materialized", "demand"),
        default="auto",
        help="query evaluation strategy: 'materialized' pays the full "
        "fixpoint up front, 'demand' answers goal-directedly via magic "
        "sets, 'auto' (default) goes goal-directed for bound queries on a "
        "cold session (answers are identical under every strategy)",
    )
    _add_rewriting_options(serve_parser)
    serve_parser.set_defaults(handler=_command_serve_batch)

    server_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived reasoning server (newline-delimited JSON "
        "over TCP; see repro.serve)",
    )
    server_parser.add_argument(
        "knowledge_base",
        nargs="+",
        metavar="KB",
        help="a saved KB JSON or GTGD file to serve, as PATH or NAME=PATH "
        "(default name: the file stem)",
    )
    server_parser.add_argument(
        "--facts",
        action="append",
        metavar="[NAME=]FACTS_FILE",
        help="seed base facts for a served KB (repeatable; NAME may be "
        "omitted when serving a single KB)",
    )
    server_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    server_parser.add_argument(
        "--port",
        type=int,
        default=7411,
        help="TCP port (default: 7411; 0 picks a free port)",
    )
    server_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool workers holding warm sessions; 0 (default) runs "
        "the reasoning inline on a thread",
    )
    server_parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="answer-cache capacity in entries (default: 1024)",
    )
    server_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=128,
        help="cap on queries grouped into one micro-batch (default: 128)",
    )
    server_parser.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="server-side deadline applied to requests that carry no "
        "deadline_ms of their own (default: 30000; 0 disables deadlines)",
    )
    server_parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="per-KB admission bound; requests past it are shed with a "
        "structured 'overloaded' error (default: 1024; 0 removes the bound)",
    )
    server_parser.add_argument(
        "--checkpoint-threshold",
        type=int,
        default=None,
        metavar="N",
        help="op-log length at which the server snapshots surviving base "
        "facts and truncates the log (default: 32)",
    )
    _add_rewriting_options(server_parser)
    server_parser.set_defaults(handler=_command_serve)

    perf_parser = subparsers.add_parser(
        "perf",
        help="run the recorded benchmark scenarios and emit BENCH_rewriting.json",
    )
    perf_parser.add_argument(
        "-o",
        "--output",
        default="BENCH_rewriting.json",
        help="where to write the JSON capture (default: BENCH_rewriting.json)",
    )
    perf_parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads only (seconds, for CI smoke runs)",
    )
    perf_parser.add_argument(
        "--scenario",
        action="append",
        choices=PERF_SCENARIO_NAMES,
        metavar="NAME",
        help="capture only this scenario (repeatable; default: all of "
        f"{', '.join(PERF_SCENARIO_NAMES)})",
    )
    perf_parser.add_argument(
        "--baseline",
        help="a previous BENCH_rewriting.json to compare wall times against",
    )
    perf_parser.add_argument(
        "--step-summary",
        metavar="PATH",
        help="append a markdown summary table (wall times, speedups, join-plan "
        "stats) to this file — CI passes $GITHUB_STEP_SUMMARY",
    )
    perf_parser.add_argument(
        "--max-regression",
        type=float,
        metavar="PCT",
        help="exit non-zero if any scenario's wall time regresses more than "
        "PCT%% versus the --baseline capture (CI gate)",
    )
    perf_parser.set_defaults(handler=_command_perf)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
