"""Command-line interface.

The CLI mirrors how the paper's system is used in practice: rewrite a file of
GTGDs into a Datalog program, materialize a rewriting over a file of facts,
or check entailment of a single fact.  The dependency/fact syntax is the one
accepted by :mod:`repro.logic.parser`.

Usage::

    python -m repro rewrite deps.gtgd --algorithm hypdr -o rewriting.dl
    python -m repro materialize deps.gtgd data.facts
    python -m repro entails deps.gtgd data.facts "Equipment(sw2)"
    python -m repro stats deps.gtgd
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .api import KnowledgeBase
from .logic.parser import parse_fact, parse_program
from .logic.printer import format_datalog_program, format_fact
from .logic.tgd import bwidth, head_normalize, hwidth, split_full_non_full
from .rewriting.base import RewritingSettings
from .rewriting.rewriter import available_algorithms


def _read_program(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_program(text)


def _settings_from_args(args: argparse.Namespace) -> RewritingSettings:
    return RewritingSettings(
        use_subsumption=not args.no_subsumption,
        use_lookahead=not args.no_lookahead,
        exact_subsumption=args.exact_subsumption,
        timeout_seconds=args.timeout,
    )


def _add_rewriting_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--algorithm",
        choices=available_algorithms(),
        default="hypdr",
        help="rewriting algorithm (default: hypdr)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="time budget in seconds"
    )
    parser.add_argument(
        "--no-subsumption",
        action="store_true",
        help="disable redundancy elimination (Section 7.2 ablation)",
    )
    parser.add_argument(
        "--no-lookahead",
        action="store_true",
        help="disable the cheap lookahead optimization",
    )
    parser.add_argument(
        "--exact-subsumption",
        action="store_true",
        help="use the exact (NP-hard) subsumption check instead of the approximation",
    )


def _command_rewrite(args: argparse.Namespace) -> int:
    program = _read_program(args.dependencies)
    kb = KnowledgeBase.compile(
        program.tgds, algorithm=args.algorithm, settings=_settings_from_args(args)
    )
    stats = kb.rewriting.statistics
    text = format_datalog_program(
        sorted(kb.rewriting.datalog_rules, key=lambda rule: str(rule))
    )
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    print(
        f"# {args.algorithm}: {kb.rewriting.output_size} Datalog rules from "
        f"{stats.input_size} input clauses in {stats.elapsed_seconds:.3f}s "
        f"(derived {stats.derived}, forward-subsumed {stats.discarded_forward})",
        file=sys.stderr,
    )
    return 0 if kb.rewriting.completed else 2


def _command_materialize(args: argparse.Namespace) -> int:
    dependencies = _read_program(args.dependencies)
    data = _read_program(args.facts)
    instance = data.instance
    instance.update(dependencies.instance)
    kb = KnowledgeBase.compile(
        dependencies.tgds, algorithm=args.algorithm, settings=_settings_from_args(args)
    )
    start = time.perf_counter()
    result = kb.materialize(instance)
    elapsed = time.perf_counter() - start
    for fact in sorted(result.facts(), key=str):
        print(format_fact(fact))
    print(
        f"# {len(instance)} input facts -> {len(result)} facts in {elapsed:.3f}s "
        f"({result.rounds} rounds)",
        file=sys.stderr,
    )
    return 0


def _command_entails(args: argparse.Namespace) -> int:
    dependencies = _read_program(args.dependencies)
    data = _read_program(args.facts)
    instance = data.instance
    instance.update(dependencies.instance)
    fact = parse_fact(args.fact)
    kb = KnowledgeBase.compile(
        dependencies.tgds, algorithm=args.algorithm, settings=_settings_from_args(args)
    )
    entailed = kb.entails(instance, fact)
    print("entailed" if entailed else "not entailed")
    return 0 if entailed else 1


def _command_stats(args: argparse.Namespace) -> int:
    program = _read_program(args.dependencies)
    normalized = head_normalize(program.tgds)
    full, non_full = split_full_non_full(normalized)
    print(f"dependencies:      {len(program.tgds)}")
    print(f"head-normal form:  {len(normalized)}")
    print(f"full TGDs:         {len(full)}")
    print(f"non-full TGDs:     {len(non_full)}")
    print(f"body width:        {bwidth(normalized)}")
    print(f"head width:        {hwidth(normalized)}")
    predicates = {
        atom.predicate
        for tgd in normalized
        for atom in tgd.body + tgd.head
    }
    print(f"relations:         {len(predicates)}")
    print(f"maximum arity:     {max((p.arity for p in predicates), default=0)}")
    print(f"facts in file:     {len(program.instance)}")
    return 0


def _command_perf(args: argparse.Namespace) -> int:
    import json

    from .harness.runner import run_perf_capture
    from .harness.reports import perf_report

    # validate both paths before paying for the capture run
    previous = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"error: baseline file not found: {baseline_path}", file=sys.stderr)
            return 2
        try:
            previous = json.loads(baseline_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"error: baseline is not valid JSON: {exc}", file=sys.stderr)
            return 2
        expected_scale = "smoke" if args.smoke else "default"
        baseline_scale = previous.get("scale")
        if baseline_scale != expected_scale:
            print(
                f"error: scale mismatch: this run is {expected_scale!r} but the "
                f"baseline capture is {baseline_scale!r}; wall times would not "
                "be comparable",
                file=sys.stderr,
            )
            return 2
    output_dir = Path(args.output).resolve().parent
    if not output_dir.is_dir():
        print(f"error: output directory does not exist: {output_dir}", file=sys.stderr)
        return 2

    payload = run_perf_capture(
        smoke=args.smoke, output_path=args.output, baseline=previous
    )
    print(perf_report(payload))
    print(f"# written to {args.output}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Datalog rewriting of guarded TGDs (VLDB 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    rewrite_parser = subparsers.add_parser(
        "rewrite", help="rewrite a file of GTGDs into a Datalog program"
    )
    rewrite_parser.add_argument("dependencies", help="file containing the GTGDs")
    rewrite_parser.add_argument("-o", "--output", help="write the Datalog program here")
    _add_rewriting_options(rewrite_parser)
    rewrite_parser.set_defaults(handler=_command_rewrite)

    materialize_parser = subparsers.add_parser(
        "materialize", help="materialize the rewriting over a file of facts"
    )
    materialize_parser.add_argument("dependencies")
    materialize_parser.add_argument("facts")
    _add_rewriting_options(materialize_parser)
    materialize_parser.set_defaults(handler=_command_materialize)

    entails_parser = subparsers.add_parser(
        "entails", help="check whether a base fact is entailed"
    )
    entails_parser.add_argument("dependencies")
    entails_parser.add_argument("facts")
    entails_parser.add_argument("fact", help='the fact to check, e.g. "Equipment(sw2)"')
    _add_rewriting_options(entails_parser)
    entails_parser.set_defaults(handler=_command_entails)

    stats_parser = subparsers.add_parser(
        "stats", help="print structural statistics of a GTGD file"
    )
    stats_parser.add_argument("dependencies")
    stats_parser.set_defaults(handler=_command_stats)

    perf_parser = subparsers.add_parser(
        "perf",
        help="run the recorded benchmark scenarios and emit BENCH_rewriting.json",
    )
    perf_parser.add_argument(
        "-o",
        "--output",
        default="BENCH_rewriting.json",
        help="where to write the JSON capture (default: BENCH_rewriting.json)",
    )
    perf_parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads only (seconds, for CI smoke runs)",
    )
    perf_parser.add_argument(
        "--baseline",
        help="a previous BENCH_rewriting.json to compare wall times against",
    )
    perf_parser.set_defaults(handler=_command_perf)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
