"""One constraint-propagating match solver for every conjunctive enumerator.

Every matching problem in this codebase reduces to the same primitive:
enumerate the substitutions that map a conjunction of pattern atoms into a
candidate universe.  Four bespoke backtracking recursions used to exist —
FullDR's bounded-substitution cartesian product, the Skolem chase's body
matcher, exact subsumption's body/head enumerators, and
``match_conjunction_into_set`` behind the naive Datalog reference evaluator
and the guarded chase engine.  This module replaces all of them with one
engine built on the classic join-ordering/selectivity ideas from the database
literature: prune a variable's candidates the moment any atom's partial
assignment rules them out, and branch on the most-constrained variable first.

Domain / propagation model
--------------------------

The solver supports three candidate-universe shapes behind four entry points:

* :func:`solve_match` — *subset matching*: every pattern atom must map to
  some atom of the universe (a predicate-indexed mapping or a plain atom
  collection).  Per-variable candidate domains are intersected across the
  pattern atoms **up front**: for each top-level variable position of each
  pattern, the set of terms its candidate targets expose is computed, the
  sets are intersected per variable, and candidates incompatible with the
  intersected domains are discarded until a fixpoint is reached.  An empty
  domain aborts the search before a single branch is explored.
* :func:`solve_cover` — the dual problem behind exact subsumption's head
  check: every *target* atom must be the image of some pattern atom.
* :func:`solve_bounded` — FullDR's bounded-substitution problem: every
  variable of an explicit tuple ranges over a fixed term pool, subject to
  atom-equality constraints ``θ(A) = θ(B)``.  Equalities are propagated
  eagerly through a union-find over the variables (variable–variable
  positions merge classes, variable–term positions collapse a class's domain
  to a single forced value), so only the surviving free classes are
  enumerated — never the full cartesian product.
* :func:`solve_bounded_pairings` — the PROPAGATE-shaped extension: each body
  atom optionally pairs with a same-predicate head atom, the induced
  equalities are propagated incrementally, and inconsistent pairings prune
  the whole selection subtree before any substitution is materialized.

During the search proper, :func:`solve_match`/:func:`solve_cover` branch on
the **most-constrained slot first** (the pattern or target with the fewest
surviving candidates) and **forward-check** after each binding: the candidate
lists of every unassigned slot sharing a freshly bound variable are
re-filtered, and an emptied list fails the branch immediately.

Reading the solver stats block
------------------------------

Every solve accumulates into a module-global :class:`MatchSolverStats`
(snapshot via :func:`match_solver_stats`, zeroed via
:func:`reset_match_solver_stats`).  The perf capture resets the counters
around the ``fulldr_comparison`` scenario and records the snapshot as its
``match_solver`` block in ``BENCH_rewriting.json``:

* ``solves`` — solver invocations (one per conjunction solved);
* ``solutions`` — substitutions enumerated across all invocations;
* ``nodes_expanded`` — branches accepted during the search (a slot bound to
  a candidate, a pairing imposed, or a free class assigned a term); the
  ratio ``solutions / nodes_expanded`` measures how little of the tree is
  wasted work;
* ``domains_pruned`` — candidate values discarded by the up-front domain
  intersection, by forward checking, or by an equality collapsing a bounded
  class's domain to one forced value;
* ``empty_domain_exits`` — searches (or subtrees) abandoned because a
  domain emptied or a constraint was contradictory; each exit is an entire
  cartesian subspace that the old enumerators would have walked.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..logic.atoms import Atom, Predicate
from ..logic.substitution import Substitution
from ..logic.terms import FunctionTerm, Term, Variable

#: a candidate universe: atoms pre-bucketed by predicate, or any atom
#: collection (bucketed by the solver on entry)
Universe = Union[Mapping[Predicate, Sequence[Atom]], Iterable[Atom]]

#: one (body atom, head atom) pairing of a PROPAGATE-style selection
Pairing = Tuple[Atom, Atom]


class MatchSolverStats:
    """Cumulative counters for the solver (see the module docstring)."""

    __slots__ = (
        "solves",
        "solutions",
        "nodes_expanded",
        "domains_pruned",
        "empty_domain_exits",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.solves = 0
        self.solutions = 0
        self.nodes_expanded = 0
        self.domains_pruned = 0
        self.empty_domain_exits = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "solves": self.solves,
            "solutions": self.solutions,
            "nodes_expanded": self.nodes_expanded,
            "domains_pruned": self.domains_pruned,
            "empty_domain_exits": self.empty_domain_exits,
        }


#: module-global accumulator; the perf capture snapshots/resets it around the
#: scenarios it reports on
GLOBAL_MATCH_SOLVER_STATS = MatchSolverStats()


def match_solver_stats() -> Dict[str, int]:
    """A snapshot of the global solver counters."""
    return GLOBAL_MATCH_SOLVER_STATS.as_dict()


def reset_match_solver_stats() -> None:
    """Zero the global solver counters."""
    GLOBAL_MATCH_SOLVER_STATS.reset()


# ----------------------------------------------------------------------
# destructive binding extension with an undo trail
# ----------------------------------------------------------------------
def _extend_term(
    pattern: Term,
    target: Term,
    bindings: Dict[Variable, Term],
    trail: List[Variable],
) -> bool:
    if type(pattern) is Variable:
        bound = bindings.get(pattern)
        if bound is None:
            bindings[pattern] = target
            trail.append(pattern)
            return True
        return bound == target
    if isinstance(pattern, FunctionTerm):
        if not isinstance(target, FunctionTerm) or pattern.symbol != target.symbol:
            return False
        return all(
            _extend_term(sub_pattern, sub_target, bindings, trail)
            for sub_pattern, sub_target in zip(pattern.args, target.args)
        )
    return pattern == target


def _extend_atom(
    pattern: Atom,
    target: Atom,
    bindings: Dict[Variable, Term],
    trail: List[Variable],
) -> bool:
    """Destructively extend ``bindings`` with ``μ(pattern) = target``.

    Newly bound variables are appended to ``trail`` so the caller can undo
    the extension on backtrack (the predicates are assumed equal: candidates
    are pre-bucketed by predicate).
    """
    for pattern_arg, target_arg in zip(pattern.args, target.args):
        if not _extend_term(pattern_arg, target_arg, bindings, trail):
            return False
    return True


def _undo(bindings: Dict[Variable, Term], trail: List[Variable], mark: int) -> None:
    while len(trail) > mark:
        del bindings[trail.pop()]


def _bucket(
    universe: Universe, needed: FrozenSet[Predicate]
) -> Dict[Predicate, Tuple[Atom, ...]]:
    """Snapshot the universe's buckets for the predicates a solve can probe.

    The snapshot matters: the Skolem chase adds facts to its buckets while a
    solve generator is live, and the guarded engine mutates its fact set
    between pulled solutions.  Only the pattern conjunction's predicates are
    copied — a fact store spread over many relations costs nothing beyond
    the buckets the patterns actually mention.
    """
    if isinstance(universe, Mapping):
        return {
            predicate: tuple(universe[predicate])
            for predicate in needed
            if predicate in universe
        }
    buckets: Dict[Predicate, List[Atom]] = {}
    for atom in universe:
        if atom.predicate in needed:
            buckets.setdefault(atom.predicate, []).append(atom)
    return {predicate: tuple(atoms) for predicate, atoms in buckets.items()}


# ----------------------------------------------------------------------
# slot search shared by subset matching and covering
# ----------------------------------------------------------------------
def _search_slots(
    slots: Sequence[Tuple[Pairing, ...]],
    slot_variables: Sequence[FrozenSet[Variable]],
    bindings: Dict[Variable, Term],
    stats: MatchSolverStats,
) -> Iterator[Substitution]:
    """Enumerate substitutions filling every slot with one of its candidates.

    A *slot* is a choice point holding ``(pattern, target)`` candidate pairs;
    binding a slot extends the shared substitution with ``μ(pattern) =
    target``.  Branching picks the slot with the fewest surviving candidates
    (most-constrained first); after each binding, the candidates of every
    slot sharing a freshly bound variable are re-filtered (forward checking)
    and an emptied slot fails the branch before it recurses.
    """
    trail: List[Variable] = []

    def recurse(
        active: Tuple[int, ...], domains: Dict[int, Tuple[Pairing, ...]]
    ) -> Iterator[Substitution]:
        if not active:
            stats.solutions += 1
            yield Substitution._from_dict(dict(bindings))
            return
        # most-constrained slot first
        slot = min(active, key=lambda index: len(domains[index]))
        rest = tuple(index for index in active if index != slot)
        for pattern, target in domains[slot]:
            mark = len(trail)
            if not _extend_atom(pattern, target, bindings, trail):
                _undo(bindings, trail, mark)
                continue
            stats.nodes_expanded += 1
            fresh = set(trail[mark:])
            narrowed = domains
            failed = False
            if rest and fresh:
                narrowed = {}
                for index in rest:
                    pairs = domains[index]
                    if slot_variables[index].isdisjoint(fresh):
                        narrowed[index] = pairs
                        continue
                    kept: List[Pairing] = []
                    for candidate in pairs:
                        inner_mark = len(trail)
                        if _extend_atom(
                            candidate[0], candidate[1], bindings, trail
                        ):
                            kept.append(candidate)
                        _undo(bindings, trail, inner_mark)
                    stats.domains_pruned += len(pairs) - len(kept)
                    if not kept:
                        stats.empty_domain_exits += 1
                        failed = True
                        break
                    narrowed[index] = tuple(kept)
            if not failed:
                yield from recurse(rest, narrowed)
            _undo(bindings, trail, mark)

    yield from recurse(tuple(range(len(slots))), dict(enumerate(slots)))


# ----------------------------------------------------------------------
# subset matching: every pattern maps to some universe atom
# ----------------------------------------------------------------------
def solve_match(
    patterns: Sequence[Atom],
    universe: Universe,
    base: Optional[Substitution] = None,
    stats: Optional[MatchSolverStats] = None,
) -> Iterator[Substitution]:
    """Enumerate substitutions mapping every pattern atom into the universe.

    This is the subset-matching primitive behind rule application over a
    fact store, the Skolem/guarded chase body matchers, exact subsumption's
    body check, and :func:`repro.unification.matching.match_conjunction_into_set`.
    ``base`` pre-seeds the substitution; only extensions of it are yielded.
    """
    stats = stats or GLOBAL_MATCH_SOLVER_STATS
    stats.solves += 1
    bindings: Dict[Variable, Term] = dict(base.items()) if base else {}
    if not patterns:
        stats.solutions += 1
        yield Substitution._from_dict(dict(bindings))
        return
    buckets = _bucket(universe, frozenset(p.predicate for p in patterns))
    per_slot = [buckets.get(pattern.predicate, ()) for pattern in patterns]
    yield from _solve_slot_candidates(patterns, per_slot, bindings, stats)


def solve_match_prefiltered(
    patterns: Sequence[Atom],
    candidate_lists: Sequence[Sequence[Atom]],
    base: Optional[Substitution] = None,
    stats: Optional[MatchSolverStats] = None,
) -> Iterator[Substitution]:
    """:func:`solve_match` with per-pattern candidate lists supplied directly.

    Callers that maintain incremental per-slot candidate domains (the naive
    Skolem-chase reference keeps one list per rule body atom, appended as new
    facts arrive) skip the per-solve bucketing and predicate scan entirely.
    Each candidate list may be a superset of the true matches of its pattern
    — candidates are still verified and filtered before the search — but must
    only contain atoms of the pattern's predicate.  Like :func:`solve_match`,
    the lists are snapshotted when the generator starts, so appends made
    while solutions are being pulled are not observed by this solve.
    """
    stats = stats or GLOBAL_MATCH_SOLVER_STATS
    stats.solves += 1
    bindings: Dict[Variable, Term] = dict(base.items()) if base else {}
    if not patterns:
        stats.solutions += 1
        yield Substitution._from_dict(dict(bindings))
        return
    yield from _solve_slot_candidates(patterns, candidate_lists, bindings, stats)


def _solve_slot_candidates(
    patterns: Sequence[Atom],
    per_slot: Sequence[Sequence[Atom]],
    bindings: Dict[Variable, Term],
    stats: MatchSolverStats,
) -> Iterator[Substitution]:
    """Shared tail of the subset-matching solvers (see :func:`solve_match`).

    Filters each slot's raw candidates against the pre-seeded bindings, runs
    the per-variable domain-intersection fixpoint, and hands the surviving
    slots to the search.  The candidate snapshots are taken here, in the
    generator prologue, before any solution is yielded.
    """
    # initial candidate lists, filtered against the pre-seeded bindings
    trail: List[Variable] = []
    candidates: List[List[Atom]] = []
    for pattern, raw in zip(patterns, per_slot):
        kept: List[Atom] = []
        for target in raw:
            mark = len(trail)
            if _extend_atom(pattern, target, bindings, trail):
                kept.append(target)
            _undo(bindings, trail, mark)
        if not kept:
            stats.empty_domain_exits += 1
            return
        candidates.append(kept)
    # intersect per-variable candidate domains across the pattern atoms and
    # discard candidates outside the intersection, to a fixpoint
    positions: List[Tuple[Tuple[int, Variable], ...]] = [
        tuple(
            (index, arg)
            for index, arg in enumerate(pattern.args)
            if type(arg) is Variable and arg not in bindings
        )
        for pattern in patterns
    ]
    changed = True
    while changed:
        changed = False
        domains: Dict[Variable, Set[Term]] = {}
        for slot, slot_positions in enumerate(positions):
            for index, variable in slot_positions:
                values = {target.args[index] for target in candidates[slot]}
                current = domains.get(variable)
                domains[variable] = (
                    values if current is None else current & values
                )
        if any(not domain for domain in domains.values()):
            stats.empty_domain_exits += 1
            return
        for slot, slot_positions in enumerate(positions):
            if not slot_positions:
                continue
            kept = [
                target
                for target in candidates[slot]
                if all(
                    target.args[index] in domains[variable]
                    for index, variable in slot_positions
                )
            ]
            if len(kept) != len(candidates[slot]):
                stats.domains_pruned += len(candidates[slot]) - len(kept)
                candidates[slot] = kept
                changed = True
                if not kept:
                    stats.empty_domain_exits += 1
                    return
    slots = [
        tuple((pattern, target) for target in candidates[slot])
        for slot, pattern in enumerate(patterns)
    ]
    slot_variables = [pattern.variable_set() for pattern in patterns]
    yield from _search_slots(slots, slot_variables, bindings, stats)


def first_match(
    patterns: Sequence[Atom],
    universe: Universe,
    base: Optional[Substitution] = None,
    stats: Optional[MatchSolverStats] = None,
) -> Optional[Substitution]:
    """The first substitution of :func:`solve_match`, or ``None``."""
    return next(solve_match(patterns, universe, base, stats), None)


# ----------------------------------------------------------------------
# covering: every target is the image of some pattern
# ----------------------------------------------------------------------
def solve_cover(
    patterns: Sequence[Atom],
    targets: Sequence[Atom],
    base: Optional[Substitution] = None,
    stats: Optional[MatchSolverStats] = None,
) -> Iterator[Substitution]:
    """Enumerate extensions of ``base`` with ``μ(patterns) ⊇ targets``.

    The dual of :func:`solve_match`: here the *targets* are the slots and
    each must be matched by some pattern atom (exact subsumption's
    ``μ(head1) ⊇ head2`` check).  Patterns not needed to cover any target
    remain unbound.
    """
    stats = stats or GLOBAL_MATCH_SOLVER_STATS
    stats.solves += 1
    bindings: Dict[Variable, Term] = dict(base.items()) if base else {}
    if not targets:
        stats.solutions += 1
        yield Substitution._from_dict(dict(bindings))
        return
    trail: List[Variable] = []
    slots: List[Tuple[Pairing, ...]] = []
    slot_variables: List[FrozenSet[Variable]] = []
    for target in targets:
        pairs: List[Pairing] = []
        variables: Set[Variable] = set()
        for pattern in patterns:
            if pattern.predicate != target.predicate:
                continue
            mark = len(trail)
            if _extend_atom(pattern, target, bindings, trail):
                pairs.append((pattern, target))
                variables |= pattern.variable_set()
            _undo(bindings, trail, mark)
        if not pairs:
            stats.empty_domain_exits += 1
            return
        slots.append(tuple(pairs))
        slot_variables.append(frozenset(variables))
    yield from _search_slots(slots, slot_variables, bindings, stats)


# ----------------------------------------------------------------------
# bounded-range solving (FullDR)
# ----------------------------------------------------------------------
class _BoundedState:
    """Union-find over range-bounded variables with trail-based undo.

    Variables outside the solve domain (e.g. the existential variables of a
    non-full premise) act as rigid terms: an equality against one collapses
    the partner class's domain to that single term.
    """

    __slots__ = ("variables", "var_set", "range_terms", "range_set", "parent", "forced", "stats")

    def __init__(
        self,
        variables: Sequence[Variable],
        range_terms: Sequence[Term],
        stats: MatchSolverStats,
    ) -> None:
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.var_set = frozenset(self.variables)
        self.range_terms: Tuple[Term, ...] = tuple(dict.fromkeys(range_terms))
        self.range_set = frozenset(self.range_terms)
        self.parent: Dict[Variable, Variable] = {v: v for v in self.variables}
        self.forced: Dict[Variable, Term] = {}
        self.stats = stats

    def find(self, variable: Variable) -> Variable:
        parent = self.parent
        while parent[variable] is not variable:
            variable = parent[variable]
        return variable

    def union(self, left: Variable, right: Variable, trail: List[Tuple[str, Variable]]) -> bool:
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root is right_root:
            return True
        left_value = self.forced.get(left_root)
        right_value = self.forced.get(right_root)
        if (
            left_value is not None
            and right_value is not None
            and left_value != right_value
        ):
            return False
        self.parent[right_root] = left_root
        trail.append(("parent", right_root))
        if right_value is not None and left_value is None:
            self.forced[left_root] = right_value
            trail.append(("forced", left_root))
        return True

    def force(
        self,
        variable: Variable,
        term: Term,
        trail: List[Tuple[str, Variable]],
        require_in_range: bool = True,
    ) -> bool:
        root = self.find(variable)
        existing = self.forced.get(root)
        if existing is not None:
            return existing == term
        if require_in_range and term not in self.range_set:
            return False
        self.forced[root] = term
        trail.append(("forced", root))
        # the class's domain collapses from the whole range to one value
        self.stats.domains_pruned += max(len(self.range_terms) - 1, 0)
        return True

    def impose_atom_equality(
        self, left: Atom, right: Atom, trail: List[Tuple[str, Variable]]
    ) -> bool:
        """Propagate ``θ(left) = θ(right)`` position by position."""
        if left.predicate != right.predicate:
            return False
        var_set = self.var_set
        for left_arg, right_arg in zip(left.args, right.args):
            left_is_var = type(left_arg) is Variable and left_arg in var_set
            right_is_var = type(right_arg) is Variable and right_arg in var_set
            if left_is_var and right_is_var:
                if not self.union(left_arg, right_arg, trail):
                    return False
            elif left_is_var:
                if not self.force(left_arg, right_arg, trail):
                    return False
            elif right_is_var:
                if not self.force(right_arg, left_arg, trail):
                    return False
            elif left_arg != right_arg:
                return False
        return True

    def undo(self, trail: List[Tuple[str, Variable]], mark: int) -> None:
        while len(trail) > mark:
            kind, variable = trail.pop()
            if kind == "parent":
                self.parent[variable] = variable
            else:
                del self.forced[variable]

    def assignments(self) -> Iterator[Substitution]:
        """Enumerate all total assignments consistent with the constraints.

        Forced classes are emitted first (their domain is a single value);
        the surviving free classes each range over the full term pool.  With
        no inter-class constraints left, this is a product over class
        domains — never over the individual variables.
        """
        stats = self.stats
        classes: Dict[Variable, List[Variable]] = {}
        for variable in self.variables:
            classes.setdefault(self.find(variable), []).append(variable)
        forced_roots = [root for root in classes if root in self.forced]
        free_roots = [root for root in classes if root not in self.forced]
        mapping: Dict[Variable, Term] = {}
        for root in forced_roots:
            value = self.forced[root]
            for member in classes[root]:
                mapping[member] = value
        if free_roots and not self.range_terms:
            stats.empty_domain_exits += 1
            return

        def recurse(index: int) -> Iterator[Substitution]:
            if index == len(free_roots):
                stats.solutions += 1
                yield Substitution._from_dict(dict(mapping))
                return
            members = classes[free_roots[index]]
            for term in self.range_terms:
                stats.nodes_expanded += 1
                for member in members:
                    mapping[member] = term
                yield from recurse(index + 1)
            for member in members:
                del mapping[member]

        yield from recurse(0)


def solve_bounded(
    variables: Sequence[Variable],
    range_terms: Sequence[Term],
    equalities: Sequence[Tuple[Atom, Atom]] = (),
    base: Optional[Substitution] = None,
    stats: Optional[MatchSolverStats] = None,
) -> Iterator[Substitution]:
    """Enumerate total substitutions of ``variables`` into ``range_terms``.

    Every yielded substitution maps *each* variable to a range term and
    satisfies every atom equality ``θ(A) = θ(B)``.  Intended for function-free
    conjunctions (FullDR's COMPOSE); variables mentioned by the atoms but not
    listed in ``variables`` are treated as rigid terms.  ``base`` pre-forces
    the listed variables it binds (its images need not come from the range).
    """
    stats = stats or GLOBAL_MATCH_SOLVER_STATS
    stats.solves += 1
    state = _BoundedState(variables, range_terms, stats)
    trail: List[Tuple[str, Variable]] = []
    if base:
        for variable, term in base.items():
            if variable in state.var_set and not state.force(
                variable, term, trail, require_in_range=False
            ):
                stats.empty_domain_exits += 1
                return
    for left, right in equalities:
        if not state.impose_atom_equality(left, right, trail):
            stats.empty_domain_exits += 1
            return
    yield from state.assignments()


def solve_bounded_pairings(
    body_atoms: Sequence[Atom],
    head_atoms: Sequence[Atom],
    variables: Sequence[Variable],
    range_terms: Sequence[Term],
    stats: Optional[MatchSolverStats] = None,
) -> Iterator[Tuple[Tuple[Pairing, ...], Substitution]]:
    """Enumerate ``(selection, θ)`` pairs for PROPAGATE-style inferences.

    Each body atom optionally pairs with a same-predicate head atom; for
    every *nonempty* selection, every bounded substitution unifying the
    chosen pairs is enumerated.  The equalities of a pairing are propagated
    the moment it is chosen, so a contradictory pairing prunes its entire
    selection subtree without materializing a single substitution.
    """
    stats = stats or GLOBAL_MATCH_SOLVER_STATS
    stats.solves += 1
    state = _BoundedState(variables, range_terms, stats)
    trail: List[Tuple[str, Variable]] = []
    body_atoms = tuple(body_atoms)
    options: List[Tuple[Atom, ...]] = [
        tuple(head for head in head_atoms if head.predicate == body.predicate)
        for body in body_atoms
    ]
    selection: List[Pairing] = []

    def recurse(index: int) -> Iterator[Tuple[Tuple[Pairing, ...], Substitution]]:
        if index == len(body_atoms):
            if selection:
                chosen = tuple(selection)
                for theta in state.assignments():
                    yield (chosen, theta)
            return
        # leave this body atom unmatched...
        yield from recurse(index + 1)
        # ...or pair it with each compatible head atom
        body = body_atoms[index]
        for head in options[index]:
            mark = len(trail)
            if state.impose_atom_equality(body, head, trail):
                stats.nodes_expanded += 1
                selection.append((body, head))
                yield from recurse(index + 1)
                selection.pop()
            else:
                stats.empty_domain_exits += 1
            state.undo(trail, mark)

    yield from recurse(0)


def solve_unification_slots(
    right_atoms: Sequence[Atom],
    candidate_lists: Sequence[Sequence[Atom]],
    frozen_variables: FrozenSet[Variable],
    stats: Optional[MatchSolverStats] = None,
) -> Iterator[Tuple[Tuple[Atom, ...], Substitution]]:
    """Enumerate per-slot candidate choices under one shared X-unifier.

    Slot ``i`` picks one atom from ``candidate_lists[i]`` to unify with
    ``right_atoms[i]``; a complete choice yields ``(choices, θ)`` where ``θ``
    is exactly ``restricted_mgu(choices, right_atoms, frozen_variables)``.
    This is the counterpart-selection problem of ExbDR (Definition 5.5),
    previously enumerated as a cartesian product with one full MGU attempt
    per combination.  Here the unifier is extended incrementally slot by
    slot (trail-based, rolled back on backtrack) and every accepted choice
    **forward-checks** the remaining slots: their candidate lists are
    re-filtered under the extended unifier, and an emptied list prunes the
    whole subtree before any deeper combination is tried.

    Slots are processed in the given order and candidates in the given list
    order, so solutions come out in the same lexicographic order as the
    cartesian product they replace — downstream derivation order (and hence
    saturation behavior) is unchanged.
    """
    stats = stats or GLOBAL_MATCH_SOLVER_STATS
    stats.solves += 1
    count = len(right_atoms)
    if count == 0:
        return
    if any(not candidates for candidates in candidate_lists):
        stats.empty_domain_exits += 1
        return
    from .mgu import IncrementalUnifier

    unifier = IncrementalUnifier(frozen_variables)
    chosen: List[Atom] = []

    def search(
        depth: int, domains: Sequence[Sequence[Atom]]
    ) -> Iterator[Tuple[Tuple[Atom, ...], Substitution]]:
        if depth == count:
            stats.solutions += 1
            yield tuple(chosen), unifier.substitution()
            return
        target = right_atoms[depth]
        for candidate in domains[depth]:
            mark = unifier.mark()
            if not unifier.unify_atoms(candidate, target):
                stats.domains_pruned += 1
                continue
            stats.nodes_expanded += 1
            narrowed: List[Sequence[Atom]] = list(domains)
            emptied = False
            for later in range(depth + 1, count):
                kept: List[Atom] = []
                later_target = right_atoms[later]
                for later_candidate in domains[later]:
                    probe = unifier.mark()
                    if unifier.unify_atoms(later_candidate, later_target):
                        unifier.undo(probe)
                        kept.append(later_candidate)
                    else:
                        stats.domains_pruned += 1
                if not kept:
                    emptied = True
                    break
                narrowed[later] = kept
            if emptied:
                stats.empty_domain_exits += 1
                unifier.undo(mark)
                continue
            chosen.append(candidate)
            yield from search(depth + 1, narrowed)
            chosen.pop()
            unifier.undo(mark)

    yield from search(0, [tuple(candidates) for candidates in candidate_lists])
