"""Most general unifiers (Section 3) and X-restricted MGUs (Definition 5.4).

A unifier of atom lists ``A1..An`` and ``B1..Bn`` is a substitution ``θ``
with ``θ(Ai) = θ(Bi)`` for every ``i``.  The most general unifier (MGU) is
unique up to variable renaming and is computable in near-linear time; the
implementation below uses the classic Robinson-style algorithm with an
explicit occurs check, which is more than fast enough for the shallow
(depth ≤ 1) terms occurring in guarded rules.

Definition 5.4 introduces *X-MGUs*: unifiers that must leave every variable
of a designated set ``X`` fixed (``θ(x) = x`` for ``x ∈ X``).  They are
computed with the same algorithm while treating the variables of ``X`` as if
they were constants.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterable, List, Optional, Sequence, Tuple

from ..logic.atoms import Atom
from ..logic.substitution import Substitution
from ..logic.terms import FunctionTerm, Term, Variable

_EMPTY_FROZEN: frozenset = frozenset()


class UnificationError(Exception):
    """Raised internally when two terms cannot be unified."""


def _walk(term: Term, bindings: Dict[Variable, Term]) -> Term:
    """Follow variable bindings until reaching an unbound variable or non-variable."""
    while isinstance(term, Variable):
        bound = bindings.get(term)
        if bound is None:
            return term
        term = bound
    return term


def _occurs(var: Variable, term: Term, bindings: Dict[Variable, Term]) -> bool:
    term = _walk(term, bindings)
    if term == var:
        return True
    if isinstance(term, FunctionTerm):
        return any(_occurs(var, arg, bindings) for arg in term.args)
    return False


def _unify_terms(
    left: Term,
    right: Term,
    bindings: Dict[Variable, Term],
    frozen: AbstractSet[Variable],
    trail: Optional[List[Variable]] = None,
) -> None:
    left = _walk(left, bindings)
    right = _walk(right, bindings)
    if left == right:
        return
    if isinstance(left, Variable) and left not in frozen:
        if _occurs(left, right, bindings):
            raise UnificationError(f"occurs check failed for {left} in {right}")
        bindings[left] = right
        if trail is not None:
            trail.append(left)
        return
    if isinstance(right, Variable) and right not in frozen:
        if _occurs(right, left, bindings):
            raise UnificationError(f"occurs check failed for {right} in {left}")
        bindings[right] = left
        if trail is not None:
            trail.append(right)
        return
    if isinstance(left, FunctionTerm) and isinstance(right, FunctionTerm):
        if left.symbol != right.symbol:
            raise UnificationError(
                f"cannot unify function symbols {left.symbol} and {right.symbol}"
            )
        for sub_left, sub_right in zip(left.args, right.args):
            _unify_terms(sub_left, sub_right, bindings, frozen, trail)
        return
    raise UnificationError(f"cannot unify {left} and {right}")


def _resolve(term: Term, bindings: Dict[Variable, Term]) -> Term:
    """Fully apply the triangular bindings to a term."""
    term = _walk(term, bindings)
    if isinstance(term, FunctionTerm):
        return FunctionTerm(
            term.symbol, tuple(_resolve(arg, bindings) for arg in term.args)
        )
    return term


def _to_substitution(bindings: Dict[Variable, Term]) -> Substitution:
    return Substitution._from_dict(
        {var: _resolve(term, bindings) for var, term in bindings.items()}
    )


class IncrementalUnifier:
    """A trail-based X-MGU built one atom pair at a time.

    Slot-by-slot searches (the solver's candidate-pairing enumeration)
    extend one shared triangular binding set per accepted pair and roll it
    back on backtrack via :meth:`undo`, instead of re-unifying the whole
    prefix per candidate the way a fresh :func:`mgu_atoms` call would.
    Because pairs are processed in the same left-to-right order with the
    same binding discipline, :meth:`substitution` after ``n`` accepted pairs
    is exactly ``mgu_atoms(lefts, rights, frozen)`` on those pairs.
    """

    __slots__ = ("_bindings", "_trail", "_frozen")

    def __init__(self, frozen_variables: AbstractSet[Variable] = _EMPTY_FROZEN) -> None:
        self._bindings: Dict[Variable, Term] = {}
        self._trail: List[Variable] = []
        self._frozen = frozen_variables

    def mark(self) -> int:
        """A checkpoint to :meth:`undo` back to."""
        return len(self._trail)

    def undo(self, mark: int) -> None:
        """Discard every binding made since the checkpoint."""
        trail = self._trail
        bindings = self._bindings
        while len(trail) > mark:
            del bindings[trail.pop()]

    def unify_atoms(self, left: Atom, right: Atom) -> bool:
        """Extend the unifier so ``θ(left) = θ(right)``; rolls back on failure."""
        if left.predicate != right.predicate:
            return False
        mark = len(self._trail)
        try:
            for term_left, term_right in zip(left.args, right.args):
                _unify_terms(
                    term_left, term_right, self._bindings, self._frozen, self._trail
                )
        except UnificationError:
            self.undo(mark)
            return False
        return True

    def substitution(self) -> Substitution:
        """The accumulated unifier as a fully resolved substitution."""
        return _to_substitution(self._bindings)


def mgu_atoms(
    left: Sequence[Atom],
    right: Sequence[Atom],
    frozen_variables: AbstractSet[Variable] = _EMPTY_FROZEN,
) -> Optional[Substitution]:
    """MGU of two equal-length atom lists, or ``None`` if none exists.

    ``frozen_variables`` implements Definition 5.4: those variables are kept
    fixed (treated as constants).  An attempt to bind a frozen variable makes
    unification fail.
    """
    if len(left) != len(right):
        return None
    bindings: Dict[Variable, Term] = {}
    try:
        for atom_left, atom_right in zip(left, right):
            if atom_left.predicate != atom_right.predicate:
                return None
            for term_left, term_right in zip(atom_left.args, atom_right.args):
                _unify_terms(term_left, term_right, bindings, frozen_variables)
    except UnificationError:
        return None
    return _to_substitution(bindings)


def mgu(
    left: Atom,
    right: Atom,
    frozen_variables: AbstractSet[Variable] = _EMPTY_FROZEN,
) -> Optional[Substitution]:
    """MGU of two atoms, or ``None`` if none exists."""
    return mgu_atoms((left,), (right,), frozen_variables)


def restricted_mgu(
    left: Sequence[Atom],
    right: Sequence[Atom],
    restricted: Iterable[Variable],
) -> Optional[Substitution]:
    """The ``X``-MGU of Definition 5.4 (``θ(x) = x`` for every ``x`` in ``restricted``)."""
    return mgu_atoms(left, right, frozenset(restricted))


def unifiable(left: Atom, right: Atom) -> bool:
    """``True`` if the two atoms have a unifier."""
    return mgu(left, right) is not None


def terms_unifiable(left: Term, right: Term) -> bool:
    """``True`` if the two terms have a unifier."""
    bindings: Dict[Variable, Term] = {}
    try:
        _unify_terms(left, right, bindings, _EMPTY_FROZEN)
    except UnificationError:
        return False
    return True


def rename_disjoint(
    atoms: Sequence[Atom], taken: AbstractSet[Variable], suffix: str
) -> Tuple[Tuple[Atom, ...], Substitution]:
    """Rename the variables of ``atoms`` away from ``taken``.

    Returns the renamed atoms together with the renaming substitution.  Only
    variables clashing with ``taken`` are renamed.
    """
    clashing = {
        var
        for atom in atoms
        for var in atom.variables()
        if var in taken
    }
    renaming = Substitution(
        {var: Variable(f"{var.name}#{suffix}") for var in clashing}
    )
    return renaming.apply_atoms(atoms), renaming
