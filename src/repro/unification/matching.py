"""One-sided matching (subsumption-style unification).

A *matcher* of an atom ``A`` against an atom ``B`` is a substitution ``μ``
with ``μ(A) = B`` (only the variables of ``A`` may be instantiated).  Matching
is the workhorse of subsumption checking (Definition 5.1) and of applying
Datalog rules to ground facts.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from ..logic.atoms import Atom
from ..logic.substitution import Substitution
from ..logic.terms import FunctionTerm, Term, Variable


def _match_term(
    pattern: Term, target: Term, bindings: Dict[Variable, Term]
) -> bool:
    """Extend ``bindings`` so that the pattern maps onto the target, if possible."""
    if isinstance(pattern, Variable):
        bound = bindings.get(pattern)
        if bound is None:
            bindings[pattern] = target
            return True
        return bound == target
    if isinstance(pattern, FunctionTerm):
        if not isinstance(target, FunctionTerm) or pattern.symbol != target.symbol:
            return False
        return all(
            _match_term(sub_pattern, sub_target, bindings)
            for sub_pattern, sub_target in zip(pattern.args, target.args)
        )
    return pattern == target


def match_atom(
    pattern: Atom, target: Atom, base: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Match a single atom against a target atom.

    Returns the extension of ``base`` witnessing ``μ(pattern) = target``, or
    ``None`` if no such extension exists.
    """
    if pattern.predicate != target.predicate:
        return None
    if pattern.is_ground:
        # A ground pattern matches only itself; atoms are interned, so the
        # comparison is an identity check.
        return (base or Substitution()) if pattern == target else None
    bindings: Dict[Variable, Term] = dict(base.items()) if base else {}
    for pattern_arg, target_arg in zip(pattern.args, target.args):
        if not _match_term(pattern_arg, target_arg, bindings):
            return None
    return Substitution._from_dict(bindings)


def match_atom_lists(
    patterns: Sequence[Atom], targets: Sequence[Atom]
) -> Optional[Substitution]:
    """Match equal-length atom lists position by position."""
    if len(patterns) != len(targets):
        return None
    substitution: Optional[Substitution] = Substitution()
    for pattern, target in zip(patterns, targets):
        substitution = match_atom(pattern, target, substitution)
        if substitution is None:
            return None
    return substitution


def match_conjunction_into_set(
    patterns: Sequence[Atom],
    targets: Sequence[Atom],
    base: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """Enumerate substitutions mapping every pattern atom to *some* target atom.

    This is the subset-matching problem underlying both subsumption
    (``μ(β1) ⊆ β2``) and rule application over a set of facts.  Routed
    through the shared constraint-propagating solver
    (:func:`repro.unification.solver.solve_match`): per-variable domains are
    intersected up front, the most-constrained pattern is branched on first,
    and every binding forward-checks the remaining patterns.
    """
    from .solver import solve_match

    return solve_match(patterns, targets, base)


def naive_match_conjunction_into_set(
    patterns: Sequence[Atom],
    targets: Sequence[Atom],
    base: Optional[Substitution] = None,
) -> Iterator[Substitution]:
    """Left-to-right backtracking reference for subset matching.

    The pre-solver enumeration, retained as the executable spec: the
    property tests check that the constraint-propagating solver produces
    exactly this substitution set.  Never use it on a hot path.
    """
    by_predicate: Dict = {}
    for target in targets:
        by_predicate.setdefault(target.predicate, []).append(target)

    def recurse(index: int, substitution: Substitution) -> Iterator[Substitution]:
        if index == len(patterns):
            yield substitution
            return
        pattern = patterns[index]
        for target in by_predicate.get(pattern.predicate, ()):
            extended = match_atom(pattern, target, substitution)
            if extended is not None:
                yield from recurse(index + 1, extended)

    yield from recurse(0, base or Substitution())


def exists_match_into_set(
    patterns: Sequence[Atom],
    targets: Sequence[Atom],
    base: Optional[Substitution] = None,
) -> Optional[Substitution]:
    """Return some substitution mapping all patterns into the target set, or ``None``."""
    return next(match_conjunction_into_set(patterns, targets, base), None)


def is_instance_of(general: Atom, specific: Atom) -> bool:
    """``True`` if ``specific`` is an instance of ``general``."""
    return match_atom(general, specific) is not None


def is_variant(left: Atom, right: Atom) -> bool:
    """``True`` if the two atoms are equal up to variable renaming."""
    forward = match_atom(left, right)
    backward = match_atom(right, left)
    return (
        forward is not None
        and backward is not None
        and forward.is_renaming()
        and backward.is_renaming()
    )
