"""Weakly covering atoms and variable depth (de Nivelle, used in Appendix C).

The correctness argument for the Skolemized algorithms relies on two notions
from de Nivelle's resolution decision procedure for the guarded fragment:

* the *variable depth* of an atom is ``-1`` if the atom is ground, and
  otherwise the maximum number of nested function symbols above a variable;
* an atom is *weakly covering* if each non-ground functional subterm of the
  atom contains all variables of the atom.

These checks are exposed so that the saturation engine can assert (in debug
builds and in tests) that every derived rule stays within the guarded
fragment, which is what guarantees termination.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..logic.atoms import Atom
from ..logic.rules import Rule
from ..logic.terms import FunctionTerm, Term, Variable


def term_variable_depth(term: Term, depth: int = 0) -> int:
    """Maximum function-nesting depth above any variable of the term (-1 if ground)."""
    if isinstance(term, Variable):
        return depth
    if isinstance(term, FunctionTerm):
        best = -1
        for arg in term.args:
            best = max(best, term_variable_depth(arg, depth + 1))
        return best
    return -1


def atom_variable_depth(atom: Atom) -> int:
    """Variable depth of an atom (de Nivelle, Definition 3)."""
    best = -1
    for arg in atom.args:
        best = max(best, term_variable_depth(arg))
    return best


def _functional_subterms(term: Term) -> Iterator[FunctionTerm]:
    if isinstance(term, FunctionTerm):
        yield term
        for arg in term.args:
            yield from _functional_subterms(arg)


def is_weakly_covering(atom: Atom) -> bool:
    """``True`` if every non-ground functional subterm contains all atom variables."""
    atom_vars = atom.variable_set()
    for arg in atom.args:
        for subterm in _functional_subterms(arg):
            if subterm.is_ground:
                continue
            if frozenset(subterm.variables()) != atom_vars:
                return False
    return True


def rule_is_weakly_covering(rule: Rule) -> bool:
    """``True`` if every atom of the rule is weakly covering."""
    return all(is_weakly_covering(atom) for atom in rule.body) and is_weakly_covering(
        rule.head
    )


def rule_variable_depth(rule: Rule) -> int:
    """Maximum variable depth over all atoms of a rule."""
    depths = [atom_variable_depth(atom) for atom in rule.body]
    depths.append(atom_variable_depth(rule.head))
    return max(depths) if depths else -1


def all_weakly_covering(atoms: Iterable[Atom]) -> bool:
    """``True`` if every atom of the collection is weakly covering."""
    return all(is_weakly_covering(atom) for atom in atoms)
