"""Unification and matching: MGUs, X-MGUs, one-sided matching, weak covering."""

from .covering import (
    all_weakly_covering,
    atom_variable_depth,
    is_weakly_covering,
    rule_is_weakly_covering,
    rule_variable_depth,
    term_variable_depth,
)
from .matching import (
    exists_match_into_set,
    is_instance_of,
    is_variant,
    match_atom,
    match_atom_lists,
    match_conjunction_into_set,
)
from .mgu import (
    UnificationError,
    mgu,
    mgu_atoms,
    rename_disjoint,
    restricted_mgu,
    terms_unifiable,
    unifiable,
)

__all__ = [
    "UnificationError",
    "all_weakly_covering",
    "atom_variable_depth",
    "exists_match_into_set",
    "is_instance_of",
    "is_variant",
    "is_weakly_covering",
    "match_atom",
    "match_atom_lists",
    "match_conjunction_into_set",
    "mgu",
    "mgu_atoms",
    "rename_disjoint",
    "restricted_mgu",
    "rule_is_weakly_covering",
    "rule_variable_depth",
    "term_variable_depth",
    "terms_unifiable",
    "unifiable",
]
