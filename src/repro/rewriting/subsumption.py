"""Redundancy elimination: tautologies and subsumption (Definition 5.1, Section 6).

Two subsumption checks are provided:

* :func:`exact_tgd_subsumes` / :func:`exact_rule_subsumes` — the exact
  (NP-complete) checks of Definition 5.1, implemented by backtracking over
  atom matchings;
* :func:`approximate_tgd_subsumes` / :func:`approximate_rule_subsumes` — the
  polynomial approximation of Section 6: both clauses are normalized (atoms
  sorted, variables canonically renamed) and subsumption is approximated by
  set inclusion between the normalized bodies/heads.  The approximation is
  *sound for discarding*: whenever it reports subsumption, genuine subsumption
  holds, so discarding the subsumed clause never loses completeness; it may
  however fail to detect some genuine subsumptions, keeping more clauses.
"""

from __future__ import annotations

from typing import Union

from ..logic.normal_form import normalize_rule, normalize_tgd
from ..logic.rules import Rule
from ..logic.substitution import Substitution
from ..logic.terms import Variable
from ..logic.tgd import TGD
from ..unification.matching import match_atom
from ..unification.solver import first_match, solve_cover, solve_match

Clause = Union[TGD, Rule]


# ----------------------------------------------------------------------
# tautologies
# ----------------------------------------------------------------------
def is_syntactic_tautology(clause: Clause) -> bool:
    """Definition 5.1: the clause derives nothing new by construction."""
    return clause.is_syntactic_tautology


# ----------------------------------------------------------------------
# exact subsumption
# ----------------------------------------------------------------------
# Both backtracking enumerations (``μ(body1) ⊆ body2`` and ``μ(head1) ⊇
# head2``) are routed through the shared constraint-propagating solver:
# :func:`repro.unification.solver.solve_match` for the body subset check and
# :func:`repro.unification.solver.solve_cover` for the head covering check.


def exact_rule_subsumes(subsumer: Rule, subsumed: Rule) -> bool:
    """Rule subsumption: some μ with μ(body1) ⊆ body2 and μ(head1) = head2."""
    head_match = match_atom(subsumer.head, subsumed.head)
    if head_match is not None:
        return first_match(subsumer.body, subsumed.body, head_match) is not None
    return False


def exact_tgd_subsumes(subsumer: TGD, subsumed: TGD) -> bool:
    """TGD subsumption per Definition 5.1.

    There must be a substitution μ with domain ``x1 ∪ y1`` such that
    μ maps universal variables of the subsumer into universal variables of the
    subsumed TGD, maps existential variables injectively into existential
    variables (of either TGD), and satisfies μ(body1) ⊆ body2 and
    μ(head1) ⊇ head2.
    """
    universal_2 = subsumed.universal_variables
    existential_1 = subsumer.existential_variables
    existential_2 = subsumed.existential_variables

    def valid(substitution: Substitution) -> bool:
        for var in subsumer.universal_variables:
            image = substitution.get(var, var)
            if not isinstance(image, Variable) or image not in universal_2:
                return False
        images = []
        for var in existential_1:
            image = substitution.get(var, var)
            if not isinstance(image, Variable):
                return False
            if image not in existential_1 and image not in existential_2:
                return False
            images.append(image)
        return len(set(images)) == len(images)

    for body_match in solve_match(subsumer.body, subsumed.body):
        for full_match in solve_cover(subsumer.head, subsumed.head, body_match):
            if valid(full_match):
                return True
    return False


# ----------------------------------------------------------------------
# approximate (normalized) subsumption — Section 6
# ----------------------------------------------------------------------
def approximate_tgd_subsumes(subsumer: TGD, subsumed: TGD) -> bool:
    """Normalized-inclusion approximation of TGD subsumption.

    Saturation stores clauses in canonical form, so both normalize calls are
    O(1) flag checks and the inclusion tests run on cached frozensets of
    interned atoms.
    """
    left = normalize_tgd(subsumer)
    right = normalize_tgd(subsumed)
    return (
        left.body_atom_set <= right.body_atom_set
        and left.head_atom_set >= right.head_atom_set
    )


def approximate_rule_subsumes(subsumer: Rule, subsumed: Rule) -> bool:
    """Normalized-inclusion approximation of rule subsumption."""
    left = normalize_rule(subsumer)
    right = normalize_rule(subsumed)
    return left.head == right.head and left.body_atom_set <= right.body_atom_set


# ----------------------------------------------------------------------
# dispatchers
# ----------------------------------------------------------------------
def subsumes(subsumer: Clause, subsumed: Clause, exact: bool = False) -> bool:
    """Dispatch to the right subsumption check based on clause type."""
    if isinstance(subsumer, TGD) and isinstance(subsumed, TGD):
        if exact:
            return exact_tgd_subsumes(subsumer, subsumed)
        return approximate_tgd_subsumes(subsumer, subsumed)
    if isinstance(subsumer, Rule) and isinstance(subsumed, Rule):
        if exact:
            return exact_rule_subsumes(subsumer, subsumed)
        return approximate_rule_subsumes(subsumer, subsumed)
    return False
