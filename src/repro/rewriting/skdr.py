"""The Skolem Datalog Rewriting inference rule SkDR (Definition 5.10).

SkDR manipulates rules obtained by Skolemizing the input GTGDs.  It resolves
the head of a rule with a Skolem-free body and a Skolem-containing head
against a single body atom of another guarded rule:

``τ  = β → H``                        (β Skolem-free, H contains a Skolem symbol)
``τ' = A' ∧ β' → H'``                 (A' contains a Skolem symbol, or τ' is
                                       Skolem-free and A' is a guard of τ')

With ``θ`` an MGU of ``H`` and ``A'``, the inference derives
``θ(β) ∧ θ(β') → θ(H')``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..indexing.path_index import RulePathIndex
from ..logic.atoms import Atom
from ..logic.rules import Rule
from ..logic.skolem import SkolemFactory, skolemize
from ..logic.tgd import TGD, head_normalize
from ..unification.mgu import mgu
from .base import InferenceRule, RewritingSettings
from .lookahead import rule_result_is_dead_end
from .registry import AlgorithmCapabilities, register_algorithm


@register_algorithm(
    "skdr",
    capabilities=AlgorithmCapabilities(
        clause_kind="rule",
        supports_lookahead=True,
        blowup_class="single-exponential",
        description="Resolution on Skolemized rules (Definition 5.10)",
    ),
)
class SkDR(InferenceRule[Rule]):
    """Definition 5.10 plugged into the saturation engine."""

    name = "SkDR"

    def __init__(self, settings: Optional[RewritingSettings] = None) -> None:
        super().__init__(settings)
        self._index = RulePathIndex()
        #: eligible-A' atoms per rule; rules are interned, so renamed-apart
        #: consumers hit this cache on every premise pairing after the first
        self._eligible_cache: dict = {}

    # ------------------------------------------------------------------
    # InferenceRule hooks
    # ------------------------------------------------------------------
    def initial_clauses(self, sigma: Sequence[TGD]) -> Tuple[Rule, ...]:
        return skolemize(head_normalize(sigma), SkolemFactory())

    def register(self, clause: Rule) -> None:
        self._index.add(clause)

    def unregister(self, clause: Rule) -> None:
        self._index.remove(clause)

    def extract_datalog(self, worked_off: Iterable[Rule]) -> Tuple[Rule, ...]:
        return tuple(rule for rule in worked_off if rule.is_skolem_free)

    def infer(self, clause: Rule, worked_off: Set[Rule]) -> Iterable[Rule]:
        results: List[Rule] = []
        # clause as the generator premise τ (Skolem-free body, Skolem head)
        if self._is_generator(clause):
            for partner in self._index.rules_with_unifiable_body_atom(clause.head):
                if partner in worked_off:
                    results.extend(self._combine(clause, partner))
        # clause as the consumer premise τ'
        for atom in self._eligible_atoms(clause):
            for partner in self._index.rules_with_unifiable_head(atom):
                if partner in worked_off and self._is_generator(partner):
                    results.extend(self._combine(partner, clause))
        return results

    # ------------------------------------------------------------------
    # inference details
    # ------------------------------------------------------------------
    @staticmethod
    def _is_generator(rule: Rule) -> bool:
        """A rule eligible as τ: Skolem-free body and Skolem-containing head."""
        return rule.body_is_skolem_free and not rule.head.is_function_free

    @staticmethod
    def _eligible_body_atoms(rule: Rule) -> Tuple[Atom, ...]:
        """Body atoms eligible as A' in τ' (Definition 5.10's second bullet)."""
        if rule.is_skolem_free:
            variables = rule.variables()
            return tuple(
                atom for atom in rule.body if atom.variable_set() >= variables
            )
        return tuple(atom for atom in rule.body if not atom.is_function_free)

    def _eligible_atoms(self, rule: Rule) -> Tuple[Atom, ...]:
        """Cached :meth:`_eligible_body_atoms` (sound because rules are immutable)."""
        cached = self._eligible_cache.get(rule)
        if cached is None:
            cached = self._eligible_cache[rule] = self._eligible_body_atoms(rule)
        return cached

    def _combine(self, generator: Rule, consumer: Rule) -> List[Rule]:
        """All SkDR consequences of resolving the generator head into the consumer body."""
        consumer = consumer.rename_apart("r")
        results: List[Rule] = []
        seen: Set[Rule] = set()
        for atom in self._eligible_atoms(consumer):
            theta = mgu(generator.head, atom)
            if theta is None:
                continue
            remaining = tuple(other for other in consumer.body if other is not atom)
            new_body = _dedupe(
                theta.apply_atoms(generator.body) + theta.apply_atoms(remaining)
            )
            new_head = theta.apply_atom(consumer.head)
            if self.settings.use_lookahead and rule_result_is_dead_end(
                new_head, self.sigma_body_predicates
            ):
                continue
            try:
                derived = Rule(new_body, new_head)
            except ValueError:
                continue
            if derived not in seen:
                seen.add(derived)
                results.append(derived)
        return results


def _dedupe(atoms: Tuple[Atom, ...]) -> Tuple[Atom, ...]:
    seen = {}
    for atom in atoms:
        if atom not in seen:
            seen[atom] = None
    return tuple(seen)
