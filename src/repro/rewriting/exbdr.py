"""The Existential-Based Datalog Rewriting inference rule ExbDR (Definition 5.5).

ExbDR manipulates GTGDs directly.  It combines a non-full GTGD

``τ  =  β → ∃ȳ (η ∧ A1 ∧ ... ∧ An)``         (n ≥ 1)

with a full GTGD

``τ' =  A'1 ∧ ... ∧ A'n ∧ β' → H'``

via a ȳ-MGU ``θ`` of ``A1..An`` and ``A'1..A'n`` satisfying
``θ(x̄) ∩ ȳ = ∅`` and ``vars(θ(β')) ∩ ȳ = ∅``, deriving

``θ(β) ∧ θ(β') → ∃ȳ θ(η) ∧ θ(A1) ∧ ... ∧ θ(An) ∧ θ(H')``.

Candidate selection follows Proposition 5.7: a guard of ``τ'`` always
participates, so the implementation picks a guard ``G'``, unifies it with a
head atom of ``τ``, computes the *side atoms* forced to participate, and then
enumerates counterpart head atoms for them using the positional
compatibility filter described after Proposition 5.7.  The surviving
counterpart lists are searched through the shared constraint-propagating
solver (:func:`repro.unification.solver.solve_unification_slots`): one
X-unifier is extended slot by slot with forward checking over the remaining
slots, instead of attempting a full MGU per cartesian combination, and the
per-clause head-atom predicate buckets feeding those lists are cached across
premise pairs and saturation rounds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..indexing.unification_index import TGDUnificationIndex
from ..logic.atoms import Atom, Predicate
from ..logic.rules import Rule, datalog_tgd_to_rule
from ..logic.substitution import Substitution
from ..logic.terms import Variable
from ..logic.tgd import TGD, head_normalize
from ..unification.mgu import restricted_mgu
from ..unification.solver import solve_unification_slots
from .base import InferenceRule, RewritingSettings
from .lookahead import tgd_result_is_dead_end
from .registry import AlgorithmCapabilities, register_algorithm


@register_algorithm(
    "exbdr",
    capabilities=AlgorithmCapabilities(
        clause_kind="tgd",
        supports_lookahead=True,
        blowup_class="single-exponential",
        description="Existential-based rewriting on GTGDs (Definition 5.5)",
    ),
)
class ExbDR(InferenceRule[TGD]):
    """Definition 5.5 plugged into the saturation engine."""

    name = "ExbDR"

    def __init__(self, settings: Optional[RewritingSettings] = None) -> None:
        super().__init__(settings)
        self._index = TGDUnificationIndex()
        #: cap on the number of side-atom counterpart combinations explored per
        #: guard choice; prevents pathological blow-ups on adversarial inputs
        self.max_combinations = 100_000
        # per-clause head atoms bucketed by predicate: the counterpart domain
        # of every guard/side-atom pairing.  Head tuples are interned, so the
        # buckets built for a clause are reused for every partner it is
        # combined with, across all saturation rounds.
        self._head_buckets: Dict[
            Tuple[Atom, ...], Dict[Predicate, Tuple[Atom, ...]]
        ] = {}

    # ------------------------------------------------------------------
    # InferenceRule hooks
    # ------------------------------------------------------------------
    def initial_clauses(self, sigma: Sequence[TGD]) -> Tuple[TGD, ...]:
        return head_normalize(sigma)

    def register(self, clause: TGD) -> None:
        self._index.add(clause)

    def unregister(self, clause: TGD) -> None:
        self._index.remove(clause)

    def extract_datalog(self, worked_off: Iterable[TGD]) -> Tuple[Rule, ...]:
        rules = []
        for tgd in worked_off:
            if tgd.is_datalog_rule:
                rules.append(datalog_tgd_to_rule(tgd))
        return tuple(rules)

    def infer(self, clause: TGD, worked_off: Set[TGD]) -> Iterable[TGD]:
        # Partner retrieval goes through the guard-signature buckets: the
        # Definition 5.5 unification always joins a guard of the full premise
        # with a head atom of the non-full premise, so partners without a
        # matching guard relation are never even enumerated.
        results: List[TGD] = []
        if clause.is_non_full:
            for partner in self._index.full_partners_by_guard(clause):
                if partner in worked_off and partner.is_datalog_rule:
                    results.extend(self._combine(clause, partner))
        else:
            for partner in self._index.non_full_partners_by_guard(clause):
                if partner in worked_off:
                    results.extend(self._combine(partner, clause))
        return results

    # ------------------------------------------------------------------
    # the inference proper
    # ------------------------------------------------------------------
    def _head_bucket(self, head: Tuple[Atom, ...]) -> Dict[Predicate, Tuple[Atom, ...]]:
        buckets = self._head_buckets.get(head)
        if buckets is None:
            grouped: Dict[Predicate, List[Atom]] = {}
            for atom in head:
                grouped.setdefault(atom.predicate, []).append(atom)
            buckets = {
                predicate: tuple(atoms) for predicate, atoms in grouped.items()
            }
            self._head_buckets[head] = buckets
        return buckets

    def _combine(self, non_full: TGD, full: TGD) -> List[TGD]:
        """All ExbDR consequences of the ordered pair (non-full τ, full τ')."""
        full = full.rename_apart("r")
        existential = non_full.existential_variables
        universal = non_full.universal_variables
        head_buckets = self._head_bucket(non_full.head)
        results: List[TGD] = []
        seen: Set[TGD] = set()
        for guard in full.guards():
            for head_guard in head_buckets.get(guard.predicate, ()):
                sigma = restricted_mgu((head_guard,), (guard,), existential)
                if sigma is None:
                    continue
                if self._maps_universal_into_existential(sigma, universal, existential):
                    continue
                side_atoms = self._side_atoms(full.body, sigma, existential)
                if guard not in side_atoms:
                    # Proposition 5.7 guarantees the guard participates; if the
                    # unification did not touch an existential variable the
                    # pair cannot yield an inference.
                    continue
                rest_atoms = tuple(
                    atom for atom in full.body if atom not in set(side_atoms)
                )
                candidate_lists = [
                    self._counterparts(
                        atom,
                        head_buckets.get(atom.predicate, ()),
                        sigma,
                        existential,
                    )
                    for atom in side_atoms
                ]
                if any(not candidates for candidates in candidate_lists):
                    continue
                combination_count = 1
                for candidates in candidate_lists:
                    combination_count *= len(candidates)
                if combination_count > self.max_combinations:
                    candidate_lists = [candidates[:4] for candidates in candidate_lists]
                # slot-by-slot selection under one incrementally extended
                # X-unifier with forward checking, instead of a cartesian
                # product with one full MGU attempt per combination; the
                # solver yields in product order, so `seen`/`results` are
                # populated exactly as before
                for _combination, theta in solve_unification_slots(
                    side_atoms, candidate_lists, existential
                ):
                    derived = self._derive(
                        non_full,
                        full,
                        theta,
                        rest_atoms,
                        existential,
                        universal,
                    )
                    if derived is not None and derived not in seen:
                        seen.add(derived)
                        results.append(derived)
        return results

    @staticmethod
    def _maps_universal_into_existential(
        substitution: Substitution,
        universal: frozenset,
        existential: frozenset,
    ) -> bool:
        """Check the Definition 5.5 requirement ``θ(x̄) ∩ ȳ = ∅``."""
        for var in universal:
            image = substitution.get(var)
            if image is not None and isinstance(image, Variable) and image in existential:
                return True
        return False

    @staticmethod
    def _side_atoms(
        body: Tuple[Atom, ...], sigma: Substitution, existential: frozenset
    ) -> Tuple[Atom, ...]:
        """Body atoms of τ' whose σ-image mentions an existential variable of τ."""
        side = []
        for atom in body:
            image = sigma.apply_atom(atom)
            if any(var in existential for var in image.variables()):
                side.append(atom)
        return tuple(side)

    @staticmethod
    def _counterparts(
        body_atom: Atom,
        head_atoms: Tuple[Atom, ...],
        sigma: Substitution,
        existential: frozenset,
    ) -> List[Atom]:
        """Candidate head atoms for a side atom (positional filter of Section 5.1).

        ``head_atoms`` is the side atom's predicate bucket of the non-full
        clause's (cached) head grouping — same-predicate by construction.
        """
        image = sigma.apply_atom(body_atom)
        candidates: List[Atom] = []
        for head_atom in head_atoms:
            head_image = sigma.apply_atom(head_atom)
            compatible = True
            for body_arg, head_arg in zip(image.args, head_image.args):
                body_is_existential = (
                    isinstance(body_arg, Variable) and body_arg in existential
                )
                head_is_existential = (
                    isinstance(head_arg, Variable) and head_arg in existential
                )
                if (body_is_existential or head_is_existential) and body_arg != head_arg:
                    compatible = False
                    break
            if compatible:
                candidates.append(head_atom)
        return candidates

    def _derive(
        self,
        non_full: TGD,
        full: TGD,
        theta: Substitution,
        rest_atoms: Tuple[Atom, ...],
        existential: frozenset,
        universal: frozenset,
    ) -> Optional[TGD]:
        """Attempt one ExbDR inference for a fixed matching of side atoms.

        ``theta`` is the ȳ-MGU of the chosen counterparts and the side atoms,
        built incrementally by :func:`solve_unification_slots` — identical to
        what ``restricted_mgu(counterparts, side_atoms, ȳ)`` would return.
        """
        if self._maps_universal_into_existential(theta, universal, existential):
            return None
        new_rest = theta.apply_atoms(rest_atoms)
        if any(
            var in existential for atom in new_rest for var in atom.variables()
        ):
            return None
        new_head_extra = theta.apply_atom(full.head[0])
        if self.settings.use_lookahead and tgd_result_is_dead_end(
            new_head_extra, existential, self.sigma_body_predicates
        ):
            return None
        new_body = _dedupe(theta.apply_atoms(non_full.body) + new_rest)
        new_head = _dedupe(theta.apply_atoms(non_full.head) + (new_head_extra,))
        return TGD(new_body, new_head)


def _dedupe(atoms: Tuple[Atom, ...]) -> Tuple[Atom, ...]:
    seen = {}
    for atom in atoms:
        if atom not in seen:
            seen[atom] = None
    return tuple(seen)
