"""Top-level entry points for computing Datalog rewritings of GTGDs.

``rewrite(tgds, algorithm="hypdr")`` validates the input (every TGD must be
guarded), runs the requested algorithm through the saturation engine, and
returns a :class:`repro.rewriting.base.RewritingResult` whose
``datalog_rules`` are the rewriting ``rew(Σ)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple, Type

from ..logic.tgd import TGD, head_normalize
from .base import InferenceRule, RewritingResult, RewritingSettings
from .exbdr import ExbDR
from .fulldr import FullDR
from .hypdr import HypDR
from .saturation import Saturation
from .skdr import SkDR

ALGORITHMS: Dict[str, Type[InferenceRule]] = {
    "exbdr": ExbDR,
    "skdr": SkDR,
    "hypdr": HypDR,
    "fulldr": FullDR,
}


class UnguardedTGDError(ValueError):
    """Raised when an input TGD is not guarded."""


def available_algorithms() -> Tuple[str, ...]:
    """The names accepted by :func:`rewrite`."""
    return tuple(sorted(ALGORITHMS))


def validate_guardedness(tgds: Iterable[TGD]) -> Tuple[TGD, ...]:
    """Check that every TGD is guarded; return them as a tuple."""
    collected = tuple(tgds)
    for tgd in collected:
        if not tgd.is_guarded:
            raise UnguardedTGDError(f"TGD is not guarded: {tgd}")
    return collected

def make_inference(
    algorithm: str, settings: Optional[RewritingSettings] = None
) -> InferenceRule:
    """Instantiate the inference rule for an algorithm name."""
    key = algorithm.lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {available_algorithms()}"
        )
    return ALGORITHMS[key](settings)


def rewrite(
    tgds: Iterable[TGD],
    algorithm: str = "hypdr",
    settings: Optional[RewritingSettings] = None,
) -> RewritingResult:
    """Compute a Datalog rewriting of a finite set of GTGDs.

    Parameters
    ----------
    tgds:
        The input GTGDs (arbitrary heads; they are brought into head-normal
        form internally).
    algorithm:
        One of ``"exbdr"``, ``"skdr"``, ``"hypdr"`` (default), ``"fulldr"``.
    settings:
        Optional :class:`RewritingSettings` controlling subsumption, the cheap
        lookahead, timeouts, and clause limits.
    """
    sigma = validate_guardedness(tgds)
    inference = make_inference(algorithm, settings)
    return Saturation(inference, settings).run(sigma)


def rewrite_program(
    tgds: Iterable[TGD],
    algorithm: str = "hypdr",
    settings: Optional[RewritingSettings] = None,
):
    """Like :func:`rewrite` but return the rewriting as a ``DatalogProgram``."""
    return rewrite(tgds, algorithm=algorithm, settings=settings).program()
