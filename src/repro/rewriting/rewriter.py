"""Top-level entry points for computing Datalog rewritings of GTGDs.

``rewrite(tgds, algorithm="hypdr")`` validates the input (every TGD must be
guarded), runs the requested algorithm through the saturation engine, and
returns a :class:`repro.rewriting.base.RewritingResult` whose
``datalog_rules`` are the rewriting ``rew(Σ)``.

Dispatch goes through the pluggable registry of :mod:`.registry`: importing
this module loads the four built-in algorithms (ExbDR, SkDR, HypDR, FullDR),
each of which registers itself with :func:`.registry.register_algorithm`.
Additional rewriters plug in by decorating their inference-rule class the
same way — no dispatch code changes needed.  ``available_algorithms()``
reports the registered names, and ``available_algorithms(detailed=True)``
additionally reports each algorithm's capability metadata (clause kind,
lookahead support, expected blowup class).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Type, Union

from ..logic.tgd import TGD, head_normalize
from .base import InferenceRule, RewritingResult, RewritingSettings

# importing the algorithm modules populates the registry
from . import exbdr as _exbdr  # noqa: F401
from . import fulldr as _fulldr  # noqa: F401
from . import hypdr as _hypdr  # noqa: F401
from . import skdr as _skdr  # noqa: F401
from .registry import (
    AlgorithmCapabilities,
    RegistryView,
    algorithm_capabilities,
    algorithm_entry,
    capability_report,
    registered_algorithms,
)
from .saturation import Saturation

#: backward-compatible ``name -> inference class`` view of the registry
ALGORITHMS = RegistryView()


class UnguardedTGDError(ValueError):
    """Raised when an input TGD is not guarded."""


def available_algorithms(
    detailed: bool = False,
) -> Union[Tuple[str, ...], Dict[str, Dict[str, object]]]:
    """The names accepted by :func:`rewrite`.

    With ``detailed=True``, return a ``name -> capabilities`` mapping instead
    (each value is the :meth:`AlgorithmCapabilities.as_dict` record).
    """
    if detailed:
        return capability_report()
    return registered_algorithms()


def validate_guardedness(tgds: Iterable[TGD]) -> Tuple[TGD, ...]:
    """Check that every TGD is guarded; return them as a tuple."""
    collected = tuple(tgds)
    for tgd in collected:
        if not tgd.is_guarded:
            raise UnguardedTGDError(f"TGD is not guarded: {tgd}")
    return collected


def make_inference(
    algorithm: str, settings: Optional[RewritingSettings] = None
) -> InferenceRule:
    """Instantiate the inference rule for a registered algorithm name."""
    return algorithm_entry(algorithm).cls(settings)


def rewrite(
    tgds: Iterable[TGD],
    algorithm: str = "hypdr",
    settings: Optional[RewritingSettings] = None,
) -> RewritingResult:
    """Compute a Datalog rewriting of a finite set of GTGDs.

    Parameters
    ----------
    tgds:
        The input GTGDs (arbitrary heads; they are brought into head-normal
        form internally).
    algorithm:
        A registered algorithm name; the built-ins are ``"exbdr"``,
        ``"skdr"``, ``"hypdr"`` (default), and ``"fulldr"``.  See
        :func:`available_algorithms`.
    settings:
        Optional :class:`RewritingSettings` controlling subsumption, the cheap
        lookahead, timeouts, and clause limits.
    """
    sigma = validate_guardedness(tgds)
    inference = make_inference(algorithm, settings)
    return Saturation(inference, settings).run(sigma)


def rewrite_program(
    tgds: Iterable[TGD],
    algorithm: str = "hypdr",
    settings: Optional[RewritingSettings] = None,
):
    """Like :func:`rewrite` but return the rewriting as a ``DatalogProgram``."""
    return rewrite(tgds, algorithm=algorithm, settings=settings).program()
