"""The FullDR algorithm (Appendix E): deriving Datalog rules directly.

FullDR manipulates GTGDs but only ever *derives* full TGDs.  It has two
variants:

* (COMPOSE) combines two full TGDs ``τ = β → A`` and ``τ' = A' ∧ β' → H'``
  under any substitution ``θ`` with ``θ(A) = θ(A')`` whose range is drawn from
  a fixed pool of ``hwidth(Σ) + |consts(Σ)|`` variables plus the constants of
  the premises, deriving ``θ(β) ∧ θ(β') → θ(H')``;
* (PROPAGATE) combines a non-full TGD ``τ = β → ∃ȳ (η ∧ A1 ∧ ... ∧ An)``
  with a full TGD ``τ' = A'1 ∧ ... ∧ A'n ∧ β' → H'`` under any such bounded
  substitution that unifies the ``Ai`` with the ``A'i`` without leaking
  existential variables into ``θ(β')`` or ``θ(H')``, again deriving
  ``θ(β) ∧ θ(β') → θ(H')``.

As Example E.3 illustrates, enumerating every bounded substitution rather
than a most general unifier makes FullDR far more expensive than the other
algorithms; the paper reports exactly that finding (FullDR timed out on 173
ontologies and is therefore not discussed in the main body).  The
enumeration here is routed through the shared constraint-propagating solver
(:mod:`repro.unification.solver`): the unification equalities of a premise
pair collapse the variable classes first, and only the satisfying bounded
substitutions are materialized — the *set* of derived TGDs is unchanged, but
the cartesian search over every body variable is gone, which is what lets
the FullDR comparison scenario finish Example E.3 within its timeout.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..indexing.unification_index import TGDUnificationIndex
from ..logic.atoms import Atom
from ..logic.rules import Rule, datalog_tgd_to_rule
from ..logic.substitution import Substitution
from ..logic.terms import Constant, Variable
from ..logic.tgd import TGD, head_normalize, program_constants
from ..unification.solver import solve_bounded, solve_bounded_pairings
from .base import InferenceRule, RewritingSettings
from .registry import AlgorithmCapabilities, register_algorithm


@register_algorithm(
    "fulldr",
    capabilities=AlgorithmCapabilities(
        clause_kind="tgd",
        supports_lookahead=True,
        blowup_class="double-exponential",
        description="Bounded-substitution enumeration deriving full TGDs (Appendix E)",
    ),
)
class FullDR(InferenceRule[TGD]):
    """Appendix E plugged into the saturation engine."""

    name = "FullDR"

    def __init__(self, settings: Optional[RewritingSettings] = None) -> None:
        super().__init__(settings)
        self._index = TGDUnificationIndex()
        self._variable_pool: Tuple[Variable, ...] = ()
        self._sigma_constants: Tuple[Constant, ...] = ()
        #: cap on the *satisfying* substitutions enumerated per premise pair
        #: (the blow-up that Example E.3 describes); raising it makes the
        #: algorithm more faithful and slower
        self.max_substitutions_per_pair = 500_000

    # ------------------------------------------------------------------
    # InferenceRule hooks
    # ------------------------------------------------------------------
    def prepare(self, sigma: Sequence[TGD]) -> None:
        super().prepare(sigma)
        pool_size = self.sigma_head_width + self.sigma_constant_count
        pool_size = max(pool_size, 1)
        self._variable_pool = tuple(
            Variable(f"w{index}") for index in range(pool_size)
        )
        self._sigma_constants = tuple(program_constants(sigma))

    def initial_clauses(self, sigma: Sequence[TGD]) -> Tuple[TGD, ...]:
        return head_normalize(sigma)

    def register(self, clause: TGD) -> None:
        self._index.add(clause)

    def unregister(self, clause: TGD) -> None:
        self._index.remove(clause)

    def extract_datalog(self, worked_off: Iterable[TGD]) -> Tuple[Rule, ...]:
        return tuple(
            datalog_tgd_to_rule(tgd) for tgd in worked_off if tgd.is_datalog_rule
        )

    def infer(self, clause: TGD, worked_off: Set[TGD]) -> Iterable[TGD]:
        results: List[TGD] = []
        if clause.is_full:
            # COMPOSE with clause as either premise
            for partner in self._partners_full(clause):
                if partner in worked_off:
                    results.extend(self._compose(clause, partner))
                    if partner != clause:
                        results.extend(self._compose(partner, clause))
            # PROPAGATE with clause as the full premise
            for partner in self._index.non_full_partners_for(clause):
                if partner in worked_off:
                    results.extend(self._propagate(partner, clause))
        else:
            for partner in self._index.full_partners_for(clause):
                if partner in worked_off:
                    results.extend(self._propagate(clause, partner))
        return results

    # ------------------------------------------------------------------
    # candidate retrieval
    # ------------------------------------------------------------------
    def _partners_full(self, clause: TGD) -> Tuple[TGD, ...]:
        seen: Set[TGD] = set()
        ordered: List[TGD] = []
        for atom in clause.head + clause.body:
            for candidate in itertools.chain(
                self._index.with_body_predicate(atom.predicate),
                self._index.with_head_predicate(atom.predicate),
            ):
                if candidate.is_full and candidate not in seen:
                    seen.add(candidate)
                    ordered.append(candidate)
        return tuple(ordered)

    # ------------------------------------------------------------------
    # (COMPOSE)
    # ------------------------------------------------------------------
    def _compose(self, left: TGD, right: TGD) -> List[TGD]:
        """COMPOSE: unify the single head atom of ``left`` with a body atom of ``right``."""
        if not (left.is_datalog_rule and right.is_full):
            return []
        right = right.rename_apart("c")
        head_atom = left.head[0]
        results: List[TGD] = []
        seen: Set[TGD] = set()
        variables = tuple(
            sorted(left.variables() | right.variables(), key=lambda v: v.name)
        )
        premise_constants = tuple(set(left.constants()) | set(right.constants()))
        range_terms = self._variable_pool + premise_constants
        for body_atom in right.body:
            if body_atom.predicate != head_atom.predicate:
                continue
            # the solver propagates θ(head_atom) = θ(body_atom) through its
            # variable classes and enumerates only the satisfying bounded
            # substitutions — never the cartesian product over the variables
            solutions = solve_bounded(
                variables, range_terms, equalities=((head_atom, body_atom),)
            )
            for theta in itertools.islice(
                solutions, self.max_substitutions_per_pair
            ):
                remaining = tuple(a for a in right.body if a is not body_atom)
                new_body = _dedupe(
                    theta.apply_atoms(left.body) + theta.apply_atoms(remaining)
                )
                new_head = theta.apply_atoms(right.head)
                derived = TGD(new_body, new_head)
                if derived not in seen:
                    seen.add(derived)
                    results.append(derived)
        return results

    # ------------------------------------------------------------------
    # (PROPAGATE)
    # ------------------------------------------------------------------
    def _propagate(self, non_full: TGD, full: TGD) -> List[TGD]:
        """PROPAGATE: unify head atoms of the non-full TGD with body atoms of the full one."""
        if not full.is_full:
            return []
        full = full.rename_apart("p")
        existential = non_full.existential_variables
        results: List[TGD] = []
        seen: Set[TGD] = set()
        variables = tuple(
            sorted(
                (non_full.universal_variables | full.universal_variables),
                key=lambda v: v.name,
            )
        )
        premise_constants = tuple(
            set(non_full.constants()) | set(full.constants())
        )
        existential_range = tuple(sorted(existential, key=lambda v: v.name))
        range_terms = self._variable_pool + existential_range + premise_constants
        full_body = tuple(full.body)
        # the solver enumerates every nonempty matching of body atoms to
        # same-predicate head atoms, propagating the induced equalities as
        # each pairing is chosen (the existential variables sit outside the
        # solve domain, so an equality against one pins the partner class)
        pairings = solve_bounded_pairings(
            full_body, non_full.head, variables, range_terms
        )
        for selection, theta in itertools.islice(
            pairings, self.max_substitutions_per_pair
        ):
            if self._universal_into_existential(theta, non_full, existential):
                continue
            selected = {id(body_atom) for body_atom, _ in selection}
            remaining = tuple(
                atom for atom in full_body if id(atom) not in selected
            )
            remaining_image = theta.apply_atoms(remaining)
            head_image = theta.apply_atom(full.head[0])
            if _mentions(remaining_image, existential) or _mentions(
                (head_image,), existential
            ):
                continue
            new_body = _dedupe(
                theta.apply_atoms(non_full.body) + remaining_image
            )
            derived = TGD(new_body, (head_image,))
            if derived not in seen:
                seen.add(derived)
                results.append(derived)
        return results

    @staticmethod
    def _universal_into_existential(
        theta: Substitution, non_full: TGD, existential: frozenset
    ) -> bool:
        for var in non_full.universal_variables:
            image = theta.get(var)
            if isinstance(image, Variable) and image in existential:
                return True
        return False


def _mentions(atoms: Tuple[Atom, ...], variables: frozenset) -> bool:
    return any(var in variables for atom in atoms for var in atom.variables())


def _dedupe(atoms: Tuple[Atom, ...]) -> Tuple[Atom, ...]:
    seen = {}
    for atom in atoms:
        if atom not in seen:
            seen[atom] = None
    return tuple(seen)
