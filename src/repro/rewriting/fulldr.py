"""The FullDR algorithm (Appendix E): deriving Datalog rules directly.

FullDR manipulates GTGDs but only ever *derives* full TGDs.  It has two
variants:

* (COMPOSE) combines two full TGDs ``τ = β → A`` and ``τ' = A' ∧ β' → H'``
  under any substitution ``θ`` with ``θ(A) = θ(A')`` whose range is drawn from
  a fixed pool of ``hwidth(Σ) + |consts(Σ)|`` variables plus the constants of
  the premises, deriving ``θ(β) ∧ θ(β') → θ(H')``;
* (PROPAGATE) combines a non-full TGD ``τ = β → ∃ȳ (η ∧ A1 ∧ ... ∧ An)``
  with a full TGD ``τ' = A'1 ∧ ... ∧ A'n ∧ β' → H'`` under any such bounded
  substitution that unifies the ``Ai`` with the ``A'i`` without leaking
  existential variables into ``θ(β')`` or ``θ(H')``, again deriving
  ``θ(β) ∧ θ(β') → θ(H')``.

As Example E.3 illustrates, enumerating every bounded substitution rather
than a most general unifier makes FullDR far more expensive than the other
algorithms; the implementation is faithful but only practical on small
inputs, which is exactly the finding reported in the paper (FullDR timed out
on 173 ontologies and is therefore not discussed in the main body).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..indexing.unification_index import TGDUnificationIndex
from ..logic.atoms import Atom
from ..logic.rules import Rule, datalog_tgd_to_rule
from ..logic.substitution import Substitution
from ..logic.terms import Constant, Term, Variable
from ..logic.tgd import TGD, head_normalize, program_constants
from ..unification.mgu import restricted_mgu
from .base import InferenceRule, RewritingSettings
from .lookahead import tgd_result_is_dead_end
from .registry import AlgorithmCapabilities, register_algorithm


@register_algorithm(
    "fulldr",
    capabilities=AlgorithmCapabilities(
        clause_kind="tgd",
        supports_lookahead=True,
        blowup_class="double-exponential",
        description="Bounded-substitution enumeration deriving full TGDs (Appendix E)",
    ),
)
class FullDR(InferenceRule[TGD]):
    """Appendix E plugged into the saturation engine."""

    name = "FullDR"

    def __init__(self, settings: Optional[RewritingSettings] = None) -> None:
        super().__init__(settings)
        self._index = TGDUnificationIndex()
        self._variable_pool: Tuple[Variable, ...] = ()
        self._sigma_constants: Tuple[Constant, ...] = ()
        #: cap on enumerated substitutions per premise pair (the blow-up that
        #: Example E.3 describes); raising it makes the algorithm more
        #: faithful and slower
        self.max_substitutions_per_pair = 500_000

    # ------------------------------------------------------------------
    # InferenceRule hooks
    # ------------------------------------------------------------------
    def prepare(self, sigma: Sequence[TGD]) -> None:
        super().prepare(sigma)
        pool_size = self.sigma_head_width + self.sigma_constant_count
        pool_size = max(pool_size, 1)
        self._variable_pool = tuple(
            Variable(f"w{index}") for index in range(pool_size)
        )
        self._sigma_constants = tuple(program_constants(sigma))

    def initial_clauses(self, sigma: Sequence[TGD]) -> Tuple[TGD, ...]:
        return head_normalize(sigma)

    def register(self, clause: TGD) -> None:
        self._index.add(clause)

    def unregister(self, clause: TGD) -> None:
        self._index.remove(clause)

    def extract_datalog(self, worked_off: Iterable[TGD]) -> Tuple[Rule, ...]:
        return tuple(
            datalog_tgd_to_rule(tgd) for tgd in worked_off if tgd.is_datalog_rule
        )

    def infer(self, clause: TGD, worked_off: Set[TGD]) -> Iterable[TGD]:
        results: List[TGD] = []
        if clause.is_full:
            # COMPOSE with clause as either premise
            for partner in self._partners_full(clause):
                if partner in worked_off:
                    results.extend(self._compose(clause, partner))
                    if partner != clause:
                        results.extend(self._compose(partner, clause))
            # PROPAGATE with clause as the full premise
            for partner in self._index.non_full_partners_for(clause):
                if partner in worked_off:
                    results.extend(self._propagate(partner, clause))
        else:
            for partner in self._index.full_partners_for(clause):
                if partner in worked_off:
                    results.extend(self._propagate(clause, partner))
        return results

    # ------------------------------------------------------------------
    # candidate retrieval
    # ------------------------------------------------------------------
    def _partners_full(self, clause: TGD) -> Tuple[TGD, ...]:
        seen: Set[TGD] = set()
        ordered: List[TGD] = []
        for atom in clause.head + clause.body:
            for candidate in itertools.chain(
                self._index.with_body_predicate(atom.predicate),
                self._index.with_head_predicate(atom.predicate),
            ):
                if candidate.is_full and candidate not in seen:
                    seen.add(candidate)
                    ordered.append(candidate)
        return tuple(ordered)

    # ------------------------------------------------------------------
    # substitution enumeration
    # ------------------------------------------------------------------
    def _bounded_substitutions(
        self,
        variables: Tuple[Variable, ...],
        extra_range: Tuple[Term, ...],
        premise_constants: Tuple[Constant, ...],
    ) -> Iterable[Substitution]:
        """Every substitution from ``variables`` into the bounded range."""
        range_terms: Tuple[Term, ...] = (
            self._variable_pool + extra_range + premise_constants
        )
        if not variables:
            yield Substitution()
            return
        total = len(range_terms) ** len(variables)
        if total > self.max_substitutions_per_pair:
            # Enumerate a deterministic prefix of the substitution space; the
            # cap is generous enough for the inputs on which FullDR is
            # actually run (it times out long before this matters).
            total = self.max_substitutions_per_pair
        count = 0
        for images in itertools.product(range_terms, repeat=len(variables)):
            yield Substitution(dict(zip(variables, images)))
            count += 1
            if count >= total:
                return

    # ------------------------------------------------------------------
    # (COMPOSE)
    # ------------------------------------------------------------------
    def _compose(self, left: TGD, right: TGD) -> List[TGD]:
        """COMPOSE: unify the single head atom of ``left`` with a body atom of ``right``."""
        if not (left.is_datalog_rule and right.is_full):
            return []
        right = right.rename_apart("c")
        head_atom = left.head[0]
        results: List[TGD] = []
        seen: Set[TGD] = set()
        variables = tuple(
            sorted(left.variables() | right.variables(), key=lambda v: v.name)
        )
        premise_constants = tuple(set(left.constants()) | set(right.constants()))
        for body_atom in right.body:
            if body_atom.predicate != head_atom.predicate:
                continue
            for theta in self._bounded_substitutions(
                variables, (), premise_constants
            ):
                if theta.apply_atom(head_atom) != theta.apply_atom(body_atom):
                    continue
                remaining = tuple(a for a in right.body if a is not body_atom)
                new_body = _dedupe(
                    theta.apply_atoms(left.body) + theta.apply_atoms(remaining)
                )
                new_head = theta.apply_atoms(right.head)
                derived = TGD(new_body, new_head)
                if derived not in seen:
                    seen.add(derived)
                    results.append(derived)
        return results

    # ------------------------------------------------------------------
    # (PROPAGATE)
    # ------------------------------------------------------------------
    def _propagate(self, non_full: TGD, full: TGD) -> List[TGD]:
        """PROPAGATE: unify head atoms of the non-full TGD with body atoms of the full one."""
        if not full.is_full:
            return []
        full = full.rename_apart("p")
        existential = non_full.existential_variables
        results: List[TGD] = []
        seen: Set[TGD] = set()
        body_by_predicate: Dict = {}
        for atom in full.body:
            body_by_predicate.setdefault(atom.predicate, []).append(atom)
        variables = tuple(
            sorted(
                (non_full.universal_variables | full.universal_variables),
                key=lambda v: v.name,
            )
        )
        premise_constants = tuple(
            set(non_full.constants()) | set(full.constants())
        )
        existential_range = tuple(sorted(existential, key=lambda v: v.name))
        # choose, for every subset of the full TGD's body atoms, a counterpart
        # head atom of the non-full TGD; the bounded substitution must unify
        # every chosen pair
        head_atoms = non_full.head
        full_body = tuple(full.body)
        for selection in _nonempty_assignments(full_body, head_atoms):
            for theta in self._bounded_substitutions(
                variables, existential_range, premise_constants
            ):
                if any(
                    theta.apply_atom(body_atom) != theta.apply_atom(head_atom)
                    for body_atom, head_atom in selection
                ):
                    continue
                if self._universal_into_existential(theta, non_full, existential):
                    continue
                selected = {id(body_atom) for body_atom, _ in selection}
                remaining = tuple(
                    atom for atom in full_body if id(atom) not in selected
                )
                remaining_image = theta.apply_atoms(remaining)
                head_image = theta.apply_atom(full.head[0])
                if _mentions(remaining_image, existential) or _mentions(
                    (head_image,), existential
                ):
                    continue
                new_body = _dedupe(
                    theta.apply_atoms(non_full.body) + remaining_image
                )
                derived = TGD(new_body, (head_image,))
                if derived not in seen:
                    seen.add(derived)
                    results.append(derived)
        return results

    @staticmethod
    def _universal_into_existential(
        theta: Substitution, non_full: TGD, existential: frozenset
    ) -> bool:
        for var in non_full.universal_variables:
            image = theta.get(var)
            if isinstance(image, Variable) and image in existential:
                return True
        return False


def _mentions(atoms: Tuple[Atom, ...], variables: frozenset) -> bool:
    return any(var in variables for atom in atoms for var in atom.variables())


def _nonempty_assignments(
    body_atoms: Tuple[Atom, ...], head_atoms: Tuple[Atom, ...]
) -> Iterable[Tuple[Tuple[Atom, Atom], ...]]:
    """Every nonempty matching of some body atoms to same-predicate head atoms."""
    per_atom_options: List[List[Optional[Atom]]] = []
    for body_atom in body_atoms:
        options: List[Optional[Atom]] = [None]
        options.extend(
            head_atom
            for head_atom in head_atoms
            if head_atom.predicate == body_atom.predicate
        )
        per_atom_options.append(options)
    for combination in itertools.product(*per_atom_options):
        selection = tuple(
            (body_atom, head_atom)
            for body_atom, head_atom in zip(body_atoms, combination)
            if head_atom is not None
        )
        if selection:
            yield selection


def _dedupe(atoms: Tuple[Atom, ...]) -> Tuple[Atom, ...]:
    seen = {}
    for atom in atoms:
        if atom not in seen:
            seen[atom] = None
    return tuple(seen)
