"""The cheap lookahead optimization (Section 6).

Consider a derived TGD whose new head atom ``θ(H')`` still mentions an
existentially quantified variable, and whose relation does not occur in the
body of any input GTGD.  No GTGD of Σ can ever be applied to a fact obtained
by instantiating that atom inside a chase child, so keeping the derivation is
pointless — the derived TGD can be dropped immediately.  The analogous
condition applies to SkDR results whose head contains a Skolem term.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet

from ..logic.atoms import Atom, Predicate
from ..logic.terms import Variable


def tgd_result_is_dead_end(
    new_head_atom: Atom,
    existential_variables: AbstractSet[Variable],
    sigma_body_predicates: FrozenSet[Predicate],
) -> bool:
    """Lookahead test for TGD-based algorithms (ExbDR / FullDR).

    The derived TGD can be dropped if the freshly added head atom still
    mentions an existential variable and its relation never occurs in the body
    of an input GTGD.
    """
    if new_head_atom.predicate in sigma_body_predicates:
        return False
    return any(var in existential_variables for var in new_head_atom.variables())


def rule_result_is_dead_end(
    head_atom: Atom, sigma_body_predicates: FrozenSet[Predicate]
) -> bool:
    """Lookahead test for rule-based algorithms (SkDR).

    The derived rule can be dropped if its head is not function-free (it still
    talks about a child-vertex fact) and the head relation never occurs in the
    body of an input GTGD.
    """
    if head_atom.is_function_free:
        return False
    return head_atom.predicate not in sigma_body_predicates
