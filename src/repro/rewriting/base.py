"""Shared infrastructure for the rewriting algorithms (Section 5).

Every algorithm (ExbDR, SkDR, HypDR, FullDR) is an *inference rule* plugged
into the same saturation engine (Algorithm 1).  An inference rule knows

* how to initialize the unprocessed set from a finite set of GTGDs — by
  head-normalizing (TGD-based algorithms) or Skolemizing (rule-based
  algorithms);
* how to combine a newly processed TGD/rule with the worked-off set to derive
  new TGDs/rules; and
* which of the worked-off TGDs/rules constitute the final Datalog rewriting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import FrozenSet, Generic, Iterable, List, Optional, Sequence, Set, Tuple, TypeVar, Union

from ..logic.atoms import Predicate
from ..logic.rules import Rule
from ..logic.tgd import TGD

Clause = Union[TGD, Rule]
ClauseT = TypeVar("ClauseT", TGD, Rule)


@dataclass(frozen=True)
class RewritingSettings:
    """Tuning knobs shared by all algorithms.

    ``use_subsumption``
        Enable redundancy elimination (forward + backward subsumption).  The
        "Impact of Subsumption" ablation of Section 7.2 turns this off.
    ``exact_subsumption``
        Use the exact NP-hard subsumption check instead of the normalized
        approximation of Section 6.
    ``use_lookahead``
        Enable the cheap lookahead optimization of Section 6.
    ``timeout_seconds``
        Wall-clock budget; ``None`` means unlimited.
    ``max_clauses``
        Safety valve on the total number of retained TGDs/rules.
    """

    use_subsumption: bool = True
    exact_subsumption: bool = False
    use_lookahead: bool = True
    timeout_seconds: Optional[float] = None
    max_clauses: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise ValueError(
                f"timeout_seconds must be non-negative, got {self.timeout_seconds!r}"
            )
        if self.max_clauses is not None and self.max_clauses <= 0:
            raise ValueError(
                f"max_clauses must be positive, got {self.max_clauses!r}"
            )


@dataclass
class SaturationStatistics:
    """Counters describing a saturation run (reported by the benchmark harness)."""

    input_size: int = 0
    derived: int = 0
    inferences: int = 0
    discarded_tautology: int = 0
    discarded_forward: int = 0
    discarded_duplicate: int = 0
    removed_backward: int = 0
    processed: int = 0
    retained: int = 0
    forward_checks: int = 0
    forward_candidates: int = 0
    backward_candidates: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False

    @property
    def subsumption_hit_rate(self) -> float:
        """Fraction of forward-subsumption queries that discarded the clause."""
        if not self.forward_checks:
            return 0.0
        return self.discarded_forward / self.forward_checks

    def as_dict(self) -> dict:
        return {
            "input_size": self.input_size,
            "derived": self.derived,
            "inferences": self.inferences,
            "discarded_tautology": self.discarded_tautology,
            "discarded_forward": self.discarded_forward,
            "discarded_duplicate": self.discarded_duplicate,
            "removed_backward": self.removed_backward,
            "processed": self.processed,
            "retained": self.retained,
            "forward_checks": self.forward_checks,
            "forward_candidates": self.forward_candidates,
            "backward_candidates": self.backward_candidates,
            "subsumption_hit_rate": round(self.subsumption_hit_rate, 4),
            "elapsed_seconds": self.elapsed_seconds,
            "timed_out": self.timed_out,
        }


class InferenceRule(abc.ABC, Generic[ClauseT]):
    """The pluggable inference rule driving a saturation (Definition 5.3)."""

    #: short name used in reports ("ExbDR", "SkDR", ...)
    name: str = "Inf"

    def __init__(self, settings: Optional[RewritingSettings] = None) -> None:
        self.settings = settings or RewritingSettings()
        #: relations occurring in the body of some input GTGD; used by the
        #: cheap lookahead optimization (Section 6)
        self.sigma_body_predicates: FrozenSet[Predicate] = frozenset()
        self.sigma_head_width: int = 0
        self.sigma_body_width: int = 0
        self.sigma_constant_count: int = 0

    # ------------------------------------------------------------------
    # hooks implemented by each algorithm
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_clauses(self, sigma: Sequence[TGD]) -> Tuple[ClauseT, ...]:
        """Transform the input GTGDs into the initial unprocessed set."""

    @abc.abstractmethod
    def register(self, clause: ClauseT) -> None:
        """Add a clause to the algorithm's unification indexes (worked-off set)."""

    @abc.abstractmethod
    def unregister(self, clause: ClauseT) -> None:
        """Remove a clause from the indexes (backward subsumption)."""

    @abc.abstractmethod
    def infer(
        self, clause: ClauseT, worked_off: Set[ClauseT]
    ) -> Iterable[ClauseT]:
        """Apply the inference rule to ``clause`` and premises from ``worked_off``.

        ``clause`` has already been registered, so self-inferences are found by
        querying the indexes.  Results need not be in head-normal form — the
        saturation engine normalizes them.
        """

    @abc.abstractmethod
    def extract_datalog(self, worked_off: Iterable[ClauseT]) -> Tuple[Rule, ...]:
        """Select the Skolem-free Datalog rules making up the final rewriting."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def prepare(self, sigma: Sequence[TGD]) -> None:
        """Record input-wide information used by optimizations."""
        body_predicates: Set[Predicate] = set()
        constants = set()
        for tgd in sigma:
            for atom in tgd.body:
                body_predicates.add(atom.predicate)
            constants.update(tgd.constants())
        self.sigma_body_predicates = frozenset(body_predicates)
        self.sigma_head_width = max((tgd.head_width for tgd in sigma), default=0)
        self.sigma_body_width = max((tgd.body_width for tgd in sigma), default=0)
        self.sigma_constant_count = len(constants)

    def normalize_results(self, clauses: Iterable[Clause]) -> Tuple[Clause, ...]:
        """Bring inference results into head-normal form (TGDs) or keep rules."""
        normalized: List[Clause] = []
        for clause in clauses:
            if isinstance(clause, TGD):
                normalized.extend(clause.head_normal_form())
            else:
                normalized.append(clause)
        return tuple(normalized)


@dataclass
class RewritingResult:
    """The output of a rewriting run."""

    algorithm: str
    datalog_rules: Tuple[Rule, ...]
    statistics: SaturationStatistics
    worked_off_size: int
    completed: bool

    @property
    def output_size(self) -> int:
        """Number of Datalog rules in the rewriting (the paper's "output size")."""
        return len(self.datalog_rules)

    def blowup(self) -> float:
        """Output size divided by input size (the paper's "size blowup")."""
        if self.statistics.input_size == 0:
            return 0.0
        return self.output_size / self.statistics.input_size

    def max_body_atoms(self) -> int:
        return max((len(rule.body) for rule in self.datalog_rules), default=0)

    def program(self):
        """The rewriting as a :class:`repro.datalog.DatalogProgram`."""
        from ..datalog.program import DatalogProgram

        return DatalogProgram(self.datalog_rules)
