"""Algorithm 1: computing ``Inf(Σ)`` with an Otter-style saturation loop.

The engine maintains a *worked-off* set ``W`` of TGDs/rules already combined
with each other and an *unprocessed* set ``U`` of TGDs/rules still to be
processed.  In every iteration the smallest unprocessed clause is moved to
``W``, the inference rule is applied to it together with premises from ``W``,
and every result is head-normalized and then checked for redundancy: results
contained in ``W ∪ U`` up to redundancy (syntactic tautologies or clauses
forward-subsumed by a retained clause) are dropped; otherwise backward
subsumption removes the retained clauses they subsume and the result joins
``U``.  When ``U`` empties, the Skolem-free Datalog rules of ``W`` are the
rewriting.

Redundancy bookkeeping is fully index-driven: retained clauses live in a
predicate-signature set-trie (:class:`SubsumptionIndex`), forward and
backward subsumption only touch the candidates it yields, and backward
subsumption deletes victims through the index instead of scanning the
retained sets.  Clauses are stored in canonical-variable form (flagged, so
renormalization in the subsumption tests is O(1)).
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Dict, Generic, Iterable, List, Optional, Sequence, Set, Tuple

from ..logic.normal_form import normalize
from ..logic.rules import Rule
from ..logic.tgd import TGD
from ..indexing.feature_index import SubsumptionIndex
from .base import Clause, ClauseT, InferenceRule, RewritingResult, RewritingSettings, SaturationStatistics
from .subsumption import is_syntactic_tautology, subsumes


class SaturationTimeout(Exception):
    """Raised internally when the time budget is exhausted."""


class Saturation(Generic[ClauseT]):
    """Runs Algorithm 1 for a concrete inference rule."""

    def __init__(
        self,
        inference: InferenceRule[ClauseT],
        settings: Optional[RewritingSettings] = None,
    ) -> None:
        self.inference = inference
        self.settings = settings or inference.settings
        self.statistics = SaturationStatistics()
        self._worked_off: Set[ClauseT] = set()
        self._unprocessed: Set[ClauseT] = set()
        self._queue: List[Tuple[int, int, ClauseT]] = []
        self._queue_counter = itertools.count()
        self._subsumption_index: SubsumptionIndex = SubsumptionIndex()
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, sigma: Sequence[TGD]) -> RewritingResult:
        """Compute the rewriting of the input GTGDs."""
        start = time.monotonic()
        if self.settings.timeout_seconds is not None:
            self._deadline = start + self.settings.timeout_seconds
        self.inference.prepare(tuple(sigma))
        initial = self.inference.initial_clauses(tuple(sigma))
        self.statistics.input_size = len(initial)
        completed = True
        try:
            for clause in initial:
                self._admit(clause)
            self._main_loop()
        except SaturationTimeout:
            completed = False
            self.statistics.timed_out = True
        self.statistics.elapsed_seconds = time.monotonic() - start
        self.statistics.retained = len(self._worked_off)
        datalog = self.inference.extract_datalog(tuple(self._worked_off))
        return RewritingResult(
            algorithm=self.inference.name,
            datalog_rules=datalog,
            statistics=self.statistics,
            worked_off_size=len(self._worked_off),
            completed=completed,
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _main_loop(self) -> None:
        while self._queue:
            self._check_deadline()
            clause = self._pop_unprocessed()
            if clause is None:
                continue
            self._unprocessed.discard(clause)
            self._worked_off.add(clause)
            self.inference.register(clause)
            self.statistics.processed += 1
            derived = self.inference.infer(clause, self._worked_off)
            normalized = self.inference.normalize_results(derived)
            for result in normalized:
                self._check_deadline()
                self.statistics.derived += 1
                self._admit(result)
            if (
                self.settings.max_clauses is not None
                and len(self._worked_off) + len(self._unprocessed)
                > self.settings.max_clauses
            ):
                raise SaturationTimeout("clause limit exceeded")

    def _pop_unprocessed(self) -> Optional[ClauseT]:
        while self._queue:
            _, _, clause = heapq.heappop(self._queue)
            if clause in self._unprocessed:
                return clause
        return None

    def _check_deadline(self) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise SaturationTimeout()

    # ------------------------------------------------------------------
    # redundancy management
    # ------------------------------------------------------------------
    def _normal_form(self, clause: Clause) -> Clause:
        # normalize memoizes on the interned clause itself (_canonical_form),
        # so no per-saturation cache is needed
        return normalize(clause)

    def _admit(self, clause: ClauseT) -> None:
        """Line 7–10 of Algorithm 1: redundancy checks, backward subsumption, enqueue."""
        # Store every clause in canonical-variable form.  Besides making
        # duplicate elimination cheap, this guarantees that the variable names
        # of retained clauses never clash with the fresh suffixes used when
        # inference rules rename premises apart.
        clause = self._normal_form(clause)
        if is_syntactic_tautology(clause):
            self.statistics.discarded_tautology += 1
            return
        # An exact duplicate of a retained clause is redundant under either
        # setting; canonical forms make this a set lookup.  Duplicates are
        # counted separately from subsumption discards so the subsumption hit
        # rate measures the index, not trivial dedup.
        if clause in self._worked_off or clause in self._unprocessed:
            self.statistics.discarded_duplicate += 1
            return
        if self.settings.use_subsumption:
            if self._is_forward_subsumed(clause):
                self.statistics.discarded_forward += 1
                return
            self._backward_subsume(clause)
        # Without redundancy elimination, termination is still guaranteed by
        # the duplicate check above (Section 6: "our normalization of
        # variables still guarantees termination").
        self._unprocessed.add(clause)
        self._subsumption_index.add(clause)
        heapq.heappush(
            self._queue, (clause.size, next(self._queue_counter), clause)
        )

    def _is_forward_subsumed(self, clause: Clause) -> bool:
        self.statistics.forward_checks += 1
        exact = self.settings.exact_subsumption
        for candidate in self._subsumption_index.subsuming_candidates(clause):
            if candidate not in self._worked_off and candidate not in self._unprocessed:
                continue
            self.statistics.forward_candidates += 1
            if subsumes(candidate, clause, exact=exact):
                return True
        return False

    def _backward_subsume(self, clause: Clause) -> None:
        victims: List[Clause] = []
        exact = self.settings.exact_subsumption
        for candidate in self._subsumption_index.subsumed_candidates(clause):
            if candidate == clause:
                continue
            if candidate not in self._worked_off and candidate not in self._unprocessed:
                continue
            self.statistics.backward_candidates += 1
            if subsumes(clause, candidate, exact=exact):
                victims.append(candidate)
        for victim in victims:
            self.statistics.removed_backward += 1
            self._subsumption_index.remove(victim)
            if victim in self._worked_off:
                self._worked_off.discard(victim)
                self.inference.unregister(victim)
            self._unprocessed.discard(victim)


def saturate(
    inference: InferenceRule[ClauseT],
    sigma: Sequence[TGD],
    settings: Optional[RewritingSettings] = None,
) -> RewritingResult:
    """Convenience wrapper: run Algorithm 1 for the given inference rule."""
    return Saturation(inference, settings).run(sigma)
