"""Pluggable algorithm registry for the rewriting layer.

Algorithms register themselves with :func:`register_algorithm` at class
definition time instead of being enumerated in a hard-coded dispatch table::

    @register_algorithm(
        "hypdr",
        capabilities=AlgorithmCapabilities(
            clause_kind="rule", supports_lookahead=False, blowup_class="single-exponential"
        ),
    )
    class HypDR(InferenceRule[Rule]):
        ...

The registry stores, per algorithm name, the inference-rule class together
with an :class:`AlgorithmCapabilities` record describing

* ``clause_kind`` — whether the algorithm saturates TGDs directly (``"tgd"``,
  like ExbDR/FullDR) or Skolemized rules (``"rule"``, like SkDR/HypDR);
* ``supports_lookahead`` — whether the cheap lookahead optimization of
  Section 6 applies to the algorithm's derivations;
* ``blowup_class`` — the expected output-size blowup class from the paper's
  separation results (e.g. ``"single-exponential"``), used by front ends to
  pick a default algorithm for a workload.

New rewriters plug in by decorating their class; dispatch code
(:func:`repro.rewriting.rewriter.make_inference`, the CLI ``--algorithm``
choices, the benchmark harness) picks them up without modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple, Type, TypeVar

#: valid values for :attr:`AlgorithmCapabilities.clause_kind`
CLAUSE_KINDS = ("tgd", "rule")

InferenceClass = TypeVar("InferenceClass", bound=type)


@dataclass(frozen=True)
class AlgorithmCapabilities:
    """Capability metadata reported for one registered algorithm."""

    #: ``"tgd"`` for algorithms saturating GTGDs directly, ``"rule"`` for
    #: algorithms saturating Skolemized rules
    clause_kind: str
    #: whether the cheap lookahead optimization (Section 6) prunes derivations
    supports_lookahead: bool
    #: expected output-size blowup class ("polynomial", "single-exponential",
    #: "double-exponential", ...) from the paper's separation results
    blowup_class: str
    #: one-line human-readable summary
    description: str = ""

    def __post_init__(self) -> None:
        if self.clause_kind not in CLAUSE_KINDS:
            raise ValueError(
                f"clause_kind must be one of {CLAUSE_KINDS}, got {self.clause_kind!r}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "clause_kind": self.clause_kind,
            "supports_lookahead": self.supports_lookahead,
            "blowup_class": self.blowup_class,
            "description": self.description,
        }


@dataclass(frozen=True)
class RegisteredAlgorithm:
    """One registry entry: the inference-rule class plus its capabilities."""

    name: str
    cls: type
    capabilities: AlgorithmCapabilities


_REGISTRY: Dict[str, RegisteredAlgorithm] = {}


def register_algorithm(
    name: str, *, capabilities: AlgorithmCapabilities
) -> Callable[[InferenceClass], InferenceClass]:
    """Class decorator registering an inference rule under ``name``.

    The name is case-insensitive (stored lowercased).  Registering a second
    class under an existing name raises ``ValueError`` — replacing an
    algorithm is done explicitly via :func:`unregister_algorithm` first, so
    accidental collisions between plugins surface immediately.
    """
    key = name.lower()

    def decorator(cls: InferenceClass) -> InferenceClass:
        existing = _REGISTRY.get(key)
        if existing is not None and existing.cls is not cls:
            raise ValueError(
                f"algorithm name {key!r} is already registered to "
                f"{existing.cls.__name__}"
            )
        _REGISTRY[key] = RegisteredAlgorithm(
            name=key, cls=cls, capabilities=capabilities
        )
        cls.algorithm_name = key
        cls.capabilities = capabilities
        return cls

    return decorator


def unregister_algorithm(name: str) -> bool:
    """Remove a registered algorithm; return ``True`` if it was present."""
    return _REGISTRY.pop(name.lower(), None) is not None


def registered_algorithms() -> Tuple[str, ...]:
    """The registered algorithm names, sorted."""
    return tuple(sorted(_REGISTRY))


def algorithm_entry(name: str) -> RegisteredAlgorithm:
    """Look up one registry entry; raise ``ValueError`` for unknown names."""
    entry = _REGISTRY.get(name.lower())
    if entry is None:
        raise ValueError(
            f"unknown algorithm {name!r}; expected one of {registered_algorithms()}"
        )
    return entry


def algorithm_capabilities(name: str) -> AlgorithmCapabilities:
    """The capability record of one registered algorithm."""
    return algorithm_entry(name).capabilities


def capability_report() -> Dict[str, Dict[str, object]]:
    """Capabilities of every registered algorithm, keyed by name."""
    return {
        name: _REGISTRY[name].capabilities.as_dict()
        for name in registered_algorithms()
    }


class RegistryView(Mapping):
    """A live, read-only ``name -> inference class`` view of the registry.

    Exposed as ``repro.rewriting.rewriter.ALGORITHMS`` for backward
    compatibility with the pre-registry dispatch dict; algorithms registered
    later (plugins) appear automatically.
    """

    def __getitem__(self, name: str) -> type:
        entry = _REGISTRY.get(name)
        if entry is None:
            raise KeyError(name)
        return entry.cls

    def __iter__(self) -> Iterator[str]:
        return iter(registered_algorithms())

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __repr__(self) -> str:
        return f"RegistryView({registered_algorithms()})"
