"""The Hyperresolution Rewriting inference rule HypDR (Definition 5.16).

HypDR uses hyperresolution as a "macro" that combines several SkDR steps into
one: all body atoms of a Skolem-free rule that would be matched to facts of a
chase child vertex are resolved simultaneously against rules with Skolem-free
bodies and Skolem-containing heads.  Consequently every derived rule has a
Skolem-free body, so no intermediate rules with functional body atoms (such
as rule (26) or (28) of the running example) and no "dead-end" rules (such as
rule (29)) are ever produced.

The premises are

``τ1 = β1 → H1   ...   τn = βn → Hn``   (each βi Skolem-free, Hi with a Skolem)
``τ' = A'1 ∧ ... ∧ A'n ∧ β' → H'``       (Skolem-free)

and, for ``θ`` an MGU of ``H1..Hn`` and ``A'1..A'n`` with ``θ(β')``
Skolem-free, the conclusion is ``θ(β1) ∧ ... ∧ θ(βn) ∧ θ(β') → θ(H')``.

The implementation enumerates inferences by seeding the resolution with one
body atom of ``τ'`` and then *forcing* the resolution of every remaining body
atom that mentions a Skolem term under the current unifier; a conclusion is
emitted whenever the remaining body atoms are Skolem-free.  Iterating this
over all seeds yields every conclusion needed for completeness (Theorem 5.19):
a conclusion that our search realizes in several emissions is reconstructed
by subsequent saturation steps on the emitted (Skolem-free) rules.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..indexing.path_index import RulePathIndex
from ..logic.atoms import Atom
from ..logic.rules import Rule
from ..logic.skolem import SkolemFactory, skolemize
from ..logic.substitution import Substitution
from ..logic.tgd import TGD, head_normalize
from ..unification.mgu import mgu, mgu_atoms
from .base import InferenceRule, RewritingSettings
from .registry import AlgorithmCapabilities, register_algorithm


@register_algorithm(
    "hypdr",
    capabilities=AlgorithmCapabilities(
        clause_kind="rule",
        supports_lookahead=True,
        blowup_class="single-exponential",
        description="Hyperresolution on Skolemized rules (Definition 5.16)",
    ),
)
class HypDR(InferenceRule[Rule]):
    """Definition 5.16 plugged into the saturation engine."""

    name = "HypDR"

    def __init__(self, settings: Optional[RewritingSettings] = None) -> None:
        super().__init__(settings)
        self._index = RulePathIndex()
        #: bound on the backtracking fan-out per seed, to keep adversarial
        #: inputs from exploding a single inference step
        self.max_branches = 200_000
        # target atom -> generator rules with a unifiable head, reused across
        # seeds, recursion depths, and saturation rounds (atoms are interned,
        # so recurring targets hit).  Invalidated only when a *generator*
        # joins or leaves the index; the per-call worked_off filter is
        # applied on top of the cached domain.
        self._generator_cache: Dict[Atom, Tuple[Rule, ...]] = {}

    # ------------------------------------------------------------------
    # InferenceRule hooks
    # ------------------------------------------------------------------
    def initial_clauses(self, sigma: Sequence[TGD]) -> Tuple[Rule, ...]:
        return skolemize(head_normalize(sigma), SkolemFactory())

    def register(self, clause: Rule) -> None:
        self._index.add(clause)
        if self._is_generator(clause):
            self._generator_cache.clear()

    def unregister(self, clause: Rule) -> None:
        self._index.remove(clause)
        if self._is_generator(clause):
            self._generator_cache.clear()

    def extract_datalog(self, worked_off: Iterable[Rule]) -> Tuple[Rule, ...]:
        return tuple(rule for rule in worked_off if rule.is_skolem_free)

    def infer(self, clause: Rule, worked_off: Set[Rule]) -> Iterable[Rule]:
        results: List[Rule] = []
        # clause as one of the generator premises τi
        if self._is_generator(clause):
            for partner in self._index.rules_with_unifiable_body_atom(clause.head):
                if partner in worked_off and partner.is_skolem_free:
                    results.extend(
                        self._hyperresolve(partner, worked_off, seed_premise=clause)
                    )
        # clause as the Skolem-free rule τ'
        if clause.is_skolem_free:
            results.extend(self._hyperresolve(clause, worked_off, seed_premise=None))
        return results

    # ------------------------------------------------------------------
    # inference details
    # ------------------------------------------------------------------
    @staticmethod
    def _is_generator(rule: Rule) -> bool:
        return rule.body_is_skolem_free and not rule.head.is_function_free

    def _generators_for(self, atom: Atom, worked_off: Set[Rule]) -> Tuple[Rule, ...]:
        candidates = self._generator_cache.get(atom)
        if candidates is None:
            candidates = tuple(
                rule
                for rule in self._index.rules_with_unifiable_head(atom)
                if self._is_generator(rule)
            )
            self._generator_cache[atom] = candidates
        return tuple(rule for rule in candidates if rule in worked_off)

    def _hyperresolve(
        self,
        consumer: Rule,
        worked_off: Set[Rule],
        seed_premise: Optional[Rule],
    ) -> List[Rule]:
        """Enumerate HypDR conclusions with ``consumer`` as the Skolem-free rule τ'."""
        consumer = consumer.rename_apart("r")
        results: List[Rule] = []
        seen: Set[Rule] = set()
        branch_budget = [self.max_branches]
        for seed_index, seed_atom in enumerate(consumer.body):
            seed_candidates = (
                (seed_premise,)
                if seed_premise is not None
                else self._generators_for(seed_atom, worked_off)
            )
            for candidate in seed_candidates:
                premise = candidate.rename_apart(f"p{seed_index}")
                theta = mgu(premise.head, seed_atom)
                if theta is None:
                    continue
                resolved_bodies = tuple(theta.apply_atoms(premise.body))
                remaining = tuple(
                    theta.apply_atom(atom)
                    for position, atom in enumerate(consumer.body)
                    if position != seed_index
                )
                head = theta.apply_atom(consumer.head)
                self._extend(
                    resolved_bodies,
                    remaining,
                    head,
                    worked_off,
                    results,
                    seen,
                    branch_budget,
                    depth=1,
                )
        return results

    def _extend(
        self,
        resolved_bodies: Tuple[Atom, ...],
        remaining: Tuple[Atom, ...],
        head: Atom,
        worked_off: Set[Rule],
        results: List[Rule],
        seen: Set[Rule],
        branch_budget: List[int],
        depth: int,
    ) -> None:
        """Force-resolve remaining body atoms that mention Skolem terms."""
        if branch_budget[0] <= 0:
            return
        skolem_positions = [
            index
            for index, atom in enumerate(remaining)
            if not atom.is_function_free
        ]
        if not skolem_positions:
            if head.is_function_free or self._head_may_matter(head):
                new_body = _dedupe(resolved_bodies + remaining)
                try:
                    derived = Rule(new_body, head)
                except ValueError:
                    return
                if derived not in seen:
                    seen.add(derived)
                    results.append(derived)
            return
        # resolve the first Skolem-mentioning remaining atom against every
        # eligible generator premise
        position = skolem_positions[0]
        target = remaining[position]
        rest = tuple(atom for index, atom in enumerate(remaining) if index != position)
        for candidate in self._generators_for(target, worked_off):
            branch_budget[0] -= 1
            if branch_budget[0] <= 0:
                return
            premise = candidate.rename_apart(f"d{depth}")
            theta = mgu(premise.head, target)
            if theta is None:
                continue
            self._extend(
                tuple(theta.apply_atoms(resolved_bodies))
                + tuple(theta.apply_atoms(premise.body)),
                tuple(theta.apply_atoms(rest)),
                theta.apply_atom(head),
                worked_off,
                results,
                seen,
                branch_budget,
                depth + 1,
            )

    def _head_may_matter(self, head: Atom) -> bool:
        """Lookahead for heads still mentioning Skolem terms.

        HypDR conclusions always have Skolem-free bodies; a Skolem-containing
        head is only useful if some input GTGD body mentions its relation
        (mirroring the cheap lookahead of Section 6).  When the lookahead
        optimization is disabled such conclusions are kept.
        """
        if not self.settings.use_lookahead:
            return True
        return head.predicate in self.sigma_body_predicates


def _dedupe(atoms: Tuple[Atom, ...]) -> Tuple[Atom, ...]:
    seen = {}
    for atom in atoms:
        if atom not in seen:
            seen[atom] = None
    return tuple(seen)
