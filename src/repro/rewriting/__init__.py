"""Datalog rewriting of guarded TGDs: ExbDR, SkDR, HypDR, FullDR, and Algorithm 1."""

from .base import (
    InferenceRule,
    RewritingResult,
    RewritingSettings,
    SaturationStatistics,
)
from .exbdr import ExbDR
from .fulldr import FullDR
from .hypdr import HypDR
from .lookahead import rule_result_is_dead_end, tgd_result_is_dead_end
from .registry import (
    AlgorithmCapabilities,
    RegisteredAlgorithm,
    algorithm_capabilities,
    capability_report,
    register_algorithm,
    registered_algorithms,
    unregister_algorithm,
)
from .rewriter import (
    ALGORITHMS,
    UnguardedTGDError,
    available_algorithms,
    make_inference,
    rewrite,
    rewrite_program,
    validate_guardedness,
)
from .saturation import Saturation, saturate
from .skdr import SkDR
from .subsumption import (
    approximate_rule_subsumes,
    approximate_tgd_subsumes,
    exact_rule_subsumes,
    exact_tgd_subsumes,
    is_syntactic_tautology,
    subsumes,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmCapabilities",
    "ExbDR",
    "FullDR",
    "HypDR",
    "InferenceRule",
    "RegisteredAlgorithm",
    "RewritingResult",
    "RewritingSettings",
    "SaturationStatistics",
    "Saturation",
    "SkDR",
    "UnguardedTGDError",
    "algorithm_capabilities",
    "approximate_rule_subsumes",
    "approximate_tgd_subsumes",
    "available_algorithms",
    "capability_report",
    "exact_rule_subsumes",
    "exact_tgd_subsumes",
    "is_syntactic_tautology",
    "make_inference",
    "register_algorithm",
    "registered_algorithms",
    "rewrite",
    "rewrite_program",
    "rule_result_is_dead_end",
    "saturate",
    "subsumes",
    "tgd_result_is_dead_end",
    "unregister_algorithm",
    "validate_guardedness",
]
