"""Repeatable perf capture for the saturation → rewriting → materialization path.

``capture_perf`` re-runs the workloads of the three benchmark scripts —
``bench_separation_families.py`` (saturation throughput on the exponential
separation families), ``bench_fulldr.py`` (FullDR versus the practical
algorithms), and ``bench_table2_end_to_end.py`` (rewrite once, materialize
the fixpoint) — under one roof and emits ``BENCH_rewriting.json``: wall
times, clauses generated/retained, the subsumption hit rate, and the
interning hit rate.  The ``skolem_chase`` and ``guarded_oracle`` scenarios
additionally track the chase oracles, each measuring its delta-driven engine
against the retained pre-change loop in the same process (recorded as
``speedup_vs_pre_change`` with a ``chase_plan`` stats block), and the
``churn`` scenario drives interleaved add/retract streams through a live
session, checking every op against full re-materialization and recording
the DRed counters in a ``dred`` stats block.  The store-touching scenarios
(``end_to_end``, ``incremental_updates``, ``churn``, ``demand_queries``)
also record a ``fact_store`` block — the ID-encoded store's term-table
size, row count, index footprint, and encode/decode counters — and
``demand_queries`` adds a ``kb_segments`` block measuring the lazy
``repro-kb/v2`` segment tier (file size, decode wall time, predicates
loaded out of total after one demand answer).  Every future
PR reruns the capture and compares against the recorded trajectory; see the
"Recording performance" section of ROADMAP.md.

The module also embeds the *pre-change* wall time of the separation-families
workload, measured on the unoptimized seed saturation loop, so the JSON
itself documents the speedup of the interning + indexed-lookup overhaul.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..logic.interning import clear_intern_caches, clear_intern_tables, intern_stats
from ..rewriting.base import RewritingSettings, SaturationStatistics
from ..unification.solver import match_solver_stats, reset_match_solver_stats
from ..rewriting.exbdr import ExbDR
from ..rewriting.hypdr import HypDR
from ..rewriting.rewriter import rewrite
from ..rewriting.saturation import Saturation
from ..rewriting.skdr import SkDR
from ..workloads.families import (
    exbdr_blowup_family,
    fulldr_example_e3,
    hypdr_advantage_family,
    running_example,
    skdr_blowup_family,
)

#: Wall time of the separation-families workload (NS below, best of three
#: in-process repeats) measured on the seed's unoptimized saturation loop,
#: on the machine that produced the first BENCH_rewriting.json.  Kept here so
#: the emitted JSON can report the speedup of the hot-path overhaul.
PRE_CHANGE_SEPARATION_WALL_SECONDS = 0.1878

#: Materialization leg of the end-to-end workload (default scale, best of
#: three in-process captures) measured on the tuple-at-a-time engine that
#: preceded the compiled hash-join plans, on the machine that produced the
#: BENCH_rewriting.json recording the change.  Kept here so the emitted JSON
#: documents the set-at-a-time engine's speedup independently of the
#: (noisy, saturation-dominated) scenario wall time.
PRE_CHANGE_END_TO_END_MATERIALIZE_SECONDS = 0.1039

SEPARATION_NS: Tuple[int, ...] = (2, 3, 4, 5)
RAW_SETTINGS = RewritingSettings(use_subsumption=False, use_lookahead=False)

#: the recorded scenarios, in capture order; ``perf --scenario NAME`` (and the
#: ``scenarios=`` parameter of :func:`capture_perf`) accepts these names
SCENARIO_NAMES: Tuple[str, ...] = (
    "separation_families",
    "fulldr_comparison",
    "end_to_end",
    "incremental_updates",
    "churn",
    "skolem_chase",
    "guarded_oracle",
    "serving_throughput",
    "demand_queries",
)

#: every scenario payload carries a ``status`` flag so a baseline comparison
#: can tell a genuinely slower run from one that newly finishes (or newly
#: times out) and therefore measures different work
STATUS_COMPLETED = "completed"
STATUS_TIMED_OUT = "timed_out"


def _accumulate(total: Dict[str, float], stats: SaturationStatistics) -> None:
    total["generated"] += stats.derived
    total["retained"] += stats.retained
    total["forward_checks"] += stats.forward_checks
    total["discarded_forward"] += stats.discarded_forward
    total["discarded_duplicate"] += stats.discarded_duplicate
    total["removed_backward"] += stats.removed_backward


def _new_totals() -> Dict[str, float]:
    return {
        "generated": 0,
        "retained": 0,
        "forward_checks": 0,
        "discarded_forward": 0,
        "discarded_duplicate": 0,
        "removed_backward": 0,
    }


def _finish_totals(total: Dict[str, float]) -> Dict[str, object]:
    checks = total["forward_checks"]
    result: Dict[str, object] = {key: int(value) for key, value in total.items()}
    result["subsumption_hit_rate"] = (
        round(total["discarded_forward"] / checks, 4) if checks else 0.0
    )
    return result


def capture_separation_families(
    ns: Sequence[int] = SEPARATION_NS, repeats: int = 5
) -> Dict[str, object]:
    """The ``bench_separation_families.py`` workload: raw saturation throughput."""
    combos = (
        ("P5.14", exbdr_blowup_family, (ExbDR, SkDR)),
        ("P5.15", skdr_blowup_family, (ExbDR, SkDR)),
        ("P5.20", hypdr_advantage_family, (SkDR, HypDR)),
    )
    best_wall: Optional[float] = None
    per_n: Dict[str, Dict[str, object]] = {}
    totals = _new_totals()
    for _attempt in range(max(1, repeats)):
        # every repeat starts from empty intern tables, so best-of-N measures
        # the cold saturation loop — the same conditions under which the
        # pre-change wall time was recorded — not warm-cache reruns
        clear_intern_tables()
        wall_start = time.perf_counter()
        attempt_per_n: Dict[str, Dict[str, object]] = {}
        attempt_totals = _new_totals()
        for n in ns:
            n_start = time.perf_counter()
            retained: Dict[str, int] = {}
            for label, family, algorithms in combos:
                tgds = family(n)
                for inference_cls in algorithms:
                    saturation = Saturation(inference_cls(RAW_SETTINGS))
                    result = saturation.run(tgds)
                    retained[f"{label}-{inference_cls.name}"] = result.worked_off_size
                    _accumulate(attempt_totals, result.statistics)
            attempt_per_n[str(n)] = {
                "wall_seconds": round(time.perf_counter() - n_start, 6),
                "clauses_retained": retained,
            }
        wall = time.perf_counter() - wall_start
        if best_wall is None or wall < best_wall:
            best_wall = wall
            per_n = attempt_per_n
            totals = attempt_totals
    # the embedded pre-change wall time was measured at SEPARATION_NS scale;
    # comparing a shrunken (smoke) run against it would be meaningless
    comparable = tuple(ns) == SEPARATION_NS and best_wall
    payload: Dict[str, object] = {
        "wall_seconds": round(best_wall or 0.0, 6),
        # the raw saturation loop runs without a time budget, so this
        # scenario always completes
        "status": STATUS_COMPLETED,
        "repeats": max(1, repeats),
        "ns": list(ns),
        "per_n": per_n,
        "clauses": _finish_totals(totals),
    }
    if comparable:
        payload["pre_change_wall_seconds"] = PRE_CHANGE_SEPARATION_WALL_SECONDS
        payload["speedup_vs_pre_change"] = round(
            PRE_CHANGE_SEPARATION_WALL_SECONDS / best_wall, 2
        )
        payload["pre_change_note"] = (
            "pre-change wall time was measured on the machine that produced "
            "the committed BENCH_rewriting.json; on other hardware compare "
            "captures with --baseline instead"
        )
    return payload


def capture_fulldr_comparison(timeout_seconds: float = 8.0) -> Dict[str, object]:
    """The ``bench_fulldr.py`` workload: FullDR versus the practical algorithms.

    Also records the constraint-propagating match solver's counters for the
    scenario (see :mod:`repro.unification.solver` for how to read the
    ``match_solver`` block) — FullDR's bounded-substitution enumeration is
    the solver's heaviest client.
    """
    inputs = {
        "example-4.3": running_example()[0],
        "example-E.3": fulldr_example_e3(),
    }
    settings = RewritingSettings(timeout_seconds=timeout_seconds)
    rows: Dict[str, Dict[str, object]] = {}
    totals = _new_totals()
    all_completed = True
    reset_match_solver_stats()
    wall_start = time.perf_counter()
    for input_id, tgds in inputs.items():
        per_algorithm: Dict[str, object] = {}
        for algorithm in ("fulldr", "exbdr", "skdr", "hypdr"):
            start = time.perf_counter()
            result = rewrite(tgds, algorithm=algorithm, settings=settings)
            elapsed = time.perf_counter() - start
            _accumulate(totals, result.statistics)
            all_completed = all_completed and result.completed
            per_algorithm[algorithm] = {
                "wall_seconds": round(elapsed, 6),
                "derived": result.statistics.derived,
                "retained": result.worked_off_size,
                "output_size": result.output_size,
                "completed": result.completed,
            }
        rows[input_id] = per_algorithm
    return {
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        "status": STATUS_COMPLETED if all_completed else STATUS_TIMED_OUT,
        "timeout_seconds": timeout_seconds,
        "inputs": rows,
        "clauses": _finish_totals(totals),
        "match_solver": match_solver_stats(),
    }


#: plan-shape lists in the bench JSON are capped at this many entries so the
#: committed capture stays reviewable; the count of elided shapes is recorded
MAX_PLAN_SHAPES = 24


def _finish_join_plan(
    total: Dict[str, int],
    shapes: Sequence[str],
    plans_compiled: int,
) -> Dict[str, object]:
    """Assemble the ``join_plan`` stats block (see repro.datalog.plan docs)."""
    from ..datalog.plan import JoinPlanStats

    block: Dict[str, object] = JoinPlanStats.with_hit_rate(dict(total))
    block["plans_compiled"] = plans_compiled
    shapes = list(shapes)
    block["plan_shapes"] = shapes[:MAX_PLAN_SHAPES]
    if len(shapes) > MAX_PLAN_SHAPES:
        block["plan_shapes_elided"] = len(shapes) - MAX_PLAN_SHAPES
    return block


def _merge_fact_store_stats(
    total: Dict[str, int], stats: Mapping[str, int]
) -> None:
    """Accumulate one ``FactStore.stats()`` block into a scenario total.

    Stores are per-materialization, so the scenario-level ``fact_store``
    block sums the counters across every measured store and records how many
    contributed (``stores``) — per-store averages fall out by division.
    """
    total["stores"] = total.get("stores", 0) + 1
    for key, value in stats.items():
        total[key] = total.get(key, 0) + int(value)


def capture_end_to_end(
    suite_size: int = 6,
    max_axioms: int = 60,
    top_k: int = 3,
    fact_count: int = 600,
    timeout_seconds: float = 8.0,
) -> Dict[str, object]:
    """The ``bench_table2_end_to_end.py`` workload: rewrite once, materialize."""
    from ..datalog.engine import compiled_engine
    from ..datalog.plan import JoinPlanStats
    from ..workloads.instances import generate_instance
    from ..workloads.ontology_suite import generate_suite

    settings = RewritingSettings(timeout_seconds=timeout_seconds)
    wall_start = time.perf_counter()
    suite = generate_suite(
        count=suite_size, seed=2022, min_axioms=12, max_axioms=max_axioms
    )
    totals = _new_totals()
    completed = []
    all_completed = True
    rewrite_wall = 0.0
    for item in suite:
        start = time.perf_counter()
        result = rewrite(item.tgds, algorithm="exbdr", settings=settings)
        rewrite_wall += time.perf_counter() - start
        _accumulate(totals, result.statistics)
        all_completed = all_completed and result.completed
        if result.completed:
            completed.append((item, result))
    completed.sort(key=lambda pair: pair[1].output_size, reverse=True)
    rows = []
    materialize_wall = 0.0
    join_totals: Dict[str, int] = {}
    store_totals: Dict[str, int] = {}
    plan_shapes: List[str] = []
    plans_compiled = 0
    for item, rewriting in completed[:top_k]:
        instance = generate_instance(
            item.tgds,
            fact_count=fact_count,
            constant_count=max(50, fact_count // 10),
            seed=int(item.identifier),
        )
        engine = compiled_engine(rewriting.program())
        start = time.perf_counter()
        materialized = engine.materialize(instance)
        elapsed = time.perf_counter() - start
        materialize_wall += elapsed
        JoinPlanStats.merge_snapshot(join_totals, materialized.join_stats)
        _merge_fact_store_stats(store_totals, materialized.store.stats())
        plans_compiled += engine.compiled_plan_count()
        for shape in engine.plan_shapes():
            if shape not in plan_shapes:
                plan_shapes.append(shape)
        rows.append(
            {
                "input_id": item.identifier,
                "rule_count": rewriting.output_size,
                "input_facts": len(instance),
                "output_facts": len(materialized),
                "rounds": materialized.rounds,
                "wall_seconds": round(elapsed, 6),
            }
        )
    payload = {
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        "status": STATUS_COMPLETED if all_completed else STATUS_TIMED_OUT,
        "rewrite_wall_seconds": round(rewrite_wall, 6),
        "materialize_wall_seconds": round(materialize_wall, 6),
        "suite_size": suite_size,
        "top_k": top_k,
        "fact_count": fact_count,
        "rows": rows,
        "clauses": _finish_totals(totals),
        "join_plan": _finish_join_plan(join_totals, plan_shapes, plans_compiled),
        "fact_store": store_totals,
    }
    # the embedded pre-change time was measured at default scale; a shrunken
    # (smoke) run materializes a different workload entirely
    defaults = (suite_size, top_k, fact_count) == (6, 3, 600)
    if defaults and materialize_wall:
        payload["pre_change_materialize_wall_seconds"] = (
            PRE_CHANGE_END_TO_END_MATERIALIZE_SECONDS
        )
        payload["materialize_speedup_vs_pre_change"] = round(
            PRE_CHANGE_END_TO_END_MATERIALIZE_SECONDS / materialize_wall, 2
        )
        payload["pre_change_note"] = (
            "pre-change materialization wall time was measured on the machine "
            "that produced the committed BENCH_rewriting.json; on other "
            "hardware compare captures with --baseline instead"
        )
    return payload


def capture_incremental_updates(
    suite_size: int = 6,
    max_axioms: int = 60,
    top_k: int = 3,
    fact_count: int = 2000,
    delta_fraction: float = 0.01,
    repeats: int = 3,
    timeout_seconds: float = 8.0,
) -> Dict[str, object]:
    """Delta-update throughput of :class:`ReasoningSession` vs full rebuilds.

    For each instance, a small delta (``delta_fraction`` of the facts) is
    propagated through a live session (:meth:`ReasoningSession.add_facts`)
    and compared against re-materializing base+delta from scratch — the cost
    the one-shot API pays per update.  Consistency of the two fixpoints is
    verified once per instance before timing is trusted.
    """
    from ..datalog import DatalogProgram, ReasoningSession, materialize
    from ..datalog.engine import compiled_engine
    from ..datalog.plan import JoinPlanStats
    from ..workloads.instances import generate_instance
    from ..workloads.ontology_suite import generate_suite

    settings = RewritingSettings(timeout_seconds=timeout_seconds)
    wall_start = time.perf_counter()
    suite = generate_suite(
        count=suite_size, seed=2022, min_axioms=12, max_axioms=max_axioms
    )
    completed = []
    all_completed = True
    for item in suite:
        result = rewrite(item.tgds, algorithm="exbdr", settings=settings)
        all_completed = all_completed and result.completed
        if result.completed:
            completed.append((item, result))
    completed.sort(key=lambda pair: pair[1].output_size, reverse=True)
    rows = []
    full_total = 0.0
    delta_total = 0.0
    join_totals: Dict[str, int] = {}
    store_totals: Dict[str, int] = {}
    plan_shapes: List[str] = []
    plans_compiled = 0
    for item, rewriting in completed[:top_k]:
        program = DatalogProgram(rewriting.datalog_rules)
        instance = generate_instance(
            item.tgds,
            fact_count=fact_count,
            constant_count=max(50, fact_count // 10),
            seed=int(item.identifier),
        )
        facts = sorted(instance, key=str)
        delta_size = max(1, int(len(facts) * delta_fraction))
        base, delta = facts[:-delta_size], facts[-delta_size:]
        # the cost an update pays today: re-materialize everything
        full_seconds = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            full = materialize(program, facts)
            elapsed = time.perf_counter() - start
            if full_seconds is None or elapsed < full_seconds:
                full_seconds = elapsed
        # the session cost: propagate only the delta's consequences
        delta_seconds = None
        session_facts = None
        for _ in range(max(1, repeats)):
            session = ReasoningSession(program, base)  # setup not timed
            start = time.perf_counter()
            update = session.add_facts(delta)
            elapsed = time.perf_counter() - start
            if delta_seconds is None or elapsed < delta_seconds:
                delta_seconds = elapsed
            session_facts = session.facts()
        # delta-side join work of one propagation (the last repeat); the
        # session is warm here, so reading its store is free
        JoinPlanStats.merge_snapshot(join_totals, update.join_stats)
        _merge_fact_store_stats(store_totals, session.store.stats())
        engine = compiled_engine(program)
        plans_compiled += engine.compiled_plan_count()
        for shape in engine.plan_shapes():
            if shape not in plan_shapes:
                plan_shapes.append(shape)
        consistent = session_facts == full.facts()
        full_total += full_seconds
        delta_total += delta_seconds
        rows.append(
            {
                "input_id": item.identifier,
                "rule_count": rewriting.output_size,
                "base_facts": len(base),
                "delta_facts": delta_size,
                "output_facts": len(full),
                "full_seconds": round(full_seconds, 6),
                "delta_seconds": round(delta_seconds, 6),
                "speedup": round(full_seconds / delta_seconds, 2)
                if delta_seconds
                else None,
                "consistent": consistent,
            }
        )
    return {
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        "status": STATUS_COMPLETED if all_completed else STATUS_TIMED_OUT,
        "fact_count": fact_count,
        "delta_fraction": delta_fraction,
        "repeats": max(1, repeats),
        "rows": rows,
        "join_plan": _finish_join_plan(join_totals, plan_shapes, plans_compiled),
        "fact_store": store_totals,
        "full_rematerialize_seconds": round(full_total, 6),
        "delta_update_seconds": round(delta_total, 6),
        "speedup_delta_vs_full": round(full_total / delta_total, 2)
        if delta_total
        else None,
        # deliberately False when nothing completed: an empty measurement
        # must not read as "verified consistent" downstream (CI asserts this)
        "all_consistent": bool(rows) and all(row["consistent"] for row in rows),
    }


def capture_churn(
    suite_size: int = 6,
    max_axioms: int = 60,
    top_k: int = 3,
    fact_count: int = 2000,
    churn_fraction: float = 0.01,
    op_count: int = 8,
    repeats: int = 3,
    timeout_seconds: float = 8.0,
) -> Dict[str, object]:
    """Interleaved add/retract churn: DRed sessions vs full re-materialization.

    For each instance an interleaved stream of ``op_count`` updates
    (alternating ``add_facts`` / ``retract_facts`` batches of
    ``churn_fraction`` of the instance) is applied to one live
    :class:`ReasoningSession` and, op by op, compared against
    re-materializing the *surviving* base facts from scratch — the cost the
    one-shot API pays to honor the same retraction.  Every op's fixpoint is
    checked for equality with the rebuild (feeding ``all_consistent``), so
    the recorded speedup is of two provably identical maintenance paths.
    The ``dred`` block accumulates the retraction-side counters: base facts
    retracted, candidates over-deleted, survivors re-derived, net facts
    removed, and over-deletion/re-derivation rounds.
    """
    from ..datalog import DatalogProgram, ReasoningSession, materialize
    from ..workloads.instances import generate_instance
    from ..workloads.ontology_suite import generate_suite

    settings = RewritingSettings(timeout_seconds=timeout_seconds)
    wall_start = time.perf_counter()
    suite = generate_suite(
        count=suite_size, seed=2022, min_axioms=12, max_axioms=max_axioms
    )
    completed = []
    all_completed = True
    for item in suite:
        result = rewrite(item.tgds, algorithm="exbdr", settings=settings)
        all_completed = all_completed and result.completed
        if result.completed:
            completed.append((item, result))
    completed.sort(key=lambda pair: pair[1].output_size, reverse=True)
    rows = []
    incremental_total = 0.0
    full_total = 0.0
    all_consistent = True
    store_totals: Dict[str, int] = {}
    dred_totals = {
        "retracted": 0,
        "overdeleted": 0,
        "rederived": 0,
        "net_removed": 0,
        "rounds": 0,
    }
    for item, rewriting in completed[:top_k]:
        program = DatalogProgram(rewriting.datalog_rules)
        instance = generate_instance(
            item.tgds,
            fact_count=fact_count,
            constant_count=max(50, fact_count // 10),
            seed=int(item.identifier),
        )
        facts = sorted(instance, key=str)
        chunk = max(1, int(len(facts) * churn_fraction))
        add_ops = max(1, op_count // 2)
        retract_ops = max(1, op_count - add_ops)
        held_out = facts[-chunk * add_ops :]
        base = facts[: -chunk * add_ops]
        # the op stream: alternate adding held-out chunks with retracting
        # chunks of the initial base facts (the streams are disjoint)
        ops: List[Tuple[str, List]] = []
        for index in range(max(add_ops, retract_ops)):
            if index < add_ops:
                ops.append(("add", held_out[index * chunk : (index + 1) * chunk]))
            if index < retract_ops:
                ops.append(("retract", base[index * chunk : (index + 1) * chunk]))
        incremental_seconds = None
        full_seconds = None
        instance_consistent = True
        instance_dred = None
        for _ in range(max(1, repeats)):
            session = ReasoningSession(program, base)  # setup not timed
            survivors = list(base)
            survivor_set = set(base)
            repeat_incremental = 0.0
            repeat_full = 0.0
            repeat_dred = dict.fromkeys(dred_totals, 0)
            for op, batch in ops:
                start = time.perf_counter()
                if op == "add":
                    session.add_facts(batch)
                else:
                    result = session.retract_facts(batch)
                    repeat_dred["retracted"] += result.retracted_facts
                    repeat_dred["overdeleted"] += result.overdeleted
                    repeat_dred["rederived"] += result.rederived
                    repeat_dred["net_removed"] += result.net_removed
                    repeat_dred["rounds"] += result.rounds
                repeat_incremental += time.perf_counter() - start
                # the one-shot cost of the same update: rebuild from the
                # surviving base facts
                if op == "add":
                    added = [fact for fact in batch if fact not in survivor_set]
                    survivors.extend(added)
                    survivor_set.update(added)
                else:
                    removed = set(batch)
                    survivors = [f for f in survivors if f not in removed]
                    survivor_set -= removed
                start = time.perf_counter()
                rebuilt = materialize(program, survivors)
                repeat_full += time.perf_counter() - start
                if session.facts() != rebuilt.facts():  # not timed
                    instance_consistent = False
            if incremental_seconds is None or repeat_incremental < incremental_seconds:
                incremental_seconds = repeat_incremental
            if full_seconds is None or repeat_full < full_seconds:
                full_seconds = repeat_full
            instance_dred = repeat_dred  # identical across repeats
        # store shape after the full op stream (last repeat's session, warm)
        _merge_fact_store_stats(store_totals, session.store.stats())
        for key, value in instance_dred.items():
            dred_totals[key] += value
        all_consistent = all_consistent and instance_consistent
        incremental_total += incremental_seconds
        full_total += full_seconds
        rows.append(
            {
                "input_id": item.identifier,
                "rule_count": rewriting.output_size,
                "base_facts": len(base),
                "ops": len(ops),
                "chunk_facts": chunk,
                "incremental_seconds": round(incremental_seconds, 6),
                "full_seconds": round(full_seconds, 6),
                "speedup": round(full_seconds / incremental_seconds, 2)
                if incremental_seconds
                else None,
                "consistent": instance_consistent,
            }
        )
    return {
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        "status": STATUS_COMPLETED if all_completed else STATUS_TIMED_OUT,
        "fact_count": fact_count,
        "churn_fraction": churn_fraction,
        "op_count": op_count,
        "repeats": max(1, repeats),
        "rows": rows,
        "dred": dred_totals,
        "fact_store": store_totals,
        "incremental_seconds": round(incremental_total, 6),
        "full_rematerialize_seconds": round(full_total, 6),
        "speedup_churn_vs_full": round(full_total / incremental_total, 2)
        if incremental_total
        else None,
        # deliberately False when nothing completed: an empty measurement
        # must not read as "verified consistent" downstream (CI asserts this)
        "all_consistent": bool(rows) and all_consistent,
    }


def _chase_suite_inputs(suite_size: int, max_axioms: int, fact_count: int):
    """The shared workload of the chase scenarios: suite items + instances."""
    from ..workloads.instances import generate_instance
    from ..workloads.ontology_suite import generate_suite

    suite = generate_suite(
        count=suite_size, seed=2022, min_axioms=10, max_axioms=max_axioms
    )
    return [
        (
            item,
            generate_instance(
                item.tgds,
                fact_count=fact_count,
                constant_count=max(20, fact_count // 4),
                seed=int(item.identifier),
            ),
        )
        for item in suite
    ]


def _best_of(repeats: int, run, *args):
    """``(best_seconds, result_of_best_run)`` over ``repeats`` timed calls.

    Both the delta engine and its naive reference are timed through this
    helper with the *same* repeat count — best-of-N against a single run
    would systematically flatter whichever side repeats on a noisy machine.
    """
    best_seconds = None
    best_result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run(*args)
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
            best_result = result
    return best_seconds, best_result


def _merge_chase_block(
    totals: Dict[str, int], snapshot: Optional[Dict[str, object]]
) -> Dict[str, int]:
    """Fold one run's chase counters into the scenario totals.

    Counters are additive across independent chase runs, except
    ``max_delta``: summing per-run maxima would fabricate a round size no
    run ever committed, so it aggregates by max.
    """
    from ..datalog.plan import JoinPlanStats

    snapshot = snapshot or {}
    prior_max = totals.pop("max_delta", 0)
    JoinPlanStats.merge_snapshot(totals, snapshot)
    totals["max_delta"] = max(prior_max, snapshot.get("max_delta", 0) or 0)
    return totals


def capture_skolem_chase(
    suite_size: int = 3,
    max_axioms: int = 22,
    fact_count: int = 150,
    max_term_depth: int = 2,
    repeats: int = 2,
) -> Dict[str, object]:
    """Depth-bounded Skolem-chase throughput: semi-naive plans vs naive loop.

    Saturates ontology-suite GTGD sets over generated base instances with the
    semi-naive plan-based engine (:meth:`SkolemChase.run`) and the retained
    naive loop (:meth:`SkolemChase.run_naive_reference`), each timed best of
    ``repeats`` — so ``speedup_vs_pre_change`` is a live same-machine,
    same-process measurement, not an embedded constant (and a conservative
    one: the retained loop reuses candidate domains across rounds, so it is
    somewhat faster than the true pre-change code; see the
    ``pre_change_note`` in the payload).  Fact-set equality of the two runs
    is recorded per row (``consistent``) and as the scenario-level
    ``all_consistent`` flag, which CI's sanity check and the harness tests
    enforce — the capture itself never raises, so a broken run still yields
    an inspectable payload.  The merged per-run counters of the semi-naive
    engine are recorded as the ``chase_plan`` block (counters are summed
    across inputs except ``max_delta``, which is the maximum over them; see
    :mod:`repro.chase.plans` for how to read it).
    """
    from ..chase.skolem_chase import SkolemChase
    from ..datalog.plan import JoinPlanStats

    wall_start = time.perf_counter()
    rows = []
    semi_total = 0.0
    naive_total = 0.0
    chase_totals: Dict[str, int] = {}
    all_consistent = True
    for item, instance in _chase_suite_inputs(suite_size, max_axioms, fact_count):
        chase = SkolemChase(item.tgds, max_term_depth=max_term_depth)
        semi_seconds, result = _best_of(repeats, chase.run, instance)
        naive_seconds, reference = _best_of(
            repeats, chase.run_naive_reference, instance
        )
        consistent = (
            result.facts == reference.facts
            and result.saturated == reference.saturated
        )
        all_consistent = all_consistent and consistent
        _merge_chase_block(chase_totals, result.plan_stats)
        semi_total += semi_seconds
        naive_total += naive_seconds
        rows.append(
            {
                "input_id": item.identifier,
                "tgds": len(item.tgds),
                "input_facts": len(instance),
                "output_facts": len(result.facts),
                "saturated": result.saturated,
                "rounds": result.rounds,
                "semi_naive_seconds": round(semi_seconds, 6),
                "naive_seconds": round(naive_seconds, 6),
                "speedup": round(naive_seconds / semi_seconds, 2)
                if semi_seconds
                else None,
                "consistent": consistent,
            }
        )
    return {
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        # the chase runs without a time budget (the depth bound is what
        # truncates it), so this scenario always completes
        "status": STATUS_COMPLETED,
        "suite_size": suite_size,
        "fact_count": fact_count,
        "max_term_depth": max_term_depth,
        "repeats": max(1, repeats),
        "rows": rows,
        "chase_plan": JoinPlanStats.with_hit_rate(dict(chase_totals)),
        "semi_naive_seconds": round(semi_total, 6),
        "pre_change_naive_seconds": round(naive_total, 6),
        "speedup_vs_pre_change": round(naive_total / semi_total, 2)
        if semi_total
        else None,
        "pre_change_note": (
            "measured against the retained naive loop "
            "(SkolemChase.run_naive_reference) in this very capture, both "
            "sides best-of-repeats, so the ratio is same-machine by "
            "construction; the reference keeps the pre-change per-round "
            "structure but reuses candidate domains across rounds, making it "
            "faster than the true pre-change loop — the recorded speedup is "
            "a conservative lower bound"
        ),
        # deliberately False when nothing was measured: an empty run must not
        # read as "verified consistent" downstream
        "all_consistent": bool(rows) and all_consistent,
    }


def _run_worklist_oracle(tgds, instance):
    """One fresh worklist-engine saturation; returns (facts, stats snapshot)."""
    from ..chase.guarded_engine import GuardedChaseReasoner

    reasoner = GuardedChaseReasoner(tgds, max_types=500_000)
    facts = reasoner.entailed_base_facts(instance)
    return facts, reasoner.stats.snapshot()


def _run_reference_oracle(tgds, instance):
    """One fresh recursive-reference saturation; returns its base facts."""
    from ..chase.guarded_engine import ReferenceGuardedReasoner

    return ReferenceGuardedReasoner(tgds, max_types=500_000).entailed_base_facts(
        instance
    )


def capture_guarded_oracle(
    suite_size: int = 4,
    max_axioms: int = 24,
    fact_count: int = 110,
    repeats: int = 1,
) -> Dict[str, object]:
    """Guarded-oracle throughput: dirty-type worklist vs recursive re-walks.

    Saturates ontology-suite GTGD sets with the worklist
    :class:`GuardedChaseReasoner` and the retained pre-change
    :class:`ReferenceGuardedReasoner` (each timed best of ``repeats``, on a
    fresh reasoner per repeat), recording whether their entailed-base-fact
    sets agree (``all_consistent``, enforced by CI and the harness tests);
    ``speedup_vs_pre_change`` is a live same-machine measurement like the
    ``skolem_chase`` scenario's.  The worklist engine's counters (types
    closed vs reused, per-type delta rounds and sizes, trigger firings,
    cross-type imports — see
    :class:`repro.chase.guarded_engine.GuardedEngineStats`) form the
    ``chase_plan`` block (summed across inputs, except ``max_delta`` which
    aggregates by maximum).
    """
    wall_start = time.perf_counter()
    rows = []
    worklist_total = 0.0
    naive_total = 0.0
    chase_totals: Dict[str, int] = {}
    all_consistent = True
    for item, instance in _chase_suite_inputs(suite_size, max_axioms, fact_count):
        worklist_seconds, (facts, stats_snapshot) = _best_of(
            repeats, _run_worklist_oracle, item.tgds, instance
        )
        naive_seconds, expected = _best_of(
            repeats, _run_reference_oracle, item.tgds, instance
        )
        consistent = facts == expected
        all_consistent = all_consistent and consistent
        _merge_chase_block(chase_totals, stats_snapshot)
        worklist_total += worklist_seconds
        naive_total += naive_seconds
        rows.append(
            {
                "input_id": item.identifier,
                "tgds": len(item.tgds),
                "input_facts": len(instance),
                "entailed_base_facts": len(facts),
                "worklist_seconds": round(worklist_seconds, 6),
                "naive_seconds": round(naive_seconds, 6),
                "speedup": round(naive_seconds / worklist_seconds, 2)
                if worklist_seconds
                else None,
                "consistent": consistent,
            }
        )
    return {
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        # the oracle always terminates (type space is finite); no time budget
        "status": STATUS_COMPLETED,
        "suite_size": suite_size,
        "fact_count": fact_count,
        "repeats": max(1, repeats),
        "rows": rows,
        "chase_plan": dict(chase_totals),
        "worklist_seconds": round(worklist_total, 6),
        "pre_change_naive_seconds": round(naive_total, 6),
        "speedup_vs_pre_change": round(naive_total / worklist_total, 2)
        if worklist_total
        else None,
        "pre_change_note": (
            "the pre-change recursive engine is retained in-tree "
            "(ReferenceGuardedReasoner) and re-measured in this very capture "
            "with the same repeat count, so the speedup is same-machine by "
            "construction"
        ),
        "all_consistent": bool(rows) and all_consistent,
    }


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty sequence."""
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def capture_serving_throughput(
    suite_size: int = 3,
    max_axioms: int = 40,
    fact_count: int = 6000,
    clients: int = 8,
    queries_per_client: int = 32,
    distinct_queries: int = 6,
    mutations: int = 2,
    repeats: int = 2,
    timeout_seconds: float = 8.0,
) -> Dict[str, object]:
    """Concurrent serving throughput of :class:`repro.serve.ReasoningServer`.

    Boots an in-process server (inline worker tier, so the measurement is
    deterministic and free of pool cold-starts) over the largest completed
    ontology-suite rewriting, then drives ``clients`` concurrent clients
    issuing ``queries_per_client`` queries each from a pool of
    ``distinct_queries`` templates, with ``mutations`` retract/add ops
    interleaved mid-stream to exercise answer-cache invalidation.  Records
    per-request latency (``latency_ms`` with p50/p99), the answer-cache hit
    rate, the micro-batch size histogram, and the measured speedup over
    answering the *identical* request stream sequentially on one warm
    session (the cost ``serve-batch`` pays per query — no batching, no
    dedup, no cache).  Both sides run best-of-``repeats`` on a fresh
    server/session per repeat (the same fairness rule as :func:`_best_of`),
    with a ``gc.collect()`` before each timed run so heap pressure left by
    earlier scenarios in a full capture does not skew the event loop.
    Every concurrent response (from every repeat, not just the best one) is
    checked against a fresh single-threaded oracle at the generation the
    server stamped on it;
    ``stale_free`` records the outcome (enforced by CI's sanity check — a
    cached answer surviving a retraction would flip it false).
    """
    import asyncio

    from ..api import KnowledgeBase
    from ..datalog.query import parse_query
    from ..logic.printer import format_fact
    from ..serve.protocol import encode_answers
    from ..serve.server import ReasoningServer, ServedKB
    from ..workloads.instances import generate_instance
    from ..workloads.ontology_suite import generate_suite

    settings = RewritingSettings(timeout_seconds=timeout_seconds)
    wall_start = time.perf_counter()
    suite = generate_suite(
        count=suite_size, seed=2022, min_axioms=12, max_axioms=max_axioms
    )
    completed = []
    all_completed = True
    for item in suite:
        result = rewrite(item.tgds, algorithm="exbdr", settings=settings)
        all_completed = all_completed and result.completed
        if result.completed:
            completed.append((item, result))
    completed.sort(key=lambda pair: pair[1].output_size, reverse=True)
    if not completed:
        return {
            "wall_seconds": round(time.perf_counter() - wall_start, 6),
            "status": STATUS_TIMED_OUT,
            "requests": 0,
            "stale_free": False,
        }
    item, rewriting = completed[0]
    kb = KnowledgeBase(tgds=tuple(item.tgds), rewriting=rewriting)
    instance = generate_instance(
        item.tgds,
        fact_count=fact_count,
        constant_count=max(50, fact_count // 10),
        seed=int(item.identifier),
    )
    facts = sorted(instance, key=str)
    predicates = sorted(
        {fact.predicate for fact in facts}, key=lambda pred: pred.name
    )
    # join queries first: they are the representative (and expensive) case,
    # so the pool measures amortization of real work, not just scans
    binary = [pred for pred in predicates if pred.arity == 2]
    query_texts = [
        f"{first.name}(?x, ?y), {second.name}(?y, ?z)"
        for first, second in zip(binary, binary[1:])
    ]
    query_texts.extend(
        f"{pred.name}({', '.join(f'?x{i}' for i in range(pred.arity))})"
        for pred in predicates
    )
    query_texts = query_texts[:distinct_queries]
    # the mutation payload: a small chunk of base facts retracted and
    # re-added — sized as an invalidation event (the thing the cache must
    # survive), not bulk churn, which the ``churn`` scenario measures
    chunk = facts[: max(1, len(facts) // 500)]
    chunk_text = "\n".join(format_fact(fact) for fact in chunk)
    total_requests = clients * queries_per_client

    async def _drive():
        server = ReasoningServer([ServedKB("bench", kb, facts)], workers=0)
        await server.start()
        await server.warm()  # materialize before the clock starts
        handles = [server.local_client() for _ in range(clients)]
        latencies: List[float] = []
        observed: List[Tuple[str, int, object]] = []

        async def client_task(index: int, handle) -> None:
            for round_no in range(queries_per_client):
                text = query_texts[(index + round_no) % len(query_texts)]
                start = time.perf_counter()
                response = await handle.query(text)
                latencies.append(time.perf_counter() - start)
                observed.append(
                    (text, response["generation"], response["answers"])
                )

        async def writer_task(handle) -> None:
            for op_no in range(mutations):
                threshold = total_requests * (op_no + 1) // (mutations + 1)
                while len(latencies) < threshold:
                    await asyncio.sleep(0)
                if op_no % 2 == 0:
                    await handle.retract_facts(chunk_text)
                else:
                    await handle.add_facts(chunk_text)

        concurrent_start = time.perf_counter()
        await asyncio.gather(
            *(client_task(i, handle) for i, handle in enumerate(handles)),
            writer_task(handles[0]),
        )
        concurrent_wall = time.perf_counter() - concurrent_start
        stats = await handles[0].stats()
        await server.shutdown()
        return latencies, observed, stats, concurrent_wall

    import gc

    best = None
    all_observed: List[Tuple[str, int, object]] = []
    for _ in range(max(1, repeats)):
        gc.collect()
        latencies, observed, stats, concurrent_wall = asyncio.run(_drive())
        all_observed.extend(observed)
        if best is None or concurrent_wall < best[0]:
            best = (concurrent_wall, latencies, stats)
    concurrent_wall, latencies, stats = best
    observed = all_observed

    # the sequential reference: the identical logical stream (every query
    # request plus the same mutations at the same points) answered one at a
    # time on a single warm session, the way serve-batch would
    queries = {text: parse_query(text) for text in query_texts}
    schedule: List[Tuple[str, str]] = []
    for round_no in range(queries_per_client):
        for index in range(clients):
            schedule.append(("query", query_texts[(index + round_no) % len(query_texts)]))
    for op_no in range(mutations):
        position = len(schedule) * (op_no + 1) // (mutations + 1) + op_no
        schedule.insert(position, ("retract" if op_no % 2 == 0 else "add", None))
    sequential_wall = None
    for _ in range(max(1, repeats)):
        session = kb.session(facts)
        len(session)  # force the materialization before the clock starts
        gc.collect()
        sequential_start = time.perf_counter()
        for kind, text in schedule:
            if kind == "query":
                session.answer(queries[text])
            elif kind == "retract":
                session.retract_facts(chunk)
            else:
                session.add_facts(chunk)
        elapsed = time.perf_counter() - sequential_start
        if sequential_wall is None or elapsed < sequential_wall:
            sequential_wall = elapsed

    # stale-answer audit: every response must equal a fresh single-threaded
    # session's answers at the generation the server stamped on it
    generations = sorted({generation for _, generation, _ in observed})
    oracle: Dict[int, Dict[str, object]] = {}
    for generation in generations:
        state = list(facts)
        for op_no in range(min(generation, mutations)):
            if op_no % 2 == 0:
                removed = set(chunk)
                state = [fact for fact in state if fact not in removed]
            else:
                state.extend(chunk)
        answers = kb.answer_many(list(queries.values()), state)
        oracle[generation] = {
            text: encode_answers(answer_set)
            for text, answer_set in zip(queries, answers)
        }
    stale_free = bool(observed) and all(
        answers == oracle[generation][text]
        for text, generation, answers in observed
    )

    latencies.sort()
    cache_stats = stats["answer_cache"]
    batch_stats = stats["batching"]
    return {
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        "status": STATUS_COMPLETED if all_completed else STATUS_TIMED_OUT,
        "input_id": item.identifier,
        "rule_count": rewriting.output_size,
        "base_facts": len(facts),
        "clients": clients,
        "queries_per_client": queries_per_client,
        "distinct_queries": len(query_texts),
        "mutations": mutations,
        "repeats": max(1, repeats),
        "requests": total_requests,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000, 3),
            "p99": round(_percentile(latencies, 0.99) * 1000, 3),
            "mean": round(sum(latencies) / len(latencies) * 1000, 3),
            "max": round(latencies[-1] * 1000, 3),
        }
        if latencies
        else {},
        "requests_per_second": round(total_requests / concurrent_wall, 1)
        if concurrent_wall
        else None,
        "serving": {
            "cache_hit_rate": cache_stats["hit_rate"],
            "cache_hits": cache_stats["hits"],
            "cache_misses": cache_stats["misses"],
            "stale_drops": cache_stats["stale_drops"],
            "invalidations": cache_stats["invalidations"],
            "batches": batch_stats["batches"],
            "evaluated": batch_stats["evaluated"],
            "dedup_saved": batch_stats["dedup_saved"],
            "max_batch_size": batch_stats["max_batch_size"],
            "batch_size_histogram": batch_stats["batch_size_histogram"],
            "workers": stats["workers"]["mode"],
        },
        # the fault-tolerance ledger: a clean perf run must report zero
        # recoveries (CI asserts this — a nonzero counter here means the
        # measurement itself was degraded by restarts/sheds/timeouts)
        "resilience": dict(stats["resilience"]),
        "concurrent_wall_seconds": round(concurrent_wall, 6),
        "sequential_wall_seconds": round(sequential_wall, 6),
        "speedup_batched_vs_sequential": round(sequential_wall / concurrent_wall, 2)
        if concurrent_wall
        else None,
        # deliberately False when nothing was observed: an empty run must not
        # read as "verified stale-free" downstream (CI asserts this flag)
        "stale_free": stale_free,
    }


def capture_demand_queries(
    suite_size: int = 3,
    max_axioms: int = 40,
    fact_count: int = 4000,
    query_count: int = 5,
    repeats: int = 2,
    timeout_seconds: float = 8.0,
) -> Dict[str, object]:
    """Cold bound point-queries: goal-directed (magic sets) vs full materialize.

    Takes the largest completed ontology-suite rewriting, generates a base
    instance, and builds ``query_count`` *bound point queries* — one IDB
    predicate each, first argument bound to an instance constant — the
    workload the demand transformation exists for.  Each query is answered
    two ways from a completely cold start, best of ``repeats`` with a fresh
    session per run (the same fairness rule as :func:`_best_of`):

    * **demand** — a deferred session (``defer_materialization=True``)
      answered with ``QueryOptions(strategy="demand")``, so only the
      magic-restricted fragment of the fixpoint is ever computed;
    * **materialized** — a fresh session that pays the full fixpoint before
      evaluating the same query, the cost a cold ``serve-batch`` pays today.

    ``speedup_demand_vs_materialized`` is the ratio of the summed best
    times.  Answer-set equality of the two paths is recorded per row
    (``agreement``) and as the scenario-level flag — deliberately ``False``
    when no query was measured, so an empty run cannot read as "verified"
    downstream (CI asserts the flag).  The ``magic`` block aggregates the
    per-query :class:`repro.datalog.magic.DemandReport` counters:
    transform-shape counts (``adorned_rules``/``magic_rules``/``copy_rules``,
    max over queries — they describe rewritten programs, not work), summed
    ``magic_facts``, and how many predicates the demand runs touched out of
    the program total (see the docstring of :mod:`repro.datalog.magic` for
    how to read each counter).

    Two untimed instrumentation blocks ride along: ``fact_store`` holds the
    ID-encoded store's counters after one full materialization
    (:meth:`repro.datalog.store.FactStore.stats`), and ``kb_segments``
    records a ``repro-kb/v2`` save → cold-load round trip — file size,
    segment-decode wall time, and ``predicates_loaded`` out of
    ``total_predicates`` after one demand-driven answer (strictly fewer
    loaded than total is the lazy tier working).
    """
    import gc

    from ..api import KnowledgeBase
    from ..datalog.magic import demand_answer
    from ..datalog.query import QueryOptions, parse_query
    from ..workloads.instances import generate_instance
    from ..workloads.ontology_suite import generate_suite

    settings = RewritingSettings(timeout_seconds=timeout_seconds)
    wall_start = time.perf_counter()
    suite = generate_suite(
        count=suite_size, seed=2022, min_axioms=12, max_axioms=max_axioms
    )
    completed = []
    all_completed = True
    for item in suite:
        result = rewrite(item.tgds, algorithm="exbdr", settings=settings)
        all_completed = all_completed and result.completed
        if result.completed:
            completed.append((item, result))
    completed.sort(key=lambda pair: pair[1].output_size, reverse=True)
    if not completed:
        return {
            "wall_seconds": round(time.perf_counter() - wall_start, 6),
            "status": STATUS_TIMED_OUT,
            "queries": 0,
            "agreement": False,
        }
    item, rewriting = completed[0]
    kb = KnowledgeBase(tgds=tuple(item.tgds), rewriting=rewriting)
    instance = generate_instance(
        item.tgds,
        fact_count=fact_count,
        constant_count=max(50, fact_count // 10),
        seed=int(item.identifier),
    )
    facts = tuple(sorted(instance, key=str))
    # bound point queries: one IDB atom, first argument a constant that
    # occurs in the instance — the access pattern magic sets reward
    idb = sorted(
        (pred for pred in kb.program.idb_predicates() if pred.arity >= 1),
        key=lambda pred: (pred.name, pred.arity),
    )
    constants = sorted(
        {arg for fact in facts for arg in fact.args if arg.is_ground}, key=str
    )
    if not idb or not constants:
        return {
            "wall_seconds": round(time.perf_counter() - wall_start, 6),
            "status": STATUS_COMPLETED if all_completed else STATUS_TIMED_OUT,
            "queries": 0,
            "agreement": False,
        }
    query_texts = []
    for index in range(query_count):
        pred = idb[index % len(idb)]
        constant = constants[(index * 7) % len(constants)]
        free = [f"?x{position}" for position in range(1, pred.arity)]
        query_texts.append(f"{pred.name}({', '.join([str(constant)] + free)})")
    queries = [parse_query(text) for text in query_texts]

    def run_demand(query):
        session = kb.session(facts, defer_materialization=True)
        return session.answer(query, options=QueryOptions(strategy="demand"))

    def run_materialized(query):
        session = kb.session(facts)  # pays the full fixpoint
        return session.answer(query, options=QueryOptions(strategy="materialized"))

    rows = []
    demand_total = 0.0
    materialized_total = 0.0
    magic_totals: Dict[str, int] = {}
    all_agree = True
    for text, query in zip(query_texts, queries):
        gc.collect()
        demand_seconds, demand_answers = _best_of(repeats, run_demand, query)
        gc.collect()
        materialized_seconds, full_answers = _best_of(
            repeats, run_materialized, query
        )
        agree = demand_answers == full_answers
        all_agree = all_agree and agree
        demand_total += demand_seconds
        materialized_total += materialized_seconds
        # one untimed demand run for the transform/derivation counters (the
        # timed runs go through the session path users actually hit)
        report = demand_answer(kb.program, facts, query).report.as_dict()
        for key in ("adorned_rules", "magic_rules", "copy_rules"):
            magic_totals[key] = max(magic_totals.get(key, 0), report[key])
        magic_totals["magic_facts"] = (
            magic_totals.get("magic_facts", 0) + report["magic_facts"]
        )
        magic_totals["predicates_touched"] = max(
            magic_totals.get("predicates_touched", 0), report["predicates_touched"]
        )
        magic_totals["predicates_total"] = report["predicates_total"]
        rows.append(
            {
                "query": text,
                "answers": len(demand_answers),
                "demand_seconds": round(demand_seconds, 6),
                "materialized_seconds": round(materialized_seconds, 6),
                "speedup": round(materialized_seconds / demand_seconds, 2)
                if demand_seconds
                else None,
                "agreement": agree,
                "magic": report,
            }
        )
    # untimed instrumentation: one warm session records the materialized
    # store's ID-encoded shape (term-table size, rows, index footprint)...
    fact_store: Dict[str, int] = {}
    _merge_fact_store_stats(fact_store, kb.session(facts).store.stats())
    # ...and a save → cold-load round trip records the segment tier: the KB
    # is written with its facts as repro-kb/v2, reopened, and the first
    # bound query answered on demand so only the probed predicates' row
    # segments ever decode
    import os
    import tempfile

    handle, kb_path = tempfile.mkstemp(suffix=".json", prefix="repro-kb-")
    os.close(handle)
    try:
        kb.save(kb_path, facts=facts)
        file_bytes = os.path.getsize(kb_path)
        reloaded = KnowledgeBase.load(kb_path)
        segments = reloaded.fact_segments
        cold = reloaded.session(segments, defer_materialization=True)
        cold.answer(queries[0], options=QueryOptions(strategy="demand"))
        kb_segments: Dict[str, object] = {"file_bytes": file_bytes}
        kb_segments.update(segments.stats())
    finally:
        os.unlink(kb_path)
    return {
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        "status": STATUS_COMPLETED if all_completed else STATUS_TIMED_OUT,
        "input_id": item.identifier,
        "rule_count": rewriting.output_size,
        "base_facts": len(facts),
        "queries": len(rows),
        "repeats": max(1, repeats),
        "demand_seconds": round(demand_total, 6),
        "materialized_seconds": round(materialized_total, 6),
        "speedup_demand_vs_materialized": round(
            materialized_total / demand_total, 2
        )
        if demand_total
        else None,
        "magic": magic_totals,
        "fact_store": fact_store,
        "kb_segments": kb_segments,
        # deliberately False when nothing was measured: an empty run must
        # not read as "demand ≡ materialized verified" downstream
        "agreement": bool(rows) and all_agree,
        "rows": rows,
    }


def capture_perf(
    smoke: bool = False, scenarios: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """Run the recorded scenarios and return the BENCH_rewriting payload.

    ``smoke=True`` shrinks every knob so the capture finishes in a few
    seconds; CI uses it to keep the pipeline exercised without paying for a
    full measurement run.  ``scenarios`` restricts the capture to a subset of
    :data:`SCENARIO_NAMES` (``perf --scenario NAME``) so a single scenario
    can be iterated on without rerunning the whole capture; the filter is
    recorded in the payload as ``scenario_filter``.
    """
    if scenarios is not None:
        unknown = sorted(set(scenarios) - set(SCENARIO_NAMES))
        if unknown:
            raise ValueError(
                f"unknown perf scenario(s) {unknown}; "
                f"expected a subset of {list(SCENARIO_NAMES)}"
            )
    if smoke:
        runners = {
            "separation_families": lambda: capture_separation_families(
                ns=(2, 3), repeats=1
            ),
            "fulldr_comparison": lambda: capture_fulldr_comparison(
                timeout_seconds=2.0
            ),
            "end_to_end": lambda: capture_end_to_end(
                suite_size=2, max_axioms=24, top_k=1, fact_count=150
            ),
            "incremental_updates": lambda: capture_incremental_updates(
                suite_size=2, max_axioms=24, top_k=1, fact_count=1000, repeats=2
            ),
            "churn": lambda: capture_churn(
                suite_size=2, max_axioms=24, top_k=1, fact_count=600, op_count=4,
                repeats=1,
            ),
            "skolem_chase": lambda: capture_skolem_chase(
                suite_size=2, max_axioms=14, fact_count=60, repeats=1
            ),
            "guarded_oracle": lambda: capture_guarded_oracle(
                suite_size=2, max_axioms=14, fact_count=40
            ),
            "serving_throughput": lambda: capture_serving_throughput(
                suite_size=2, max_axioms=24, fact_count=200, clients=4,
                queries_per_client=4, distinct_queries=4,
            ),
            "demand_queries": lambda: capture_demand_queries(
                suite_size=2, max_axioms=24, fact_count=300, query_count=3,
                repeats=1,
            ),
        }
    else:
        runners = {
            "separation_families": capture_separation_families,
            "fulldr_comparison": capture_fulldr_comparison,
            "end_to_end": capture_end_to_end,
            "incremental_updates": capture_incremental_updates,
            "churn": capture_churn,
            "skolem_chase": capture_skolem_chase,
            "guarded_oracle": capture_guarded_oracle,
            "serving_throughput": capture_serving_throughput,
            "demand_queries": capture_demand_queries,
        }
    # start from empty intern tables so repeated in-process captures measure
    # the same (cold) workload and report comparable hit rates
    clear_intern_caches()
    wall_start = time.perf_counter()
    captured = {
        name: runners[name]()
        for name in SCENARIO_NAMES
        if scenarios is None or name in scenarios
    }
    payload: Dict[str, object] = {
        "schema": "bench-rewriting/v1",
        "created_unix": round(time.time(), 1),
        "scale": "smoke" if smoke else "default",
        "wall_seconds": round(time.perf_counter() - wall_start, 6),
        "scenarios": captured,
        "interning": intern_stats(),
    }
    if scenarios is not None:
        payload["scenario_filter"] = sorted(captured)
    return payload


def write_bench_json(
    payload: Mapping[str, object], path: "str | Path" = "BENCH_rewriting.json"
) -> Path:
    """Persist a capture payload; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


def compare_captures(
    current: Mapping[str, object], previous: Mapping[str, object]
) -> Dict[str, object]:
    """Wall-time ratios (previous / current, >1 means the current run is faster).

    Captures taken at different scales (``smoke`` versus ``default``) measure
    different workloads, so comparing their wall times would be meaningless;
    the mismatch is reported instead of ratios.
    """
    current_scale = current.get("scale")
    previous_scale = previous.get("scale")
    if current_scale != previous_scale:
        return {
            "error": (
                f"scale mismatch: current capture is {current_scale!r}, "
                f"baseline is {previous_scale!r}; wall times are not comparable"
            )
        }
    ratios: Dict[str, object] = {}
    current_scenarios = current.get("scenarios", {})
    previous_scenarios = previous.get("scenarios", {})
    for name, scenario in current_scenarios.items():
        old = previous_scenarios.get(name)
        if not isinstance(old, Mapping) or not isinstance(scenario, Mapping):
            continue
        old_status = _scenario_status(old)
        new_status = _scenario_status(scenario)
        if old_status and new_status and old_status != new_status:
            # a scenario that newly completes (or newly times out) measures
            # different work; its wall times are not comparable — the change
            # is reported via compare_scenario_statuses instead
            continue
        new_wall = scenario.get("wall_seconds")
        old_wall = old.get("wall_seconds")
        if new_wall and old_wall:
            ratios[name] = round(old_wall / new_wall, 2)
    return ratios


def _scenario_status(scenario: Mapping[str, object]) -> Optional[str]:
    """The scenario's ``status`` flag, inferred for pre-flag captures.

    Captures taken before the flag existed (the old committed
    BENCH_rewriting.json, any CI merge-base capture of pre-flag code) still
    record per-algorithm ``completed`` booleans under ``inputs``; deriving a
    status from them keeps the different-work exclusion (and the CLI's
    newly-timed-out gate) live against such baselines instead of silently
    comparing a timed-out run's wall time with a completed one's.
    """
    status = scenario.get("status")
    if isinstance(status, str):
        return status
    inputs = scenario.get("inputs")
    if not isinstance(inputs, Mapping):
        return None
    completed_flags = [
        row.get("completed")
        for per_algorithm in inputs.values()
        if isinstance(per_algorithm, Mapping)
        for row in per_algorithm.values()
        if isinstance(row, Mapping) and "completed" in row
    ]
    if not completed_flags:
        return None
    return STATUS_COMPLETED if all(completed_flags) else STATUS_TIMED_OUT


def compare_scenario_statuses(
    current: Mapping[str, object], previous: Mapping[str, object]
) -> Dict[str, Dict[str, object]]:
    """Per-scenario status transitions between two captures.

    Returns ``{name: {"baseline": ..., "current": ...}}`` for every scenario
    whose ``status`` flag differs between the captures — e.g. a FullDR
    comparison that used to time out on example E.3 and now completes.  Such
    scenarios are excluded from the wall-time ratios of
    :func:`compare_captures`, so without this block the change would be
    invisible (or worse, read as a regression).
    """
    changes: Dict[str, Dict[str, object]] = {}
    current_scenarios = current.get("scenarios", {})
    previous_scenarios = previous.get("scenarios", {})
    if not isinstance(current_scenarios, Mapping) or not isinstance(
        previous_scenarios, Mapping
    ):
        return changes
    for name, scenario in current_scenarios.items():
        old = previous_scenarios.get(name)
        if not isinstance(old, Mapping) or not isinstance(scenario, Mapping):
            continue
        old_status = _scenario_status(old)
        new_status = _scenario_status(scenario)
        if old_status and new_status and old_status != new_status:
            changes[name] = {"baseline": old_status, "current": new_status}
    return changes
