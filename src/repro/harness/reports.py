"""Plain-text report rendering in the shape of the paper's tables and figures.

Every benchmark script prints its results through these helpers so that the
rows and columns line up with the corresponding artefact of the paper
(Table 1, Figure 4, Table 2, Figure 5) and can be compared side by side in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .runner import RunRecord
from .stats import (
    AlgorithmSummary,
    both_fail_matrix,
    cactus_series,
    pairwise_slowdown_matrix,
    summarize,
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [
        [header] for header in headers
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def table1_report(statistics: Mapping[str, Mapping[str, float]], input_count: int) -> str:
    """Render the Table 1 "Input GTGDs at a Glance" block."""
    headers = ["Inputs #", "kind", "Min", "Max", "Avg", "Med"]
    rows = []
    for kind, label in (("full", "Full TGDs"), ("non_full", "Non-Full TGDs")):
        block = statistics[kind]
        rows.append(
            [
                input_count,
                label,
                int(block["min"]),
                int(block["max"]),
                round(block["avg"], 1),
                round(block["med"], 1),
            ]
        )
    return "Table 1: Input GTGDs at a Glance\n" + format_table(headers, rows)


def figure_summary_report(records: Sequence[RunRecord], title: str) -> str:
    """Render the per-algorithm statistics block of Figure 4 / Figure 5."""
    summaries = summarize(records)
    headers = [
        "Metric",
        *[summary.algorithm for summary in summaries],
    ]
    metric_rows: List[List[object]] = []
    metrics: List[Tuple[str, str]] = [
        ("# of Processed Inputs", "processed_inputs"),
        ("Max. Processed Input Size", "max_processed_input_size"),
        ("Max. Output Size", "max_output_size"),
        ("Max. Size Blowup", "max_blowup"),
        ("Max. Body Atoms in Output", "max_body_atoms"),
        ("# Blowup >= 1.5", "blowup_at_least_1_5"),
        ("Time (s) Min.", "min_time"),
        ("Time (s) Max.", "max_time"),
        ("Time (s) Avg.", "avg_time"),
        ("Time (s) Med.", "median_time"),
    ]
    for label, attribute in metrics:
        row: List[object] = [label]
        for summary in summaries:
            row.append(summary.as_dict()[attribute if attribute != "max_blowup" else "max_blowup"])
        metric_rows.append(row)
    return f"{title}\n" + format_table(headers, metric_rows)


def cactus_report(records: Sequence[RunRecord], points: int = 8) -> str:
    """Render a textual cactus plot: time needed to process the n fastest inputs."""
    series = cactus_series(records)
    lines = ["Cactus plot (inputs processed vs. time in seconds):"]
    for algorithm, values in sorted(series.items()):
        if not values:
            lines.append(f"  {algorithm}: no processed inputs")
            continue
        step = max(1, len(values) // points)
        samples = values[::step]
        if samples[-1] != values[-1]:
            samples.append(values[-1])
        rendered = ", ".join(f"{count}@{time_value:.2f}s" for count, time_value in samples)
        lines.append(f"  {algorithm}: {rendered}")
    return "\n".join(lines)


def pairwise_report(records: Sequence[RunRecord], factor: float = 10.0) -> str:
    """Render the "time(Y)/time(X) ≥ 10" and "X and Y both fail" matrices."""
    slowdown = pairwise_slowdown_matrix(records, factor)
    failures = both_fail_matrix(records)
    algorithms = sorted({record.algorithm for record in records})
    headers = ["Y \\ X"] + algorithms
    slowdown_rows = []
    for slower in algorithms:
        row: List[object] = [slower]
        for faster in algorithms:
            row.append("" if slower == faster else slowdown.get((slower, faster), 0))
        slowdown_rows.append(row)
    failure_rows = []
    for left in algorithms:
        row = [left]
        for right in algorithms:
            row.append(failures.get((left, right), 0))
        failure_rows.append(row)
    return (
        f"time(Y)/time(X) >= {factor:g}\n"
        + format_table(headers, slowdown_rows)
        + "\n\nX and Y both fail\n"
        + format_table(headers, failure_rows)
    )


def end_to_end_report(rows: Sequence[Mapping[str, object]]) -> str:
    """Render the Table 2 "Computing the Fixpoint of the Rewriting" block."""
    headers = ["Input", "# Rules", "# Input Facts", "# Output Facts", "Ratio", "Time (s)"]
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row["input_id"],
                row["rule_count"],
                row["input_facts"],
                row["output_facts"],
                round(row["output_facts"] / max(1, row["input_facts"]), 1),
                round(row["elapsed_seconds"], 2),
            ]
        )
    return "Table 2: Computing the Fixpoint of the Rewriting\n" + format_table(
        headers, table_rows
    )


def _stats_block(scenario: Mapping[str, object], key: str) -> Mapping[str, object]:
    """The named stats block of a scenario, or ``{}`` when absent.

    Captures recorded before a stats block existed (older committed
    baselines, the merge-base capture CI compares against) simply lack the
    key — and a hand-edited capture may carry a malformed one.  Every
    renderer reads optional blocks through this helper so old and new
    captures keep rendering side by side instead of crashing the report.
    """
    block = scenario.get(key)
    return block if isinstance(block, Mapping) else {}


def perf_report(payload: Mapping[str, object]) -> str:
    """Render a BENCH_rewriting capture (see harness.perfcapture) as text."""
    lines: List[str] = [
        f"Perf capture ({payload.get('scale', '?')} scale): "
        f"{payload.get('wall_seconds', 0.0):.2f}s total"
    ]
    scenarios = payload.get("scenarios", {})
    if isinstance(scenarios, Mapping):
        rows = []
        for name, scenario in scenarios.items():
            if not isinstance(scenario, Mapping):
                continue
            clauses = scenario.get("clauses", {})
            rows.append(
                [
                    name,
                    scenario.get("wall_seconds", ""),
                    clauses.get("generated", ""),
                    clauses.get("retained", ""),
                    clauses.get("subsumption_hit_rate", ""),
                ]
            )
        lines.append(
            format_table(
                ["Scenario", "Wall (s)", "Generated", "Retained", "Subs. hit rate"],
                rows,
            )
        )
        separation = scenarios.get("separation_families")
        if isinstance(separation, Mapping) and separation.get("speedup_vs_pre_change"):
            lines.append(
                f"separation_families speedup vs pre-change loop: "
                f"{separation['speedup_vs_pre_change']}x"
            )
        end_to_end = scenarios.get("end_to_end")
        if isinstance(end_to_end, Mapping) and end_to_end.get(
            "materialize_speedup_vs_pre_change"
        ):
            lines.append(
                f"end_to_end materialization speedup vs tuple-at-a-time engine: "
                f"{end_to_end['materialize_speedup_vs_pre_change']}x"
            )
        incremental = scenarios.get("incremental_updates")
        if isinstance(incremental, Mapping) and incremental.get(
            "speedup_delta_vs_full"
        ):
            lines.append(
                f"incremental_updates: delta propagation "
                f"{incremental['speedup_delta_vs_full']}x faster than full "
                f"re-materialization"
                + ("" if incremental.get("all_consistent") else " (INCONSISTENT!)")
            )
        churn = scenarios.get("churn")
        # render whenever there is a speedup to report OR a divergence to
        # flag — an inconsistent run must never lose its warning
        if isinstance(churn, Mapping) and (
            churn.get("speedup_churn_vs_full")
            or churn.get("all_consistent") is False
        ):
            dred = churn.get("dred", {})
            lines.append(
                f"churn: interleaved add/retract "
                f"{churn.get('speedup_churn_vs_full') or '?'}x faster than full "
                f"re-materialization (DRed: {dred.get('retracted', 0)} retracted, "
                f"{dred.get('overdeleted', 0)} overdeleted, "
                f"{dred.get('rederived', 0)} rederived, "
                f"net -{dred.get('net_removed', 0)} in "
                f"{dred.get('rounds', 0)} rounds)"
                + ("" if churn.get("all_consistent") else " (INCONSISTENT!)")
            )
        for name in ("end_to_end", "incremental_updates"):
            scenario = scenarios.get(name)
            if not isinstance(scenario, Mapping):
                continue
            join_plan = scenario.get("join_plan")
            if isinstance(join_plan, Mapping) and join_plan.get("batches"):
                lines.append(
                    f"{name} join plans: {join_plan.get('batches', 0)} batches, "
                    f"{join_plan.get('probes', 0)} probes, "
                    f"{join_plan.get('probe_hits', 0)} hits "
                    f"(avg {join_plan.get('hit_rate', 0.0)} facts/probe, "
                    f"{join_plan.get('plans_compiled', 0)} plans compiled)"
                )
        fulldr = scenarios.get("fulldr_comparison")
        if isinstance(fulldr, Mapping):
            solver = fulldr.get("match_solver")
            if isinstance(solver, Mapping) and solver.get("solves"):
                lines.append(
                    f"fulldr_comparison match solver: {solver.get('solves', 0)} "
                    f"solves, {solver.get('nodes_expanded', 0)} nodes expanded, "
                    f"{solver.get('domains_pruned', 0)} domain values pruned, "
                    f"{solver.get('empty_domain_exits', 0)} empty-domain exits, "
                    f"{solver.get('solutions', 0)} substitutions"
                )
        skolem = scenarios.get("skolem_chase")
        # render whenever there is a speedup to report OR a divergence to
        # flag — an inconsistent run must never lose its warning just
        # because the ratio came out falsy
        if isinstance(skolem, Mapping) and (
            skolem.get("speedup_vs_pre_change")
            or skolem.get("all_consistent") is False
        ):
            chase_plan = skolem.get("chase_plan", {})
            lines.append(
                f"skolem_chase: semi-naive plans "
                f"{skolem.get('speedup_vs_pre_change') or '?'}x faster than the naive loop "
                f"({chase_plan.get('rounds', 0)} delta rounds, "
                f"max delta {chase_plan.get('max_delta', 0)}, "
                f"{chase_plan.get('probes', 0)} probes / "
                f"{chase_plan.get('probe_hits', 0)} hits)"
                + ("" if skolem.get("all_consistent") else " (INCONSISTENT!)")
            )
        guarded = scenarios.get("guarded_oracle")
        if isinstance(guarded, Mapping) and (
            guarded.get("speedup_vs_pre_change")
            or guarded.get("all_consistent") is False
        ):
            chase_plan = guarded.get("chase_plan", {})
            lines.append(
                f"guarded_oracle: dirty-type worklist "
                f"{guarded.get('speedup_vs_pre_change') or '?'}x faster than tree re-walks "
                f"({chase_plan.get('types_closed', 0)} types closed, "
                f"{chase_plan.get('types_reused', 0)} reused, "
                f"{chase_plan.get('rounds', 0)} delta rounds, "
                f"{chase_plan.get('imports', 0)} imports)"
                + ("" if guarded.get("all_consistent") else " (INCONSISTENT!)")
            )
        serving = scenarios.get("serving_throughput")
        # render whenever there is a speedup to report OR stale answers to
        # flag — a stale-serving run must never lose its warning
        if isinstance(serving, Mapping) and (
            serving.get("speedup_batched_vs_sequential")
            or serving.get("stale_free") is False
        ):
            block = _stats_block(serving, "serving")
            latency = _stats_block(serving, "latency_ms")
            lines.append(
                f"serving_throughput: {serving.get('clients', '?')} concurrent "
                f"clients {serving.get('speedup_batched_vs_sequential') or '?'}x "
                f"faster than sequential serve-batch "
                f"(p50 {latency.get('p50', '?')}ms / p99 {latency.get('p99', '?')}ms, "
                f"cache hit rate {block.get('cache_hit_rate', 0.0)}, "
                f"{block.get('batches', 0)} batches, "
                f"dedup saved {block.get('dedup_saved', 0)})"
                + ("" if serving.get("stale_free", True) else " (STALE ANSWERS!)")
            )
            resilience = _stats_block(serving, "resilience")
            degraded = {
                key: resilience.get(key, 0)
                for key in ("worker_restarts", "task_retries", "timeouts", "sheds")
                if resilience.get(key)
            }
            if degraded:
                # a perf measurement that needed recoveries is a degraded
                # measurement; say so right next to the number it taints
                lines.append(
                    "  (measurement degraded by recoveries: "
                    + ", ".join(f"{key}={value}" for key, value in degraded.items())
                    + ")"
                )
        demand = scenarios.get("demand_queries")
        # render whenever there is a speedup to report OR a divergence to
        # flag — a disagreeing demand run must never lose its warning
        if isinstance(demand, Mapping) and (
            demand.get("speedup_demand_vs_materialized")
            or demand.get("agreement") is False
        ):
            magic = _stats_block(demand, "magic")
            lines.append(
                f"demand_queries: goal-directed (magic sets) answering "
                f"{demand.get('speedup_demand_vs_materialized') or '?'}x faster "
                f"than cold full materialization over {demand.get('queries', 0)} "
                f"bound point queries ({magic.get('adorned_rules', 0)} adorned "
                f"rules, {magic.get('magic_facts', 0)} magic facts, "
                f"{magic.get('predicates_touched', 0)}/"
                f"{magic.get('predicates_total', 0)} predicates touched)"
                + ("" if demand.get("agreement", True) else " (DISAGREEMENT!)")
            )
        store_rows = []
        for name in (
            "end_to_end",
            "incremental_updates",
            "churn",
            "demand_queries",
        ):
            scenario = scenarios.get(name)
            if not isinstance(scenario, Mapping):
                continue
            block = _stats_block(scenario, "fact_store")
            if not block.get("rows"):
                continue
            store_rows.append(
                [
                    name,
                    block.get("stores", ""),
                    block.get("term_table_size", ""),
                    block.get("rows", ""),
                    block.get("index_entries", ""),
                    block.get("index_memory_bytes", ""),
                    f"{block.get('encode_calls', 0)}/"
                    f"{block.get('decode_calls', 0)}",
                ]
            )
        if store_rows:
            lines.append(
                "Fact-store (ID-encoded) stats\n"
                + format_table(
                    [
                        "Scenario",
                        "Stores",
                        "Terms",
                        "Rows",
                        "Idx entries",
                        "Idx bytes",
                        "Enc/dec calls",
                    ],
                    store_rows,
                )
            )
        segments = (
            _stats_block(demand, "kb_segments")
            if isinstance(demand, Mapping)
            else {}
        )
        if segments:
            lines.append(
                f"kb_segments: {segments.get('file_bytes', 0)} bytes on disk, "
                f"{segments.get('predicates_loaded', 0)}/"
                f"{segments.get('total_predicates', 0)} predicate segments "
                f"decoded ({segments.get('load_wall_seconds', 0.0)}s) after one "
                f"cold demand answer"
            )
    status_changes = payload.get("scenario_status_vs_baseline")
    if isinstance(status_changes, Mapping):
        for name, change in sorted(status_changes.items()):
            lines.append(
                f"{name}: status changed vs baseline "
                f"({change.get('baseline')} -> {change.get('current')}); "
                "wall times not compared"
            )
    interning = payload.get("interning", {})
    if isinstance(interning, Mapping) and "overall" in interning:
        overall = interning["overall"]
        lines.append(
            f"interning: {overall.get('hits', 0)} hits / "
            f"{overall.get('misses', 0)} misses "
            f"(hit rate {overall.get('hit_rate', 0.0)})"
        )
    baseline = payload.get("speedup_vs_baseline_file")
    if isinstance(baseline, Mapping):
        if "error" in baseline:
            lines.append(f"baseline comparison FAILED: {baseline['error']}")
        else:
            rendered = ", ".join(
                f"{name} {ratio}x" for name, ratio in baseline.items()
            )
            lines.append(f"speedup vs baseline file: {rendered or '(no data)'}")
    return "\n".join(lines)


def step_summary_markdown(payload: Mapping[str, object]) -> str:
    """Render a BENCH capture as GitHub-flavoured markdown for CI summaries.

    Written to ``$GITHUB_STEP_SUMMARY`` by the perf-smoke workflow so PR
    reviewers see per-scenario wall times, the speedup versus the merge-base
    capture, and the join-plan statistics without downloading the artifact.
    """
    lines: List[str] = [
        "## Perf capture "
        f"({payload.get('scale', '?')} scale, "
        f"{payload.get('wall_seconds', 0.0):.2f}s total)",
        "",
        "| Scenario | Wall (s) | Speedup vs baseline |",
        "| --- | ---: | ---: |",
    ]
    scenarios = payload.get("scenarios", {})
    baseline = payload.get("speedup_vs_baseline_file")
    ratios = baseline if isinstance(baseline, Mapping) else {}
    status_changes = payload.get("scenario_status_vs_baseline")
    status_changes = status_changes if isinstance(status_changes, Mapping) else {}
    if isinstance(scenarios, Mapping):
        for name, scenario in scenarios.items():
            if not isinstance(scenario, Mapping):
                continue
            ratio = ratios.get(name)
            change = status_changes.get(name)
            if isinstance(change, Mapping):
                rendered_ratio = (
                    f"{change.get('baseline')} → {change.get('current')}"
                )
            elif isinstance(ratio, (int, float)):
                rendered_ratio = f"{ratio}x"
            else:
                rendered_ratio = "–"
            lines.append(
                f"| {name} | {scenario.get('wall_seconds', '')} | {rendered_ratio} |"
            )
        incremental = scenarios.get("incremental_updates")
        if isinstance(incremental, Mapping) and incremental.get(
            "speedup_delta_vs_full"
        ):
            lines.append("")
            lines.append(
                f"Delta propagation is **{incremental['speedup_delta_vs_full']}x** "
                "faster than full re-materialization"
                + ("." if incremental.get("all_consistent") else " (INCONSISTENT!).")
            )
        churn = scenarios.get("churn")
        if isinstance(churn, Mapping) and (
            churn.get("speedup_churn_vs_full")
            or churn.get("all_consistent") is False
        ):
            lines.append("")
            lines.append(
                f"Interleaved add/retract churn is "
                f"**{churn.get('speedup_churn_vs_full') or '?'}x** faster than full "
                "re-materialization"
                + ("." if churn.get("all_consistent") else " (INCONSISTENT!).")
            )
            dred = churn.get("dred")
            if isinstance(dred, Mapping):
                lines.append("")
                lines.append("### DRed stats (churn)")
                lines.append("")
                lines.append(
                    "| Retracted | Overdeleted | Rederived | Net removed | Rounds |"
                )
                lines.append("| ---: | ---: | ---: | ---: | ---: |")
                lines.append(
                    f"| {dred.get('retracted', 0)} "
                    f"| {dred.get('overdeleted', 0)} "
                    f"| {dred.get('rederived', 0)} "
                    f"| {dred.get('net_removed', 0)} "
                    f"| {dred.get('rounds', 0)} |"
                )
        join_rows = []
        for name in ("end_to_end", "incremental_updates"):
            scenario = scenarios.get(name)
            if not isinstance(scenario, Mapping):
                continue
            join_plan = scenario.get("join_plan")
            if isinstance(join_plan, Mapping) and join_plan.get("batches"):
                join_rows.append(
                    f"| {name} | {join_plan.get('batches', 0)} "
                    f"| {join_plan.get('probes', 0)} "
                    f"| {join_plan.get('probe_hits', 0)} "
                    f"| {join_plan.get('hit_rate', 0.0)} "
                    f"| {join_plan.get('plans_compiled', 0)} |"
                )
        if join_rows:
            lines.append("")
            lines.append("### Join-plan stats")
            lines.append("")
            lines.append(
                "| Scenario | Batches | Probes | Hits | Facts/probe | Plans |"
            )
            lines.append("| --- | ---: | ---: | ---: | ---: | ---: |")
            lines.extend(join_rows)
        chase_rows = []
        for name in ("skolem_chase", "guarded_oracle"):
            scenario = scenarios.get(name)
            if not isinstance(scenario, Mapping):
                continue
            chase_plan = scenario.get("chase_plan")
            if not isinstance(chase_plan, Mapping):
                continue
            # an empty block is skipped — unless the run diverged, which
            # must stay visible in the summary regardless
            if not chase_plan.get("rounds") and scenario.get("all_consistent"):
                continue
            speedup = scenario.get("speedup_vs_pre_change")
            if name == "skolem_chase":
                detail = (
                    f"{chase_plan.get('probes', 0)} probes / "
                    f"{chase_plan.get('probe_hits', 0)} hits"
                )
            else:
                detail = (
                    f"{chase_plan.get('types_closed', 0)} types closed / "
                    f"{chase_plan.get('types_reused', 0)} reused"
                )
            chase_rows.append(
                f"| {name} | {chase_plan.get('rounds', 0)} "
                f"| {chase_plan.get('max_delta', 0)} "
                f"| {detail} "
                f"| {f'{speedup}x' if speedup else '–'}"
                + ("" if scenario.get("all_consistent") else " (INCONSISTENT!)")
                + " |"
            )
        if chase_rows:
            lines.append("")
            lines.append("### Chase-plan stats")
            lines.append("")
            lines.append(
                "| Scenario | Delta rounds | Max delta | Detail "
                "| Speedup vs pre-change |"
            )
            lines.append("| --- | ---: | ---: | --- | ---: |")
            lines.extend(chase_rows)
        serving = scenarios.get("serving_throughput")
        if isinstance(serving, Mapping):
            block = _stats_block(serving, "serving")
            latency = _stats_block(serving, "latency_ms")
            # older captures have no serving scenario blocks; render only
            # what is actually there so baselines keep comparing
            if block or latency:
                speedup = serving.get("speedup_batched_vs_sequential")
                lines.append("")
                lines.append("### Serving stats")
                lines.append("")
                lines.append(
                    "| Clients | Requests | p50 (ms) | p99 (ms) | Cache hit rate "
                    "| Batches | Dedup saved | Speedup vs sequential |"
                )
                lines.append(
                    "| ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: |"
                )
                lines.append(
                    f"| {serving.get('clients', '–')} "
                    f"| {serving.get('requests', '–')} "
                    f"| {latency.get('p50', '–')} "
                    f"| {latency.get('p99', '–')} "
                    f"| {block.get('cache_hit_rate', '–')} "
                    f"| {block.get('batches', '–')} "
                    f"| {block.get('dedup_saved', '–')} "
                    f"| {f'{speedup}x' if speedup else '–'}"
                    + ("" if serving.get("stale_free", True) else " (STALE ANSWERS!)")
                    + " |"
                )
                histogram = block.get("batch_size_histogram")
                if isinstance(histogram, Mapping) and histogram:
                    rendered = ", ".join(
                        f"{size}×{count}"
                        for size, count in sorted(
                            histogram.items(), key=lambda pair: int(pair[0])
                        )
                    )
                    lines.append("")
                    lines.append(f"Batch-size histogram (size×count): {rendered}")
                resilience = _stats_block(serving, "resilience")
                if resilience:
                    lines.append("")
                    lines.append(
                        "Resilience: "
                        f"{resilience.get('worker_restarts', 0)} worker restarts, "
                        f"{resilience.get('task_retries', 0)} task retries, "
                        f"{resilience.get('timeouts', 0)} timeouts, "
                        f"{resilience.get('sheds', 0)} shed requests, "
                        f"{resilience.get('checkpoints', 0)} checkpoints"
                    )
        demand = scenarios.get("demand_queries")
        if isinstance(demand, Mapping):
            magic = _stats_block(demand, "magic")
            # older captures have no demand scenario; render only when the
            # magic block is actually there so baselines keep comparing
            if magic:
                speedup = demand.get("speedup_demand_vs_materialized")
                lines.append("")
                lines.append("### Magic-set stats (demand_queries)")
                lines.append("")
                lines.append(
                    "| Queries | Adorned rules | Magic rules | Magic facts "
                    "| Predicates touched | Speedup vs materialized |"
                )
                lines.append("| ---: | ---: | ---: | ---: | ---: | ---: |")
                lines.append(
                    f"| {demand.get('queries', '–')} "
                    f"| {magic.get('adorned_rules', '–')} "
                    f"| {magic.get('magic_rules', '–')} "
                    f"| {magic.get('magic_facts', '–')} "
                    f"| {magic.get('predicates_touched', '–')}/"
                    f"{magic.get('predicates_total', '–')} "
                    f"| {f'{speedup}x' if speedup else '–'}"
                    + ("" if demand.get("agreement", True) else " (DISAGREEMENT!)")
                    + " |"
                )
        store_rows = []
        for name in (
            "end_to_end",
            "incremental_updates",
            "churn",
            "demand_queries",
        ):
            scenario = scenarios.get(name)
            if not isinstance(scenario, Mapping):
                continue
            block = _stats_block(scenario, "fact_store")
            # older captures have no fact_store block; render only what is
            # actually there so baselines keep comparing
            if not block.get("rows"):
                continue
            store_rows.append(
                f"| {name} | {block.get('stores', '–')} "
                f"| {block.get('term_table_size', '–')} "
                f"| {block.get('rows', '–')} "
                f"| {block.get('index_entries', '–')} "
                f"| {block.get('index_memory_bytes', '–')} "
                f"| {block.get('encode_calls', '–')}/"
                f"{block.get('decode_calls', '–')} |"
            )
        if store_rows:
            lines.append("")
            lines.append("### Fact-store stats (ID-encoded)")
            lines.append("")
            lines.append(
                "| Scenario | Stores | Terms | Rows | Index entries "
                "| Index bytes | Encode/decode |"
            )
            lines.append("| --- | ---: | ---: | ---: | ---: | ---: | ---: |")
            lines.extend(store_rows)
        segments = (
            _stats_block(demand, "kb_segments")
            if isinstance(demand, Mapping)
            else {}
        )
        if segments:
            lines.append("")
            lines.append(
                f"KB segment tier: {segments.get('file_bytes', '–')} bytes "
                f"on disk, **{segments.get('predicates_loaded', '–')}/"
                f"{segments.get('total_predicates', '–')}** predicate "
                f"segments decoded "
                f"({segments.get('load_wall_seconds', '–')}s) after one cold "
                "demand answer."
            )
    if isinstance(baseline, Mapping) and "error" in baseline:
        lines.append("")
        lines.append(f"**Baseline comparison failed:** {baseline['error']}")
    lines.append("")
    return "\n".join(lines)


def full_figure_report(records: Sequence[RunRecord], title: str) -> str:
    """The complete Figure 4/5-style report: summary, cactus plot, pairwise matrices."""
    return "\n\n".join(
        [
            figure_summary_report(records, title),
            cactus_report(records),
            pairwise_report(records),
        ]
    )
