"""Benchmark harness: runners, aggregation, and paper-style report rendering."""

from .runner import BenchmarkRunner, RunRecord, run_on_tgds, run_perf_capture
from .reports import (
    cactus_report,
    end_to_end_report,
    figure_summary_report,
    format_table,
    full_figure_report,
    pairwise_report,
    perf_report,
    table1_report,
)
_LAZY_PERFCAPTURE = ("capture_perf", "compare_captures", "write_bench_json")


def __getattr__(name: str):
    # perfcapture pulls in the whole rewriting + workloads stack; defer that
    # import until one of its entry points is actually requested
    if name in _LAZY_PERFCAPTURE:
        from . import perfcapture

        return getattr(perfcapture, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


from .stats import (
    AlgorithmSummary,
    both_fail_matrix,
    cactus_series,
    group_by_algorithm,
    inputs_unprocessed_by_all,
    pairwise_slowdown_matrix,
    summarize,
    summarize_algorithm,
)

__all__ = [
    "AlgorithmSummary",
    "BenchmarkRunner",
    "RunRecord",
    "both_fail_matrix",
    "cactus_report",
    "capture_perf",
    "compare_captures",
    "perf_report",
    "run_perf_capture",
    "write_bench_json",
    "cactus_series",
    "end_to_end_report",
    "figure_summary_report",
    "format_table",
    "full_figure_report",
    "group_by_algorithm",
    "inputs_unprocessed_by_all",
    "pairwise_report",
    "pairwise_slowdown_matrix",
    "run_on_tgds",
    "summarize",
    "summarize_algorithm",
    "table1_report",
]
