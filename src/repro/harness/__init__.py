"""Benchmark harness: runners, aggregation, and paper-style report rendering."""

from .runner import BenchmarkRunner, RunRecord, run_on_tgds
from .reports import (
    cactus_report,
    end_to_end_report,
    figure_summary_report,
    format_table,
    full_figure_report,
    pairwise_report,
    table1_report,
)
from .stats import (
    AlgorithmSummary,
    both_fail_matrix,
    cactus_series,
    group_by_algorithm,
    inputs_unprocessed_by_all,
    pairwise_slowdown_matrix,
    summarize,
    summarize_algorithm,
)

__all__ = [
    "AlgorithmSummary",
    "BenchmarkRunner",
    "RunRecord",
    "both_fail_matrix",
    "cactus_report",
    "cactus_series",
    "end_to_end_report",
    "figure_summary_report",
    "format_table",
    "full_figure_report",
    "group_by_algorithm",
    "inputs_unprocessed_by_all",
    "pairwise_report",
    "pairwise_slowdown_matrix",
    "run_on_tgds",
    "summarize",
    "summarize_algorithm",
    "table1_report",
]
