"""Aggregation of benchmark run records into the paper's summary statistics.

Figures 4 and 5 report, per algorithm: the number of processed inputs, the
maximum processed input size, the maximum output size, the maximum blow-up,
the maximum number of body atoms in the output, the number of inputs with
blow-up at least 1.5, and the min/max/avg/median times over processed inputs.
They also show a cactus plot (number of inputs processed within a given time)
and two pairwise matrices: how often algorithm Y was at least ten times slower
than algorithm X, and how often both failed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .runner import RunRecord


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    length = len(ordered)
    if length == 0:
        return 0.0
    if length % 2 == 1:
        return ordered[length // 2]
    return (ordered[length // 2 - 1] + ordered[length // 2]) / 2


@dataclass
class AlgorithmSummary:
    """Per-algorithm block of the Figure 4/5 statistics tables."""

    algorithm: str
    processed_inputs: int
    failed_inputs: int
    unsupported_inputs: int
    max_processed_input_size: int
    max_output_size: int
    max_blowup: float
    max_body_atoms: int
    blowup_at_least_1_5: int
    min_time: float
    max_time: float
    avg_time: float
    median_time: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "processed_inputs": self.processed_inputs,
            "failed_inputs": self.failed_inputs,
            "unsupported_inputs": self.unsupported_inputs,
            "max_processed_input_size": self.max_processed_input_size,
            "max_output_size": self.max_output_size,
            "max_blowup": round(self.max_blowup, 2),
            "max_body_atoms": self.max_body_atoms,
            "blowup_at_least_1_5": self.blowup_at_least_1_5,
            "min_time": round(self.min_time, 3),
            "max_time": round(self.max_time, 3),
            "avg_time": round(self.avg_time, 3),
            "median_time": round(self.median_time, 3),
        }


def group_by_algorithm(records: Iterable[RunRecord]) -> Dict[str, List[RunRecord]]:
    grouped: Dict[str, List[RunRecord]] = defaultdict(list)
    for record in records:
        grouped[record.algorithm].append(record)
    return dict(grouped)


def summarize_algorithm(algorithm: str, records: Sequence[RunRecord]) -> AlgorithmSummary:
    """Aggregate the records of a single algorithm."""
    processed = [record for record in records if record.succeeded]
    failed = [record for record in records if record.timed_out]
    unsupported = [record for record in records if record.unsupported]
    times = [record.elapsed_seconds for record in processed]
    return AlgorithmSummary(
        algorithm=algorithm,
        processed_inputs=len(processed),
        failed_inputs=len(failed),
        unsupported_inputs=len(unsupported),
        max_processed_input_size=max(
            (record.input_size for record in processed), default=0
        ),
        max_output_size=max((record.output_size for record in processed), default=0),
        max_blowup=max((record.blowup for record in processed), default=0.0),
        max_body_atoms=max(
            (record.max_body_atoms for record in processed), default=0
        ),
        blowup_at_least_1_5=sum(1 for record in processed if record.blowup >= 1.5),
        min_time=min(times, default=0.0),
        max_time=max(times, default=0.0),
        avg_time=sum(times) / len(times) if times else 0.0,
        median_time=_median(times),
    )


def summarize(records: Iterable[RunRecord]) -> Tuple[AlgorithmSummary, ...]:
    """Aggregate all records into per-algorithm summaries."""
    grouped = group_by_algorithm(records)
    return tuple(
        summarize_algorithm(algorithm, algorithm_records)
        for algorithm, algorithm_records in sorted(grouped.items())
    )


def cactus_series(records: Iterable[RunRecord]) -> Dict[str, List[Tuple[int, float]]]:
    """Cactus-plot series per algorithm: (inputs processed, cumulative-time-sorted time).

    The x-th point of a series is ``(x, t)`` where ``t`` is the time of the
    x-th fastest successfully processed input — exactly the series plotted in
    Figures 4 and 5.
    """
    series: Dict[str, List[Tuple[int, float]]] = {}
    for algorithm, algorithm_records in group_by_algorithm(records).items():
        times = sorted(
            record.elapsed_seconds
            for record in algorithm_records
            if record.succeeded
        )
        series[algorithm] = [(index + 1, value) for index, value in enumerate(times)]
    return series


def pairwise_slowdown_matrix(
    records: Iterable[RunRecord], factor: float = 10.0
) -> Dict[Tuple[str, str], int]:
    """Matrix counting inputs where ``time(Y)/time(X) ≥ factor`` (both processed).

    A timed-out Y against a processed X also counts, since Y was at least an
    order of magnitude slower in the paper's reading of the plot.
    """
    by_key: Dict[Tuple[str, str], RunRecord] = {
        (record.algorithm, record.input_id): record for record in records
    }
    algorithms = sorted({record.algorithm for record in by_key.values()})
    inputs = sorted({record.input_id for record in by_key.values()})
    matrix: Dict[Tuple[str, str], int] = {}
    for slower in algorithms:
        for faster in algorithms:
            if slower == faster:
                continue
            count = 0
            for input_id in inputs:
                record_slow = by_key.get((slower, input_id))
                record_fast = by_key.get((faster, input_id))
                if record_slow is None or record_fast is None:
                    continue
                if not record_fast.succeeded:
                    continue
                if record_slow.unsupported:
                    continue
                if record_slow.timed_out:
                    count += 1
                    continue
                baseline = max(record_fast.elapsed_seconds, 1e-9)
                if record_slow.elapsed_seconds / baseline >= factor:
                    count += 1
            matrix[(slower, faster)] = count
    return matrix


def both_fail_matrix(records: Iterable[RunRecord]) -> Dict[Tuple[str, str], int]:
    """Matrix counting inputs on which both algorithms failed (timed out)."""
    by_key: Dict[Tuple[str, str], RunRecord] = {
        (record.algorithm, record.input_id): record for record in records
    }
    algorithms = sorted({record.algorithm for record in by_key.values()})
    inputs = sorted({record.input_id for record in by_key.values()})
    matrix: Dict[Tuple[str, str], int] = {}
    for left in algorithms:
        for right in algorithms:
            count = 0
            for input_id in inputs:
                record_left = by_key.get((left, input_id))
                record_right = by_key.get((right, input_id))
                if record_left is None or record_right is None:
                    continue
                if record_left.timed_out and record_right.timed_out:
                    count += 1
            matrix[(left, right)] = count
    return matrix


def inputs_unprocessed_by_all(
    records: Iterable[RunRecord], algorithms: Optional[Sequence[str]] = None
) -> Tuple[str, ...]:
    """Inputs on which every considered algorithm timed out."""
    grouped: Dict[str, List[RunRecord]] = defaultdict(list)
    for record in records:
        if algorithms is None or record.algorithm in algorithms:
            grouped[record.input_id].append(record)
    return tuple(
        input_id
        for input_id, input_records in sorted(grouped.items())
        if input_records and all(record.timed_out for record in input_records)
    )
