"""Benchmark runner: executes rewriting algorithms over benchmark inputs.

Each run records the measurements reported in Figures 4 and 5 of the paper:
wall-clock rewriting time, input size (TGDs after head normalization for the
TGD-based algorithms, rules after Skolemization for the Skolemized ones),
output size (number of Datalog rules), size blow-up, and the maximum number
of body atoms in the output.  Runs that exceed the time budget are marked as
timeouts, matching the paper's ten-minute-limit methodology at a smaller
scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..dl.kaon2_baseline import Kaon2Baseline, UnsupportedArityError
from ..logic.tgd import TGD
from ..rewriting.base import RewritingResult, RewritingSettings
from ..rewriting.rewriter import rewrite
from ..workloads.ontology_suite import BenchmarkInput


@dataclass
class RunRecord:
    """One (algorithm, input) measurement."""

    algorithm: str
    input_id: str
    input_size: int
    output_size: int
    max_body_atoms: int
    elapsed_seconds: float
    timed_out: bool
    unsupported: bool = False

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and not self.unsupported

    @property
    def blowup(self) -> float:
        if self.input_size == 0:
            return 0.0
        return self.output_size / self.input_size

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "input_id": self.input_id,
            "input_size": self.input_size,
            "output_size": self.output_size,
            "max_body_atoms": self.max_body_atoms,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "timed_out": self.timed_out,
            "unsupported": self.unsupported,
        }


@dataclass
class BenchmarkRunner:
    """Runs a set of algorithms over a suite of benchmark inputs."""

    timeout_seconds: float = 20.0
    settings: Optional[RewritingSettings] = None
    include_kaon2: bool = True

    def _settings_with_timeout(self) -> RewritingSettings:
        base = self.settings or RewritingSettings()
        return RewritingSettings(
            use_subsumption=base.use_subsumption,
            exact_subsumption=base.exact_subsumption,
            use_lookahead=base.use_lookahead,
            timeout_seconds=self.timeout_seconds,
            max_clauses=base.max_clauses,
        )

    # ------------------------------------------------------------------
    # single runs
    # ------------------------------------------------------------------
    def run_algorithm(
        self, algorithm: str, benchmark_input: BenchmarkInput
    ) -> RunRecord:
        """Run one of our algorithms (or the KAON2 baseline) on one input."""
        settings = self._settings_with_timeout()
        start = time.monotonic()
        try:
            if algorithm.lower() == "kaon2":
                baseline = Kaon2Baseline(settings=settings)
                result = baseline.rewrite_ontology(benchmark_input.ontology)
            else:
                result = rewrite(
                    benchmark_input.tgds, algorithm=algorithm, settings=settings
                )
        except UnsupportedArityError:
            return RunRecord(
                algorithm=algorithm,
                input_id=benchmark_input.identifier,
                input_size=0,
                output_size=0,
                max_body_atoms=0,
                elapsed_seconds=time.monotonic() - start,
                timed_out=False,
                unsupported=True,
            )
        elapsed = time.monotonic() - start
        return RunRecord(
            algorithm=algorithm,
            input_id=benchmark_input.identifier,
            input_size=result.statistics.input_size,
            output_size=result.output_size,
            max_body_atoms=result.max_body_atoms(),
            elapsed_seconds=elapsed,
            timed_out=not result.completed,
        )

    # ------------------------------------------------------------------
    # suite runs
    # ------------------------------------------------------------------
    def run_suite(
        self,
        inputs: Sequence[BenchmarkInput],
        algorithms: Sequence[str] = ("exbdr", "skdr", "hypdr"),
        progress: Optional[Callable[[str, str], None]] = None,
    ) -> Tuple[RunRecord, ...]:
        """Run every algorithm on every input."""
        algorithm_list = list(algorithms)
        if self.include_kaon2 and "kaon2" not in [a.lower() for a in algorithm_list]:
            algorithm_list.append("kaon2")
        records: List[RunRecord] = []
        for benchmark_input in inputs:
            for algorithm in algorithm_list:
                if progress is not None:
                    progress(algorithm, benchmark_input.identifier)
                records.append(self.run_algorithm(algorithm, benchmark_input))
        return tuple(records)


def run_perf_capture(
    smoke: bool = False,
    output_path: "str | None" = "BENCH_rewriting.json",
    baseline: "Optional[dict]" = None,
    scenarios: "Optional[Sequence[str]]" = None,
):
    """Perf-capture mode: run the recorded benchmark scenarios and persist JSON.

    The single composition of :mod:`repro.harness.perfcapture` used by the
    CLI (``python -m repro perf``) and available programmatically: capture
    (optionally only the ``scenarios`` named — ``perf --scenario``), compare
    against a previously recorded payload, write the JSON (unless
    ``output_path`` is ``None``), return the payload.
    """
    from .perfcapture import (
        capture_perf,
        compare_captures,
        compare_scenario_statuses,
        write_bench_json,
    )

    payload = capture_perf(smoke=smoke, scenarios=scenarios)
    if baseline is not None:
        payload["speedup_vs_baseline_file"] = compare_captures(payload, baseline)
        status_changes = compare_scenario_statuses(payload, baseline)
        if status_changes:
            payload["scenario_status_vs_baseline"] = status_changes
    if output_path is not None:
        write_bench_json(payload, output_path)
    return payload


def run_on_tgds(
    tgds: Iterable[TGD],
    algorithm: str,
    timeout_seconds: float = 20.0,
    settings: Optional[RewritingSettings] = None,
) -> Tuple[RewritingResult, float]:
    """Run one algorithm on raw TGDs; return the result and elapsed seconds."""
    base = settings or RewritingSettings()
    effective = RewritingSettings(
        use_subsumption=base.use_subsumption,
        exact_subsumption=base.exact_subsumption,
        use_lookahead=base.use_lookahead,
        timeout_seconds=timeout_seconds,
        max_clauses=base.max_clauses,
    )
    start = time.monotonic()
    result = rewrite(tuple(tgds), algorithm=algorithm, settings=effective)
    return result, time.monotonic() - start
