"""Σ fingerprinting and the in-process compile cache.

The fingerprint reuses the interned canonical clause forms introduced for
subsumption (PR 1): every TGD is brought into canonical-variable form
(:func:`repro.logic.normal_form.normalize_tgd`, cached on the interned
clause, so re-fingerprinting a Σ that was fingerprinted before does no
clause work) and the sorted canonical clause strings are hashed.  Two Σs
that differ only in clause order or variable naming therefore fingerprint
identically and share one cache entry; the cached rewriting is semantically
equivalent for both (same certain answers on every instance).

Only *completed* rewritings are cached — a run cut short by a timeout or a
clause limit is not a function of Σ alone.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..logic.normal_form import normalize_tgd
from ..logic.tgd import TGD
from ..rewriting.base import RewritingResult, RewritingSettings
from ..rewriting.rewriter import rewrite

#: bound on the number of cached rewritings; oldest entries fall out first
COMPILE_CACHE_LIMIT = 128

_CacheKey = Tuple[str, str, RewritingSettings]
_cache: Dict[_CacheKey, RewritingResult] = {}
_hits = 0
_misses = 0


def sigma_fingerprint(tgds: Iterable[TGD]) -> str:
    """A canonical hex fingerprint of a finite set of GTGDs.

    Invariant under clause order and variable naming: clauses are normalized
    to canonical-variable form and sorted before hashing.
    """
    canonical = sorted(str(normalize_tgd(tgd)) for tgd in tgds)
    digest = hashlib.sha256("\n".join(canonical).encode("utf-8"))
    return digest.hexdigest()


def cached_rewrite(
    tgds: Sequence[TGD],
    algorithm: str = "hypdr",
    settings: Optional[RewritingSettings] = None,
) -> Tuple[RewritingResult, str]:
    """Rewrite Σ, serving repeated compilations from the in-process cache.

    Returns ``(result, fingerprint)``.  The cache key is the Σ fingerprint
    together with the algorithm name and the (hashable) settings, so the
    same Σ compiled under different knobs is measured separately.
    """
    global _hits, _misses
    effective = settings if settings is not None else RewritingSettings()
    fingerprint = sigma_fingerprint(tgds)
    key = (fingerprint, algorithm.lower(), effective)
    cached = _cache.get(key)
    if cached is not None:
        _hits += 1
        return cached, fingerprint
    _misses += 1
    result = rewrite(tgds, algorithm=algorithm, settings=settings)
    if result.completed:
        while len(_cache) >= COMPILE_CACHE_LIMIT:
            _cache.pop(next(iter(_cache)))
        _cache[key] = result
    return result, fingerprint


def compile_cache_stats() -> Dict[str, object]:
    """Hit/miss counters and current size of the compile caches.

    ``engine_cache_entries`` counts the shared plan-compiled Datalog engines
    (:func:`repro.datalog.engine.compiled_engine`) — the downstream half of
    "compile once, serve many": the rewriting cache avoids re-saturating Σ,
    the engine cache avoids re-compiling its join plans.
    """
    from ..datalog.engine import _ENGINE_CACHE

    total = _hits + _misses
    return {
        "entries": len(_cache),
        "hits": _hits,
        "misses": _misses,
        "hit_rate": round(_hits / total, 4) if total else 0.0,
        "engine_cache_entries": len(_ENGINE_CACHE),
    }


def clear_compile_cache() -> None:
    """Empty the compile caches (rewritings and compiled engines) and zero
    the counters (tests, benchmarks)."""
    from ..datalog.engine import clear_engine_cache

    global _hits, _misses
    _cache.clear()
    clear_engine_cache()
    _hits = 0
    _misses = 0
