"""Σ fingerprinting and the in-process compile cache.

The fingerprint reuses the interned canonical clause forms introduced for
subsumption (PR 1): every TGD is brought into canonical-variable form
(:func:`repro.logic.normal_form.normalize_tgd`, cached on the interned
clause, so re-fingerprinting a Σ that was fingerprinted before does no
clause work) and the sorted canonical clause strings are hashed.  Two Σs
that differ only in clause order or variable naming therefore fingerprint
identically and share one cache entry; the cached rewriting is semantically
equivalent for both (same certain answers on every instance).

Only *completed* rewritings are cached — a run cut short by a timeout or a
clause limit is not a function of Σ alone.

Concurrency and fork semantics
------------------------------

All cache state (the entry dict and the hit/miss counters) is guarded by a
module-level lock, so the cache is safe to share between the serving
front end's threads (``asyncio.to_thread`` executors, the TCP handler) and
any other thread compiling knowledge bases.  The lock is *not* held while a
missing Σ is rewritten — saturation can take seconds, and serializing
compilations behind one lock would defeat the worker tier; two threads
racing to compile the same Σ simply both compile it and the second insert
wins (idempotent: both results are equivalent functions of Σ).

The cache is **per-process** by design.  The serving worker pool
(:mod:`repro.serve.workers`) relies on that: with the ``fork`` start method
children inherit a snapshot of the parent's warm cache (a free warm start);
with ``spawn`` they start cold and warm up independently.  Either way no
synchronization crosses the process boundary — workers report their own
cache counters through :func:`compile_cache_stats`, which the server's
stats endpoint aggregates per pid.  To keep fork safe, the lock is only
ever held for quick dict operations (never across a rewrite), so a child
forked mid-operation cannot inherit a lock that guards a half-finished
compilation.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..logic.normal_form import normalize_tgd
from ..logic.tgd import TGD
from ..rewriting.base import RewritingResult, RewritingSettings
from ..rewriting.rewriter import rewrite

#: bound on the number of cached rewritings; oldest entries fall out first
COMPILE_CACHE_LIMIT = 128

_CacheKey = Tuple[str, str, RewritingSettings]
_cache: Dict[_CacheKey, RewritingResult] = {}
_hits = 0
_misses = 0
#: guards ``_cache``/``_hits``/``_misses``; held only for dict/counter ops,
#: never across a rewrite (see the module docstring's fork notes)
_cache_lock = threading.RLock()


def sigma_fingerprint(tgds: Iterable[TGD]) -> str:
    """A canonical hex fingerprint of a finite set of GTGDs.

    Invariant under clause order and variable naming: clauses are normalized
    to canonical-variable form and sorted before hashing.
    """
    canonical = sorted(str(normalize_tgd(tgd)) for tgd in tgds)
    digest = hashlib.sha256("\n".join(canonical).encode("utf-8"))
    return digest.hexdigest()


def cached_rewrite(
    tgds: Sequence[TGD],
    algorithm: str = "hypdr",
    settings: Optional[RewritingSettings] = None,
) -> Tuple[RewritingResult, str]:
    """Rewrite Σ, serving repeated compilations from the in-process cache.

    Returns ``(result, fingerprint)``.  The cache key is the Σ fingerprint
    together with the algorithm name and the (hashable) settings, so the
    same Σ compiled under different knobs is measured separately.

    Thread-safe; concurrent misses on the same key may compile twice (the
    lock is deliberately not held during saturation) but converge on one
    equivalent entry.
    """
    global _hits, _misses
    effective = settings if settings is not None else RewritingSettings()
    fingerprint = sigma_fingerprint(tgds)
    key = (fingerprint, algorithm.lower(), effective)
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _hits += 1
            return cached, fingerprint
        _misses += 1
    result = rewrite(tgds, algorithm=algorithm, settings=settings)
    if result.completed:
        with _cache_lock:
            while len(_cache) >= COMPILE_CACHE_LIMIT:
                _cache.pop(next(iter(_cache)))
            _cache[key] = result
    return result, fingerprint


def compile_cache_stats() -> Dict[str, object]:
    """Hit/miss counters and current size of the compile caches.

    ``engine_cache_entries`` counts the shared plan-compiled Datalog engines
    (:func:`repro.datalog.engine.compiled_engine`) — the downstream half of
    "compile once, serve many": the rewriting cache avoids re-saturating Σ,
    the engine cache avoids re-compiling its join plans.

    Counters are per-process (see the module docstring); the serving stats
    endpoint reports one block per worker pid.
    """
    from ..datalog.engine import _ENGINE_CACHE

    with _cache_lock:
        hits, misses, entries = _hits, _misses, len(_cache)
    total = hits + misses
    return {
        "entries": entries,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / total, 4) if total else 0.0,
        "engine_cache_entries": len(_ENGINE_CACHE),
    }


def clear_compile_cache() -> None:
    """Empty the compile caches (rewritings and compiled engines) and zero
    the counters (tests, benchmarks)."""
    from ..datalog.engine import clear_engine_cache

    global _hits, _misses
    with _cache_lock:
        _cache.clear()
        _hits = 0
        _misses = 0
    clear_engine_cache()
