"""Persistent compiled knowledge bases: save/load and the compile cache.

The expensive part of the pipeline — saturating Σ into ``rew(Σ)`` — depends
only on Σ, so compiled :class:`~repro.api.KnowledgeBase` objects are cached
and serialized as first-class artifacts:

* :mod:`.format` persists a compiled knowledge base to a **versioned JSON
  file** and restores it in another process;
* :mod:`.cache` fingerprints Σ (order- and variable-name-insensitively, via
  the interned canonical clause forms) and keeps an in-process cache of
  compiled rewritings, so repeated ``KnowledgeBase.compile`` calls under the
  same Σ are free.

KB file format (``repro-kb/v2``)
--------------------------------

A saved knowledge base is one JSON object with the fields

``format``
    The literal string ``"repro-kb/v2"``.  ``"repro-kb/v1"`` files are still
    accepted and upgraded in memory (:func:`.format.upgrade_v1_payload` —
    v2 only *adds* the optional ``fact_segments`` block, every shared field
    is unchanged); other values are rejected, and the major version is
    bumped whenever a field changes meaning.
``algorithm``
    The inference rule that produced the rewriting (``"ExbDR"``, ...).
``sigma_fingerprint``
    Hex fingerprint of the canonicalized Σ (:func:`.cache.sigma_fingerprint`);
    used for cache keying and re-verified against the decoded TGDs on load.
``content_digest``
    SHA-256 over the serialized ``tgds`` *and* ``datalog_rules`` sections;
    re-verified on load so a tampered or truncated rewriting is rejected.
    Both integrity fields are mandatory.
``tgds``
    The input GTGDs as a list of structural atom encodings (see below).
``datalog_rules``
    The rewriting ``rew(Σ)`` as a list of ``{"body": [atom...], "head": atom}``
    objects.
``statistics``
    The :class:`~repro.rewriting.base.SaturationStatistics` counters of the
    compiling run.
``worked_off_size`` / ``completed``
    The remaining :class:`~repro.rewriting.base.RewritingResult` fields.
``fact_segments`` *(optional, v2)*
    A columnar base-instance payload: ``terms`` (constant names in term-ID
    order) and ``predicates`` mapping ``"Name/arity"`` to ``{"arity",
    "count", "rows"}`` where ``rows`` is the flat space-separated term-ID
    string of all rows.  Loaded lazily per predicate
    (:class:`.format.FactSegments`) so demand queries touch only the
    segments their magic program probes.

Atoms are encoded as ``{"p": predicate_name, "args": [term...]}`` and terms
as ``{"v": name}`` (variable) or ``{"c": name}`` (constant) — input GTGDs and
Datalog rewritings are function-free, so no other term kinds occur.
"""

from .cache import (
    cached_rewrite,
    clear_compile_cache,
    compile_cache_stats,
    sigma_fingerprint,
)
from .format import (
    KB_FORMAT_V1,
    KB_FORMAT_VERSION,
    SUPPORTED_KB_FORMATS,
    FactSegments,
    KnowledgeBaseFormatError,
    knowledge_base_payload,
    load_knowledge_base_payload,
    load_knowledge_base_payload_with_segments,
    parse_kb_text,
    read_kb_file,
    read_kb_file_with_segments,
    upgrade_v1_payload,
    write_kb_file,
)

__all__ = [
    "KB_FORMAT_V1",
    "KB_FORMAT_VERSION",
    "SUPPORTED_KB_FORMATS",
    "FactSegments",
    "KnowledgeBaseFormatError",
    "cached_rewrite",
    "clear_compile_cache",
    "compile_cache_stats",
    "knowledge_base_payload",
    "load_knowledge_base_payload",
    "load_knowledge_base_payload_with_segments",
    "parse_kb_text",
    "read_kb_file",
    "read_kb_file_with_segments",
    "sigma_fingerprint",
    "upgrade_v1_payload",
    "write_kb_file",
]
