"""Versioned JSON serialization of compiled knowledge bases.

See the package docstring for the ``repro-kb/v1`` field reference.  The
functions here work on the persistence payload; the user-facing entry points
are :meth:`repro.api.KnowledgeBase.save` and
:meth:`repro.api.KnowledgeBase.load`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.rules import Rule
from ..logic.terms import Constant, Term, Variable
from ..logic.tgd import TGD
from ..rewriting.base import RewritingResult, SaturationStatistics
from .cache import sigma_fingerprint

#: the file format emitted by :func:`write_kb_file` and required on load
KB_FORMAT_VERSION = "repro-kb/v1"


class KnowledgeBaseFormatError(ValueError):
    """Raised when a KB file is malformed or has an unsupported version."""


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _term_to_json(term: Term) -> Dict[str, str]:
    if isinstance(term, Variable):
        return {"v": term.name}
    if isinstance(term, Constant):
        return {"c": term.name}
    raise KnowledgeBaseFormatError(
        f"only variables and constants can be persisted, got {term!r}"
    )


def _atom_to_json(atom: Atom) -> Dict[str, object]:
    return {
        "p": atom.predicate.name,
        "args": [_term_to_json(arg) for arg in atom.args],
    }


def _tgd_to_json(tgd: TGD) -> Dict[str, object]:
    return {
        "body": [_atom_to_json(atom) for atom in tgd.body],
        "head": [_atom_to_json(atom) for atom in tgd.head],
    }


def _rule_to_json(rule: Rule) -> Dict[str, object]:
    return {
        "body": [_atom_to_json(atom) for atom in rule.body],
        "head": _atom_to_json(rule.head),
    }


def _content_digest(tgds_json: object, rules_json: object) -> str:
    """Integrity digest over the logical content (Σ and rew(Σ)) of a KB file."""
    canonical = json.dumps(
        {"tgds": tgds_json, "datalog_rules": rules_json},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def knowledge_base_payload(
    tgds: Sequence[TGD], rewriting: RewritingResult
) -> Dict[str, object]:
    """The ``repro-kb/v1`` JSON payload for a compiled knowledge base."""
    tgds_json = [_tgd_to_json(tgd) for tgd in tgds]
    rules_json = [_rule_to_json(rule) for rule in rewriting.datalog_rules]
    return {
        "format": KB_FORMAT_VERSION,
        "algorithm": rewriting.algorithm,
        "sigma_fingerprint": sigma_fingerprint(tgds),
        "content_digest": _content_digest(tgds_json, rules_json),
        "tgds": tgds_json,
        "datalog_rules": rules_json,
        "statistics": rewriting.statistics.as_dict(),
        "worked_off_size": rewriting.worked_off_size,
        "completed": rewriting.completed,
    }


def write_kb_file(
    path: "str | Path", tgds: Sequence[TGD], rewriting: RewritingResult
) -> Path:
    """Serialize a compiled knowledge base; returns the path written."""
    target = Path(path)
    payload = knowledge_base_payload(tgds, rewriting)
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _term_from_json(data: object) -> Term:
    if isinstance(data, dict):
        if "v" in data:
            return Variable(data["v"])
        if "c" in data:
            return Constant(data["c"])
    raise KnowledgeBaseFormatError(f"malformed term encoding: {data!r}")


def _atom_from_json(data: object) -> Atom:
    if not isinstance(data, dict) or "p" not in data or "args" not in data:
        raise KnowledgeBaseFormatError(f"malformed atom encoding: {data!r}")
    args = tuple(_term_from_json(arg) for arg in data["args"])
    return Atom(Predicate(data["p"], len(args)), args)


def _tgd_from_json(data: object) -> TGD:
    if not isinstance(data, dict) or "body" not in data or "head" not in data:
        raise KnowledgeBaseFormatError(f"malformed TGD encoding: {data!r}")
    return TGD(
        tuple(_atom_from_json(atom) for atom in data["body"]),
        tuple(_atom_from_json(atom) for atom in data["head"]),
    )


def _rule_from_json(data: object) -> Rule:
    if not isinstance(data, dict) or "body" not in data or "head" not in data:
        raise KnowledgeBaseFormatError(f"malformed rule encoding: {data!r}")
    return Rule(
        tuple(_atom_from_json(atom) for atom in data["body"]),
        _atom_from_json(data["head"]),
    )


def _statistics_from_json(data: object) -> SaturationStatistics:
    if not isinstance(data, dict):
        raise KnowledgeBaseFormatError(f"malformed statistics block: {data!r}")
    statistics = SaturationStatistics()
    for field_name in (
        "input_size",
        "derived",
        "inferences",
        "discarded_tautology",
        "discarded_forward",
        "discarded_duplicate",
        "removed_backward",
        "processed",
        "retained",
        "forward_checks",
        "forward_candidates",
        "backward_candidates",
        "elapsed_seconds",
        "timed_out",
    ):
        if field_name in data:
            setattr(statistics, field_name, data[field_name])
    return statistics


def load_knowledge_base_payload(
    payload: object,
) -> Tuple[Tuple[TGD, ...], RewritingResult]:
    """Decode a ``repro-kb/v1`` payload into ``(tgds, rewriting)``.

    Both integrity fields are mandatory and re-verified: the content digest
    covers Σ *and* the Datalog rewriting (the part queries actually use), and
    the Σ fingerprint is recomputed from the decoded TGDs.  Any mismatch
    means the file was edited or corrupted and is rejected.
    """
    if not isinstance(payload, dict):
        raise KnowledgeBaseFormatError("KB file does not contain a JSON object")
    version = payload.get("format")
    if version != KB_FORMAT_VERSION:
        raise KnowledgeBaseFormatError(
            f"unsupported KB format {version!r}; this build reads {KB_FORMAT_VERSION!r}"
        )
    digest = payload.get("content_digest")
    if digest is None:
        raise KnowledgeBaseFormatError("KB file is missing content_digest")
    if digest != _content_digest(
        payload.get("tgds", []), payload.get("datalog_rules", [])
    ):
        raise KnowledgeBaseFormatError(
            "content_digest does not match the stored TGDs/rules; file corrupted?"
        )
    tgds = tuple(_tgd_from_json(tgd) for tgd in payload.get("tgds", ()))
    recorded = payload.get("sigma_fingerprint")
    if recorded is None:
        raise KnowledgeBaseFormatError("KB file is missing sigma_fingerprint")
    if recorded != sigma_fingerprint(tgds):
        raise KnowledgeBaseFormatError(
            "sigma_fingerprint does not match the stored TGDs; file corrupted?"
        )
    rules = tuple(
        _rule_from_json(rule) for rule in payload.get("datalog_rules", ())
    )
    rewriting = RewritingResult(
        algorithm=payload.get("algorithm", "?"),
        datalog_rules=rules,
        statistics=_statistics_from_json(payload.get("statistics", {})),
        worked_off_size=payload.get("worked_off_size", len(rules)),
        completed=payload.get("completed", True),
    )
    return tgds, rewriting


def parse_kb_text(text: str) -> Tuple[Tuple[TGD, ...], RewritingResult]:
    """Decode the text of a KB file (callers that already read it from disk)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise KnowledgeBaseFormatError(f"KB file is not valid JSON: {exc}") from exc
    return load_knowledge_base_payload(payload)


def read_kb_file(path: "str | Path") -> Tuple[Tuple[TGD, ...], RewritingResult]:
    """Read and decode a KB file written by :func:`write_kb_file`."""
    return parse_kb_text(Path(path).read_text(encoding="utf-8"))
