"""Versioned JSON serialization of compiled knowledge bases.

See the package docstring for the field reference.  The functions here work
on the persistence payload; the user-facing entry points are
:meth:`repro.api.KnowledgeBase.save` and :meth:`repro.api.KnowledgeBase.load`.

``repro-kb/v2`` extends ``repro-kb/v1`` with an optional columnar
``fact_segments`` block: a compact term table (the constants appearing in
the stored facts, in ID order) plus one relation segment per predicate whose
rows are flat term-ID sequences.  Segments are decoded *per predicate on
first access* (:class:`FactSegments`), so a KB whose fact payload is larger
than what a session wants in memory can serve a bound demand query by
materializing only the predicates the magic-sets program actually probes.
``repro-kb/v1`` files keep loading through a documented compatibility shim
(:func:`upgrade_v1_payload`) that rewrites the payload to the v2 in-memory
form — v1 simply has no fact segments.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.rules import Rule
from ..logic.terms import Constant, Term, Variable
from ..logic.tgd import TGD
from ..rewriting.base import RewritingResult, SaturationStatistics
from .cache import sigma_fingerprint

#: the file format emitted by :func:`write_kb_file`
KB_FORMAT_VERSION = "repro-kb/v2"

#: the previous format, still accepted on load via :func:`upgrade_v1_payload`
KB_FORMAT_V1 = "repro-kb/v1"

#: every format :func:`load_knowledge_base_payload` accepts
SUPPORTED_KB_FORMATS = (KB_FORMAT_V1, KB_FORMAT_VERSION)


class KnowledgeBaseFormatError(ValueError):
    """Raised when a KB file is malformed or has an unsupported version."""


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _term_to_json(term: Term) -> Dict[str, str]:
    if isinstance(term, Variable):
        return {"v": term.name}
    if isinstance(term, Constant):
        return {"c": term.name}
    raise KnowledgeBaseFormatError(
        f"only variables and constants can be persisted, got {term!r}"
    )


def _atom_to_json(atom: Atom) -> Dict[str, object]:
    return {
        "p": atom.predicate.name,
        "args": [_term_to_json(arg) for arg in atom.args],
    }


def _tgd_to_json(tgd: TGD) -> Dict[str, object]:
    return {
        "body": [_atom_to_json(atom) for atom in tgd.body],
        "head": [_atom_to_json(atom) for atom in tgd.head],
    }


def _rule_to_json(rule: Rule) -> Dict[str, object]:
    return {
        "body": [_atom_to_json(atom) for atom in rule.body],
        "head": _atom_to_json(rule.head),
    }


def _content_digest(tgds_json: object, rules_json: object) -> str:
    """Integrity digest over the logical content (Σ and rew(Σ)) of a KB file."""
    canonical = json.dumps(
        {"tgds": tgds_json, "datalog_rules": rules_json},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fact_segments_payload(facts: Iterable[Atom]) -> Dict[str, object]:
    """The ``fact_segments`` block: a term table plus per-predicate segments.

    Terms are mapped to dense IDs in first-appearance order over the facts
    sorted textually (so the payload is deterministic); each predicate
    segment stores its rows as one flat space-separated ID string — ``arity
    × count`` integers — which is both compact on disk and cheap to split
    lazily on load.  Only constants can appear in persisted facts, mirroring
    :func:`_term_to_json`.
    """
    term_ids: Dict[Term, int] = {}
    names: List[str] = []
    rows_by_predicate: Dict[Predicate, List[int]] = {}
    counts: Dict[Predicate, int] = {}
    for fact in sorted(set(facts), key=str):
        if not fact.is_ground:
            raise KnowledgeBaseFormatError(
                f"only ground facts can be persisted, got {fact!r}"
            )
        flat = rows_by_predicate.setdefault(fact.predicate, [])
        counts[fact.predicate] = counts.get(fact.predicate, 0) + 1
        for arg in fact.args:
            if not isinstance(arg, Constant):
                raise KnowledgeBaseFormatError(
                    f"only constants can be persisted in facts, got {arg!r}"
                )
            term_id = term_ids.get(arg)
            if term_id is None:
                term_id = len(names)
                term_ids[arg] = term_id
                names.append(arg.name)
            flat.append(term_id)
    predicates = {
        f"{predicate.name}/{predicate.arity}": {
            "arity": predicate.arity,
            "count": counts[predicate],
            "rows": " ".join(map(str, rows)),
        }
        for predicate, rows in rows_by_predicate.items()
    }
    return {"terms": names, "predicates": predicates}


def knowledge_base_payload(
    tgds: Sequence[TGD],
    rewriting: RewritingResult,
    facts: Optional[Iterable[Atom]] = None,
) -> Dict[str, object]:
    """The ``repro-kb/v2`` JSON payload for a compiled knowledge base.

    ``facts``, when given, are persisted as the columnar ``fact_segments``
    block (see :func:`fact_segments_payload`).
    """
    tgds_json = [_tgd_to_json(tgd) for tgd in tgds]
    rules_json = [_rule_to_json(rule) for rule in rewriting.datalog_rules]
    payload: Dict[str, object] = {
        "format": KB_FORMAT_VERSION,
        "algorithm": rewriting.algorithm,
        "sigma_fingerprint": sigma_fingerprint(tgds),
        "content_digest": _content_digest(tgds_json, rules_json),
        "tgds": tgds_json,
        "datalog_rules": rules_json,
        "statistics": rewriting.statistics.as_dict(),
        "worked_off_size": rewriting.worked_off_size,
        "completed": rewriting.completed,
    }
    if facts is not None:
        payload["fact_segments"] = fact_segments_payload(facts)
    return payload


def write_kb_file(
    path: "str | Path",
    tgds: Sequence[TGD],
    rewriting: RewritingResult,
    facts: Optional[Iterable[Atom]] = None,
) -> Path:
    """Serialize a compiled knowledge base; returns the path written."""
    target = Path(path)
    payload = knowledge_base_payload(tgds, rewriting, facts)
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _term_from_json(data: object) -> Term:
    if isinstance(data, dict):
        if "v" in data:
            return Variable(data["v"])
        if "c" in data:
            return Constant(data["c"])
    raise KnowledgeBaseFormatError(f"malformed term encoding: {data!r}")


def _atom_from_json(data: object) -> Atom:
    if not isinstance(data, dict) or "p" not in data or "args" not in data:
        raise KnowledgeBaseFormatError(f"malformed atom encoding: {data!r}")
    args = tuple(_term_from_json(arg) for arg in data["args"])
    return Atom(Predicate(data["p"], len(args)), args)


def _tgd_from_json(data: object) -> TGD:
    if not isinstance(data, dict) or "body" not in data or "head" not in data:
        raise KnowledgeBaseFormatError(f"malformed TGD encoding: {data!r}")
    return TGD(
        tuple(_atom_from_json(atom) for atom in data["body"]),
        tuple(_atom_from_json(atom) for atom in data["head"]),
    )


def _rule_from_json(data: object) -> Rule:
    if not isinstance(data, dict) or "body" not in data or "head" not in data:
        raise KnowledgeBaseFormatError(f"malformed rule encoding: {data!r}")
    return Rule(
        tuple(_atom_from_json(atom) for atom in data["body"]),
        _atom_from_json(data["head"]),
    )


def _statistics_from_json(data: object) -> SaturationStatistics:
    if not isinstance(data, dict):
        raise KnowledgeBaseFormatError(f"malformed statistics block: {data!r}")
    statistics = SaturationStatistics()
    for field_name in (
        "input_size",
        "derived",
        "inferences",
        "discarded_tautology",
        "discarded_forward",
        "discarded_duplicate",
        "removed_backward",
        "processed",
        "retained",
        "forward_checks",
        "forward_candidates",
        "backward_candidates",
        "elapsed_seconds",
        "timed_out",
    ):
        if field_name in data:
            setattr(statistics, field_name, data[field_name])
    return statistics


class FactSegments:
    """Lazily decoded per-predicate fact segments from a ``repro-kb/v2`` KB.

    The constructor only parses segment *headers* (predicate names, arities,
    row counts) and keeps the flat ID strings verbatim; a predicate's rows
    are split and decoded to interned atoms on first access and cached.
    ``predicates_loaded`` counts the segments actually decoded so far and
    ``load_wall_seconds`` accumulates the wall time spent decoding — the
    perf harness surfaces both, and the lazy-loading test asserts a bound
    demand query finishes with ``predicates_loaded < total_predicates``.
    """

    __slots__ = (
        "_term_names",
        "_terms",
        "_segments",
        "_decoded",
        "total_facts",
        "load_wall_seconds",
    )

    def __init__(self, payload: object) -> None:
        start = time.perf_counter()
        if not isinstance(payload, dict):
            raise KnowledgeBaseFormatError(
                f"malformed fact_segments block: {payload!r}"
            )
        names = payload.get("terms", [])
        if not isinstance(names, list) or not all(
            isinstance(name, str) for name in names
        ):
            raise KnowledgeBaseFormatError("fact_segments.terms must be a string list")
        self._term_names: List[str] = names
        self._terms: List[Optional[Constant]] = [None] * len(names)
        self._segments: Dict[Predicate, Dict[str, object]] = {}
        self._decoded: Dict[Predicate, Tuple[Atom, ...]] = {}
        self.total_facts = 0
        blocks = payload.get("predicates", {})
        if not isinstance(blocks, dict):
            raise KnowledgeBaseFormatError(
                "fact_segments.predicates must be an object"
            )
        for key, block in blocks.items():
            if (
                not isinstance(block, dict)
                or not isinstance(block.get("arity"), int)
                or not isinstance(block.get("count"), int)
                or not isinstance(block.get("rows"), str)
            ):
                raise KnowledgeBaseFormatError(
                    f"malformed fact segment {key!r}: {block!r}"
                )
            name, _, arity_text = key.rpartition("/")
            if not name or arity_text != str(block["arity"]):
                raise KnowledgeBaseFormatError(
                    f"fact segment key {key!r} does not match arity {block['arity']!r}"
                )
            self._segments[Predicate(name, block["arity"])] = block
            self.total_facts += block["count"]
        self.load_wall_seconds = time.perf_counter() - start

    @property
    def total_predicates(self) -> int:
        return len(self._segments)

    @property
    def predicates_loaded(self) -> int:
        return len(self._decoded)

    def predicates(self) -> Tuple[Predicate, ...]:
        return tuple(self._segments)

    def _decode_term(self, term_id: int) -> Constant:
        try:
            term = self._terms[term_id]
        except IndexError:
            raise KnowledgeBaseFormatError(
                f"fact segment references unknown term ID {term_id}"
            ) from None
        if term is None:
            term = Constant(self._term_names[term_id])
            self._terms[term_id] = term
        return term

    def relation(self, predicate: Predicate) -> Tuple[Atom, ...]:
        """The facts of one predicate, decoded on first access and cached."""
        atoms = self._decoded.get(predicate)
        if atoms is not None:
            return atoms
        block = self._segments.get(predicate)
        if block is None:
            return ()
        start = time.perf_counter()
        count: int = block["count"]  # type: ignore[assignment]
        arity = predicate.arity
        if arity == 0:
            atoms = (Atom(predicate, ()),) * (1 if count else 0)
        else:
            ids = [int(token) for token in block["rows"].split()]  # type: ignore[union-attr]
            if len(ids) != arity * count:
                raise KnowledgeBaseFormatError(
                    f"fact segment {predicate.name}/{arity} declares {count} rows "
                    f"but stores {len(ids)} IDs"
                )
            decode = self._decode_term
            atoms = tuple(
                Atom(
                    predicate,
                    tuple(decode(ids[base + offset]) for offset in range(arity)),
                )
                for base in range(0, len(ids), arity)
            )
        self._decoded[predicate] = atoms
        self.load_wall_seconds += time.perf_counter() - start
        return atoms

    def facts_for(self, predicates: Iterable[Predicate]) -> Iterator[Atom]:
        """Facts of the given predicates only — the demand-query hook."""
        for predicate in predicates:
            yield from self.relation(predicate)

    def all_facts(self) -> Iterator[Atom]:
        return self.facts_for(self._segments)

    def __iter__(self) -> Iterator[Atom]:
        return self.all_facts()

    def __len__(self) -> int:
        return self.total_facts

    def stats(self) -> Dict[str, object]:
        """The ``kb_segments`` stats block surfaced by the perf harness."""
        return {
            "total_predicates": self.total_predicates,
            "predicates_loaded": self.predicates_loaded,
            "total_facts": self.total_facts,
            "load_wall_seconds": round(self.load_wall_seconds, 6),
        }


def upgrade_v1_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Compatibility shim: rewrite a ``repro-kb/v1`` payload to v2 form.

    v1 and v2 share every rule/TGD/integrity field; v2 only *adds* the
    optional ``fact_segments`` block.  Upgrading therefore amounts to
    restamping the format — the integrity digests cover the logical content,
    not the format string, so they survive unchanged.  The input is not
    mutated; re-saving an upgraded KB writes a clean v2 file (round-trip
    ``v1 → load → save → v2 → load`` is covered by the persistence tests).
    """
    upgraded = dict(payload)
    upgraded["format"] = KB_FORMAT_VERSION
    return upgraded


def load_knowledge_base_payload(
    payload: object,
) -> Tuple[Tuple[TGD, ...], RewritingResult]:
    """Decode a KB payload (v1 or v2) into ``(tgds, rewriting)``.

    Both integrity fields are mandatory and re-verified: the content digest
    covers Σ *and* the Datalog rewriting (the part queries actually use), and
    the Σ fingerprint is recomputed from the decoded TGDs.  Any mismatch
    means the file was edited or corrupted and is rejected.  Fact segments
    are ignored here; use :func:`load_knowledge_base_payload_with_segments`
    to get them too.
    """
    tgds, rewriting, _ = load_knowledge_base_payload_with_segments(payload)
    return tgds, rewriting


def load_knowledge_base_payload_with_segments(
    payload: object,
) -> Tuple[Tuple[TGD, ...], RewritingResult, Optional[FactSegments]]:
    """Decode a KB payload including its lazy fact segments (if present)."""
    if not isinstance(payload, dict):
        raise KnowledgeBaseFormatError("KB file does not contain a JSON object")
    version = payload.get("format")
    if version not in SUPPORTED_KB_FORMATS:
        raise KnowledgeBaseFormatError(
            f"unsupported KB format {version!r}; this build reads "
            f"{', '.join(repr(fmt) for fmt in SUPPORTED_KB_FORMATS)}"
        )
    if version == KB_FORMAT_V1:
        payload = upgrade_v1_payload(payload)
    digest = payload.get("content_digest")
    if digest is None:
        raise KnowledgeBaseFormatError("KB file is missing content_digest")
    if digest != _content_digest(
        payload.get("tgds", []), payload.get("datalog_rules", [])
    ):
        raise KnowledgeBaseFormatError(
            "content_digest does not match the stored TGDs/rules; file corrupted?"
        )
    tgds = tuple(_tgd_from_json(tgd) for tgd in payload.get("tgds", ()))
    recorded = payload.get("sigma_fingerprint")
    if recorded is None:
        raise KnowledgeBaseFormatError("KB file is missing sigma_fingerprint")
    if recorded != sigma_fingerprint(tgds):
        raise KnowledgeBaseFormatError(
            "sigma_fingerprint does not match the stored TGDs; file corrupted?"
        )
    rules = tuple(
        _rule_from_json(rule) for rule in payload.get("datalog_rules", ())
    )
    rewriting = RewritingResult(
        algorithm=payload.get("algorithm", "?"),
        datalog_rules=rules,
        statistics=_statistics_from_json(payload.get("statistics", {})),
        worked_off_size=payload.get("worked_off_size", len(rules)),
        completed=payload.get("completed", True),
    )
    segments_json = payload.get("fact_segments")
    segments = None if segments_json is None else FactSegments(segments_json)
    return tgds, rewriting, segments


def parse_kb_text(text: str) -> Tuple[Tuple[TGD, ...], RewritingResult]:
    """Decode the text of a KB file (callers that already read it from disk)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise KnowledgeBaseFormatError(f"KB file is not valid JSON: {exc}") from exc
    return load_knowledge_base_payload(payload)


def read_kb_file(path: "str | Path") -> Tuple[Tuple[TGD, ...], RewritingResult]:
    """Read and decode a KB file written by :func:`write_kb_file`."""
    return parse_kb_text(Path(path).read_text(encoding="utf-8"))


def read_kb_file_with_segments(
    path: "str | Path",
) -> Tuple[Tuple[TGD, ...], RewritingResult, Optional[FactSegments]]:
    """Like :func:`read_kb_file`, also returning the lazy fact segments."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise KnowledgeBaseFormatError(f"KB file is not valid JSON: {exc}") from exc
    return load_knowledge_base_payload_with_segments(payload)
