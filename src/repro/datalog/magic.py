"""Magic-sets demand transformation for goal-directed query answering.

A materialized :class:`~repro.datalog.session.ReasoningSession` pays for the
full fixpoint of the rewriting even when a query only asks about one
constant.  This module implements the classic *magic sets* (demand)
transformation: given an existential-free conjunctive query, it rewrites the
program so that evaluation only derives facts *relevant to the query's bound
arguments*, then answers the query over that much smaller fixpoint.  The
rewritten program is ordinary Datalog, so it compiles through the existing
plan compiler and runs on the unmodified semi-naive engine.

Adornment notation
------------------

Queries supported by the rewriting approach are existential-free, so a
query atom's *bound* positions are exactly the positions holding a ground
term (in practice: a constant) and its *free* positions are the ones
holding answer variables.  An **adornment** is the string spelling this
pattern position by position — ``"bf"`` for a binary atom with a constant
in position 0, ``"ff"`` for a fully open scan, ``"b"`` for a unary point
lookup.  A *goal* is a pair ``(predicate, adornment)``; e.g. the query atom
``reach(a, ?x)`` raises the goal ``reach^bf``.

For every goal on an IDB predicate the transformation produces:

* an **adorned predicate** ``p__bf`` holding the tuples of ``p`` derivable
  under that demand pattern, defined by one *adorned rule* per original
  rule for ``p``;
* a **magic predicate** ``magic__p__bf`` over the bound positions only,
  holding the demanded bindings.  Every adorned rule is guarded by a magic
  atom over its head's bound arguments, and *magic rules* propagate demand
  left to right through rule bodies (full left-to-right sideways
  information passing: a body atom sees the head's bound variables plus
  everything bound by the atoms before it);
* a **copy rule** ``p__bf(v...) <- magic__p__bf(v_bound...), p(v...)``
  importing base facts asserted directly on ``p`` (predicates can be both
  EDB and IDB here).

An all-free goal (``"ff..."``) gets no magic predicate — its guard would be
a 0-ary always-true atom — so its adorned rules are unguarded and the
evaluation degenerates to (reachability-restricted) full materialization,
which keeps zero-constant queries correct.  Evaluating a query then means:
seed ``magic__p^α`` with the query's constants, materialize the rewritten
program over the base facts plus those seeds, and evaluate the query with
each IDB atom replaced by its adorned predicate.

Reading the ``magic`` stats counters
------------------------------------

The harness's ``demand_queries`` scenario and :class:`DemandReport` expose:

* ``adorned_rules`` / ``magic_rules`` / ``copy_rules`` — size of the
  rewritten program by rule role (how much of the program the demand
  pattern specialized);
* ``magic_facts`` — demand facts derived during evaluation (how far demand
  propagated; small is good);
* ``predicates_touched`` vs ``predicates_total`` — distinct *original*
  predicates the demand-restricted evaluation can reach, against the full
  program's predicate count.  A low ratio is the whole point: the query
  paid for a fraction of the KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.rules import Rule
from ..logic.terms import Term, Variable
from .engine import compiled_engine
from .program import DatalogProgram
from .query import ConjunctiveQuery, evaluate_query

#: A demand goal: an (original predicate, adornment string) pair.
Goal = Tuple[Predicate, str]


def atom_adornment(atom: Atom) -> str:
    """The adornment of an atom: ``b`` at ground positions, ``f`` elsewhere."""
    return "".join("b" if arg.is_ground else "f" for arg in atom.args)


def query_goals(program: DatalogProgram, query: ConjunctiveQuery) -> Tuple[Goal, ...]:
    """The goals a query raises: one per body atom on an IDB predicate."""
    idb = program.idb_predicates()
    seen: Dict[Goal, None] = {}
    for atom in query.body:
        if atom.predicate in idb:
            seen.setdefault((atom.predicate, atom_adornment(atom)), None)
    return tuple(seen)


def query_has_bound_arguments(query: ConjunctiveQuery) -> bool:
    """``True`` if some body atom carries a ground argument (a constant)."""
    return any("b" in atom_adornment(atom) for atom in query.body)


@dataclass(frozen=True)
class MagicProgram:
    """The demand transformation of a program for a fixed set of goals."""

    #: the original program the transformation was computed from
    source: DatalogProgram
    #: magic + adorned + copy rules; compiles and evaluates like any program
    program: DatalogProgram
    #: every goal reached from the seeds (requested goals plus derived ones)
    goals: Tuple[Goal, ...]
    #: goal -> adorned predicate (same arity as the original)
    adorned_predicates: Dict[Goal, Predicate]
    #: goal -> magic predicate over the bound positions; ``None`` for
    #: all-free goals (their adorned rules are unguarded)
    magic_predicates: Dict[Goal, Optional[Predicate]]
    #: ground magic facts required by rules whose demand is unconditional
    #: (a bound IDB body atom before any variable got bound)
    static_seeds: Tuple[Atom, ...]
    #: rule counts by role
    adorned_rule_count: int
    magic_rule_count: int
    copy_rule_count: int
    #: original predicates evaluable under this demand (adorned goals plus
    #: the EDB predicates their rule bodies read)
    demanded_predicates: FrozenSet[Predicate]

    def seed_facts(self, query: ConjunctiveQuery) -> Tuple[Atom, ...]:
        """Magic seed facts for a query's constants, plus the static seeds."""
        seeds: Dict[Atom, None] = dict.fromkeys(self.static_seeds)
        for atom in query.body:
            goal = (atom.predicate, atom_adornment(atom))
            magic = self.magic_predicates.get(goal)
            if magic is not None:
                bound_args = tuple(arg for arg in atom.args if arg.is_ground)
                seeds.setdefault(Atom(magic, bound_args), None)
        return tuple(seeds)

    def rewrite_query(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """The query with each IDB atom replaced by its adorned predicate."""
        body = []
        for atom in query.body:
            goal = (atom.predicate, atom_adornment(atom))
            adorned = self.adorned_predicates.get(goal)
            body.append(Atom(adorned, atom.args) if adorned is not None else atom)
        return ConjunctiveQuery(query.answer_variables, tuple(body))


class _NamePool:
    """Fresh predicate names that cannot collide with the program's own."""

    def __init__(self, program: DatalogProgram) -> None:
        self._taken: Set[str] = {pred.name for pred in program.predicates()}

    def fresh(self, base: str) -> str:
        name = base
        while name in self._taken:
            name += "_"
        self._taken.add(name)
        return name


def magic_transform(program: DatalogProgram, goals: Sequence[Goal]) -> MagicProgram:
    """Compute the magic-sets transformation of ``program`` for ``goals``.

    Results are cached per (program, goal set): answering many point queries
    with the same shape (e.g. ``reach(c, ?x)`` for varying ``c``) reuses one
    rewritten program — and, through the engine cache, one set of compiled
    join plans — with only the seed facts changing per query.
    """
    key = (program.rules, tuple(sorted(
        (pred.name, pred.arity, adornment) for pred, adornment in goals
    )))
    cached = _TRANSFORM_CACHE.get(key)
    if cached is not None:
        return cached

    idb = program.idb_predicates()
    rules_by_head = program.rules_by_head()
    names = _NamePool(program)
    adorned_predicates: Dict[Goal, Predicate] = {}
    magic_predicates: Dict[Goal, Optional[Predicate]] = {}
    adorned_rules: List[Rule] = []
    magic_rules: List[Rule] = []
    copy_rules: List[Rule] = []
    static_seeds: Dict[Atom, None] = {}
    demanded: Set[Predicate] = set()

    def declare(goal: Goal) -> Predicate:
        """Intern the adorned/magic predicates of a goal; queue it once."""
        existing = adorned_predicates.get(goal)
        if existing is not None:
            return existing
        predicate, adornment = goal
        suffix = adornment if adornment else "n"
        adorned = Predicate(names.fresh(f"{predicate.name}__{suffix}"), predicate.arity)
        adorned_predicates[goal] = adorned
        bound_count = adornment.count("b")
        if bound_count:
            magic = Predicate(
                names.fresh(f"magic__{predicate.name}__{suffix}"), bound_count
            )
        else:
            magic = None
        magic_predicates[goal] = magic
        worklist.append(goal)
        return adorned

    def magic_atom(goal: Goal, args: Tuple[Term, ...]) -> Optional[Atom]:
        magic = magic_predicates[goal]
        if magic is None:
            return None
        _, adornment = goal
        return Atom(magic, tuple(
            arg for arg, mark in zip(args, adornment) if mark == "b"
        ))

    worklist: List[Goal] = []
    for goal in goals:
        if goal[0] in idb:
            declare(goal)

    processed: Set[Goal] = set()
    while worklist:
        goal = worklist.pop()
        if goal in processed:
            continue
        processed.add(goal)
        predicate, adornment = goal
        demanded.add(predicate)
        guard = magic_atom(goal, tuple(
            Variable(f"v{i}") for i in range(predicate.arity)
        ))

        # copy rule: base facts asserted directly on the predicate satisfy
        # every demand pattern over it
        copy_vars = tuple(Variable(f"v{i}") for i in range(predicate.arity))
        copy_body = (guard,) if guard is not None else ()
        copy_rules.append(Rule(
            copy_body + (Atom(predicate, copy_vars),),
            Atom(adorned_predicates[goal], copy_vars),
        ))

        for rule in rules_by_head.get(predicate, ()):
            head_guard = magic_atom(goal, rule.head.args)
            bound: Set[Variable] = set()
            if head_guard is not None:
                bound.update(head_guard.variable_set())
            new_body: List[Atom] = [head_guard] if head_guard is not None else []
            for atom in rule.body:
                if atom.predicate in idb:
                    sub_adornment = "".join(
                        "b" if arg.is_ground or (
                            isinstance(arg, Variable) and arg in bound
                        ) else "f"
                        for arg in atom.args
                    )
                    sub_goal = (atom.predicate, sub_adornment)
                    sub_adorned = declare(sub_goal)
                    demand_head = magic_atom(sub_goal, atom.args)
                    if demand_head is not None:
                        if new_body:
                            # a demand already implied by the guard (common
                            # for linear recursion) adds nothing: skip the
                            # tautological magic rule
                            if demand_head not in new_body:
                                magic_rules.append(Rule(tuple(new_body), demand_head))
                        else:
                            # demand with no prerequisites: the bound args
                            # are all ground, so the demand is a plain fact
                            static_seeds.setdefault(demand_head, None)
                    new_body.append(Atom(sub_adorned, atom.args))
                else:
                    demanded.add(atom.predicate)
                    new_body.append(atom)
                bound.update(atom.variable_set())
            adorned_rules.append(Rule(tuple(new_body), Atom(
                adorned_predicates[goal], rule.head.args
            )))

    transformed = MagicProgram(
        source=program,
        program=DatalogProgram(magic_rules + copy_rules + adorned_rules),
        goals=tuple(sorted(
            adorned_predicates,
            key=lambda goal: (goal[0].name, goal[0].arity, goal[1]),
        )),
        adorned_predicates=adorned_predicates,
        magic_predicates=magic_predicates,
        static_seeds=tuple(static_seeds),
        adorned_rule_count=len(adorned_rules),
        magic_rule_count=len(magic_rules),
        copy_rule_count=len(copy_rules),
        demanded_predicates=frozenset(demanded),
    )
    while len(_TRANSFORM_CACHE) >= TRANSFORM_CACHE_LIMIT:
        _TRANSFORM_CACHE.pop(next(iter(_TRANSFORM_CACHE)))
    _TRANSFORM_CACHE[key] = transformed
    return transformed


_TRANSFORM_CACHE: Dict[object, MagicProgram] = {}
TRANSFORM_CACHE_LIMIT = 128


def clear_transform_cache() -> None:
    """Empty the transformation cache (tests, benchmarks)."""
    _TRANSFORM_CACHE.clear()


@dataclass(frozen=True)
class DemandReport:
    """What one demand-driven evaluation did; see the module docstring."""

    adorned_rules: int
    magic_rules: int
    copy_rules: int
    magic_facts: int
    rounds: int
    predicates_touched: int
    predicates_total: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "adorned_rules": self.adorned_rules,
            "magic_rules": self.magic_rules,
            "copy_rules": self.copy_rules,
            "magic_facts": self.magic_facts,
            "rounds": self.rounds,
            "predicates_touched": self.predicates_touched,
            "predicates_total": self.predicates_total,
        }


@dataclass(frozen=True)
class DemandAnswer:
    """Answers of a demand-driven evaluation, with its :class:`DemandReport`."""

    answers: FrozenSet[Tuple[Term, ...]]
    report: DemandReport


def demand_answer(
    program: DatalogProgram,
    base_facts: Sequence[Atom] | FrozenSet[Atom],
    query: ConjunctiveQuery,
) -> DemandAnswer:
    """Answer a query goal-directedly: transform, seed, materialize, evaluate.

    Computes the same answers as evaluating the query over the full
    materialization of ``base_facts`` under ``program`` — the magic-sets
    transformation is answer-preserving — while only deriving facts the
    query's bound arguments demand.  The transformed program is served from
    the transformation cache and the shared engine cache, so repeated
    point queries of the same shape pay only for their (small) fixpoint.
    """
    transformed = magic_transform(program, query_goals(program, query))
    engine = compiled_engine(transformed.program)
    seeds = transformed.seed_facts(query)
    if hasattr(base_facts, "facts_for"):
        # lazy fact source (repro.kb.format.FactSegments): decode only the
        # predicates this demand pattern can reach — the other segments
        # never leave their serialized form
        base = tuple(base_facts.facts_for(transformed.demanded_predicates))
    else:
        base = tuple(base_facts)
    result = engine.materialize(base + seeds)
    magic_preds = {
        pred for pred in transformed.magic_predicates.values() if pred is not None
    }
    magic_facts = sum(
        count
        for pred, count in result.store.counts_by_predicate().items()
        if pred in magic_preds
    )
    report = DemandReport(
        adorned_rules=transformed.adorned_rule_count,
        magic_rules=transformed.magic_rule_count,
        copy_rules=transformed.copy_rule_count,
        magic_facts=magic_facts,
        rounds=result.rounds,
        predicates_touched=len(transformed.demanded_predicates),
        predicates_total=len(program.predicates()),
    )
    answers = evaluate_query(transformed.rewrite_query(query), result.store)
    return DemandAnswer(answers=answers, report=report)
