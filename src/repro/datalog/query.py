"""Existential-free conjunctive queries.

The rewriting approach preserves exactly the *base facts* entailed on each
base instance, so it supports conjunctive queries where every variable is an
answer variable (Section 1).  A query is evaluated by matching its atoms into
a materialized fact store and projecting onto the answer variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from ..logic.atoms import Atom
from ..logic.terms import Term, Variable
from .engine import MaterializationResult
from .index import FactStore
from .plan import JoinPlanStats, body_supports_plan, compiled_body_plan

#: lifetime counters for top-level query evaluation (shares the join
#: machinery of the rule plans; see repro.datalog.plan)
QUERY_JOIN_STATS = JoinPlanStats()


class QueryValidationError(ValueError):
    """Raised when a query is not existential-free or otherwise malformed."""


#: the evaluation strategies a query can request; see :class:`QueryOptions`
QUERY_STRATEGIES = ("auto", "materialized", "demand")


@dataclass(frozen=True)
class QueryOptions:
    """Per-call evaluation options for ``answer``/``answer_many``.

    ``strategy`` selects how answers are computed (they are identical under
    every strategy — only the work done differs):

    * ``"materialized"`` — evaluate over the session's full materialization,
      computing it first if the session is cold.  The right choice for warm
      sessions and for batches that touch most of the KB.
    * ``"demand"`` — goal-directed evaluation via the magic-sets
      transformation (:mod:`repro.datalog.magic`): only derive facts the
      query's bound arguments demand.  The right choice for bound point
      queries on cold sessions; a query with no bound arguments degenerates
      to (reachability-restricted) full materialization in a scratch store.
    * ``"auto"`` (default) — ``demand`` when the session is cold *and* the
      query has at least one bound argument, else ``materialized``.
    """

    strategy: str = "auto"

    def __post_init__(self) -> None:
        if self.strategy not in QUERY_STRATEGIES:
            raise ValueError(
                f"unknown query strategy {self.strategy!r}; "
                f"expected one of {QUERY_STRATEGIES}"
            )


#: the default options: automatic strategy selection
DEFAULT_QUERY_OPTIONS = QueryOptions()


@dataclass(frozen=True)
class ConjunctiveQuery:
    """An existential-free conjunctive query ``ans(x) <- body``."""

    answer_variables: Tuple[Variable, ...]
    body: Tuple[Atom, ...]

    def __post_init__(self) -> None:
        body_variables = {var for atom in self.body for var in atom.variables()}
        answer_set = set(self.answer_variables)
        if len(answer_set) != len(self.answer_variables):
            raise QueryValidationError("duplicate answer variables")
        missing = answer_set - body_variables
        if missing:
            raise QueryValidationError(
                f"answer variables {sorted(v.name for v in missing)} "
                "do not occur in the query body"
            )
        existential = body_variables - answer_set
        if existential:
            raise QueryValidationError(
                "query is not existential-free; non-answer variables: "
                f"{sorted(v.name for v in existential)}"
            )

    @property
    def arity(self) -> int:
        return len(self.answer_variables)

    def __str__(self) -> str:
        head = ", ".join(f"?{var.name}" for var in self.answer_variables)
        body = ", ".join(str(atom) for atom in self.body)
        return f"ans({head}) <- {body}"


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse an existential-free conjunctive query from the textual format.

    The text is a conjunction of atoms in the parser syntax, e.g.
    ``"Equipment(?x), hasTerminal(?x, ?y)"`` (a trailing ``.`` is accepted).
    Every variable is an answer variable — the class of queries the rewriting
    approach supports — in order of first occurrence.
    """
    from ..logic.parser import parse_conjunction

    body = parse_conjunction(text)
    seen: Dict[Variable, None] = {}
    for atom in body:
        for variable in atom.variables():
            seen.setdefault(variable, None)
    return ConjunctiveQuery(tuple(seen), body)


def evaluate_query(
    query: ConjunctiveQuery,
    facts: FactStore | MaterializationResult | Iterable[Atom],
) -> FrozenSet[Tuple[Term, ...]]:
    """Evaluate the query over a set of facts; return the set of answer tuples.

    The body runs through the same compiled hash-join pipeline the engine
    uses for rule bodies (:func:`repro.datalog.plan.compiled_body_plan`);
    answers are projected straight out of the columnar match batch.  Bodies
    containing non-ground function terms (which need unification, not
    key-equality probing) fall back to tuple-at-a-time matching.
    """
    store = _as_store(facts)
    if not body_supports_plan(query.body):
        answers = set()
        for match in _match_all_fallback(query.body, store):
            answers.add(tuple(match[var] for var in query.answer_variables))
        return frozenset(answers)
    batch = compiled_body_plan(query.body).execute(store, None, QUERY_JOIN_STATS)
    if not batch.size:
        return frozenset()
    if not query.answer_variables:
        # every body atom is ground and present: one empty answer tuple
        return frozenset({()})
    # decode at the boundary: batch columns hold term IDs
    answer_columns = [
        store.terms.decode_column(batch.columns[var])
        for var in query.answer_variables
    ]
    return frozenset(zip(*answer_columns))


def boolean_query_holds(
    body: Sequence[Atom], facts: FactStore | MaterializationResult | Iterable[Atom]
) -> bool:
    """Evaluate a Boolean (variable-free) conjunctive query."""
    store = _as_store(facts)
    body = tuple(body)
    if not body_supports_plan(body):
        for _ in _match_all_fallback(body, store):
            return True
        return False
    batch = compiled_body_plan(body).execute(store, None, QUERY_JOIN_STATS)
    return batch.size > 0


def _match_all_fallback(body: Tuple[Atom, ...], store: FactStore):
    """Tuple-at-a-time matching for bodies the plan compiler cannot express."""
    from ..unification.matching import match_conjunction_into_set

    return match_conjunction_into_set(body, tuple(store))


def _as_store(facts: FactStore | MaterializationResult | Iterable[Atom]) -> FactStore:
    if isinstance(facts, FactStore):
        return facts
    if isinstance(facts, MaterializationResult):
        return facts.store
    return FactStore(facts)
