"""Datalog programs.

A Datalog rule is a function-free rule with a single head atom (equivalently,
a full TGD in head-normal form).  A Datalog program is a finite set of such
rules.  This module provides a validated container together with structural
helpers (predicate dependency graph, EDB/IDB split, simple static checks)
used by the evaluation engine and by the benchmark harness when reporting
output statistics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.rules import Rule
from ..logic.tgd import TGD


class DatalogValidationError(ValueError):
    """Raised when a rule does not qualify as a Datalog rule."""


class DatalogProgram:
    """A finite set of Datalog rules with structural accessors."""

    __slots__ = ("_rules",)

    def __init__(self, rules: Iterable[Rule | TGD] = ()) -> None:
        collected: List[Rule] = []
        seen: Set[Rule] = set()
        for rule in rules:
            converted = self._coerce(rule)
            if converted not in seen:
                seen.add(converted)
                collected.append(converted)
        self._rules: Tuple[Rule, ...] = tuple(collected)

    @staticmethod
    def _coerce(rule: Rule | TGD) -> Rule:
        if isinstance(rule, TGD):
            if not rule.is_datalog_rule:
                raise DatalogValidationError(
                    f"TGD is not a Datalog rule (non-full or multi-atom head): {rule}"
                )
            rule = Rule(rule.body, rule.head[0])
        if not isinstance(rule, Rule):
            raise DatalogValidationError(f"not a rule: {rule!r}")
        if not rule.is_skolem_free:
            raise DatalogValidationError(
                f"Datalog rules must be function-free: {rule}"
            )
        return rule

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatalogProgram):
            return NotImplemented
        return set(self._rules) == set(other._rules)

    def __repr__(self) -> str:
        return f"DatalogProgram({len(self._rules)} rules)"

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return self._rules

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def predicates(self) -> FrozenSet[Predicate]:
        """All predicates mentioned in the program."""
        result: Set[Predicate] = set()
        for rule in self._rules:
            result.add(rule.head.predicate)
            result.update(atom.predicate for atom in rule.body)
        return frozenset(result)

    def idb_predicates(self) -> FrozenSet[Predicate]:
        """Predicates occurring in some rule head (intensional predicates)."""
        return frozenset(rule.head.predicate for rule in self._rules)

    def edb_predicates(self) -> FrozenSet[Predicate]:
        """Predicates occurring only in rule bodies (extensional predicates)."""
        return self.predicates() - self.idb_predicates()

    def rules_by_head(self) -> Dict[Predicate, Tuple[Rule, ...]]:
        grouped: Dict[Predicate, List[Rule]] = defaultdict(list)
        for rule in self._rules:
            grouped[rule.head.predicate].append(rule)
        return {pred: tuple(rules) for pred, rules in grouped.items()}

    def rules_by_body_predicate(self) -> Dict[Predicate, Tuple[Rule, ...]]:
        grouped: Dict[Predicate, List[Rule]] = defaultdict(list)
        for rule in self._rules:
            for predicate in {atom.predicate for atom in rule.body}:
                grouped[predicate].append(rule)
        return {pred: tuple(rules) for pred, rules in grouped.items()}

    def dependency_graph(self) -> Dict[Predicate, FrozenSet[Predicate]]:
        """Map each head predicate to the predicates its rules depend on."""
        graph: Dict[Predicate, Set[Predicate]] = defaultdict(set)
        for rule in self._rules:
            graph[rule.head.predicate].update(atom.predicate for atom in rule.body)
        return {pred: frozenset(deps) for pred, deps in graph.items()}

    def is_recursive(self) -> bool:
        """``True`` if some predicate (transitively) depends on itself."""
        graph = self.dependency_graph()

        def reaches(start: Predicate, target: Predicate, seen: Set[Predicate]) -> bool:
            if start in seen:
                return False
            seen.add(start)
            for dep in graph.get(start, ()):
                if dep == target or reaches(dep, target, seen):
                    return True
            return False

        return any(reaches(pred, pred, set()) for pred in graph)

    # ------------------------------------------------------------------
    # statistics used in the evaluation section
    # ------------------------------------------------------------------
    def max_body_atoms(self) -> int:
        """Maximum number of body atoms over the rules ("Max. Body Atoms in Output")."""
        return max((len(rule.body) for rule in self._rules), default=0)

    def max_body_width(self) -> int:
        return max((rule.width for rule in self._rules), default=0)

    def union(self, other: "DatalogProgram") -> "DatalogProgram":
        return DatalogProgram(self._rules + other.rules)
