"""Compiled set-at-a-time query plans for semi-naive Datalog evaluation.

This module replaces tuple-at-a-time rule application (enumerate one
substitution, extend it one atom at a time, allocate a dict per extension)
with *compiled hash-join pipelines* evaluated over batched binding sets — the
classic set-oriented evaluation used by production Datalog engines such as
the RDFox system the paper relies on for its end-to-end experiment.

Plan representation
-------------------

A :class:`RulePlan` is compiled once per rule and reused across every
semi-naive round and across :meth:`ReasoningSession.add_facts` delta
propagations.  For each *pivot* (the body position restricted to the delta in
the semi-naive rewriting; ``None`` for the initial naive round and for query
evaluation) the plan holds one :class:`PlanVariant` — an ordered pipeline of
:class:`JoinStep`\\ s:

* **Atom order** is chosen at compile time by a cheap selectivity heuristic:
  the pivot (whose facts come from the small delta) runs first, then atoms
  are greedily picked to maximize ``(#bound join variables, #constant
  arguments, -#new variables)``, so every later step probes the narrowest
  available hash key.
* **Step 0** is a *scan*: the pivot atom reads the per-round delta, a
  non-pivot leading atom reads the store (narrowed through the multi-column
  key index when the atom carries constants).
* **Every later step is a hash join**: ``key_positions`` are the argument
  positions whose value is known when the step runs (constants plus
  already-bound variables); the store serves a hash index over exactly those
  columns (:meth:`FactStore.key_index`) and the step probes it once per
  binding row.  ``checks`` verify repeated *new* variables inside the atom;
  bound variables and constants need no re-checking because they are part of
  the probe key.

Binding sets flow through the pipeline as *columnar batches*
(:class:`BindingBatch`): a dict mapping each bound variable to a column of
values — not a per-tuple substitution dict — so extending ``n`` rows by a
join allocates a handful of lists instead of ``n`` dictionaries.

The columns hold **term IDs, not terms**: the store is ID-encoded
(:mod:`repro.datalog.store`), so deltas arrive as int-tuple rows, probe
keys are ints (or tuples of ints), and the pipeline never touches a term
object.  Constants in a step's key are resolved against the store's
:class:`~repro.datalog.store.TermTable` once per execution — a constant
the table has never seen cannot match any stored row, so the step
short-circuits to an empty batch.  Decoding back to interned terms happens
only at the boundaries: :meth:`RulePlan.project_head` (term-space callers)
and the query answer projection; the engine commits
:meth:`RulePlan.project_rows` output straight back into row space.

Reading the ``join_plan`` stats in BENCH_rewriting.json
-------------------------------------------------------

The perf harness (``python -m repro perf``) attaches a ``join_plan`` block to
the ``end_to_end`` and ``incremental_updates`` scenarios:

* ``batches`` — executed pipeline steps (one columnar batch per step);
* ``probes`` / ``probe_hits`` — hash-index lookups performed and the facts
  they returned; ``hit_rate`` is the average number of facts returned per
  probe (values below 1 mean many probes miss entirely — the join filters
  hard; large values mean wide fan-out);
* ``rows_emitted`` — complete body matches produced by final steps, i.e.
  rule applications evaluated set-at-a-time;
* ``empty_delta_short_circuits`` / ``empty_relation_short_circuits`` —
  variants skipped without touching the store because the pivot's delta or
  some body relation was empty;
* ``deletion_batches`` / ``deletion_rows`` — pipelines executed pivoted on
  a *deleted* delta during DRed over-deletion (:meth:`DatalogEngine.retract`)
  and the candidate-deletion rows they emitted;
* ``plans_compiled`` — distinct ``(rule, pivot)`` variants compiled over the
  engine's lifetime; this stays flat across rounds/updates because plans are
  cached and reused;
* ``plan_shapes`` — per-rule pipeline summaries such as
  ``"Reach(?x,?z) <- scan Reach | Edge[k1]"`` (``[kN]`` = hash join over an
  ``N``-column key), deduplicated with counts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.rules import Rule
from ..logic.terms import Variable
from .store import FactStore, Row


class JoinPlanStats:
    """Aggregated counters for plan execution (see the module docstring)."""

    __slots__ = (
        "batches",
        "probes",
        "probe_hits",
        "rows_emitted",
        "empty_delta_short_circuits",
        "empty_relation_short_circuits",
        "deletion_batches",
        "deletion_rows",
    )

    def __init__(self) -> None:
        self.batches = 0
        self.probes = 0
        self.probe_hits = 0
        self.rows_emitted = 0
        self.empty_delta_short_circuits = 0
        self.empty_relation_short_circuits = 0
        # DRed over-deletion traffic: pipelines run pivoted on a deleted
        # delta, and the candidate-deletion rows they emitted
        self.deletion_batches = 0
        self.deletion_rows = 0

    def merge(self, other: "JoinPlanStats") -> None:
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> Dict[str, object]:
        return self.with_hit_rate(
            {name: getattr(self, name) for name in self.__slots__}
        )

    @staticmethod
    def merge_snapshot(
        total: Dict[str, int], snapshot: Optional[Dict[str, object]]
    ) -> Dict[str, int]:
        """Sum the integer counters of a per-call snapshot into ``total``.

        Derived values such as ``hit_rate`` are skipped; recompute them over
        the summed counters with :meth:`with_hit_rate`.
        """
        if snapshot:
            for key, value in snapshot.items():
                if isinstance(value, int):
                    total[key] = total.get(key, 0) + value
        return total

    @staticmethod
    def with_hit_rate(counters: Dict[str, object]) -> Dict[str, object]:
        """Return ``counters`` with ``hit_rate`` (avg facts per probe) set."""
        probes = counters.get("probes", 0)
        counters["hit_rate"] = (
            round(counters.get("probe_hits", 0) / probes, 4) if probes else 0.0
        )
        return counters


class BindingBatch:
    """A columnar batch of binding rows: one column (list) per bound variable.

    All columns have length :attr:`size`.  Row ``r`` of the batch is the
    binding ``{var: columns[var][r]}`` — but rows are never materialized as
    dicts; steps operate directly on the columns.  Column values are term
    IDs of the executing store's :class:`~repro.datalog.store.TermTable`,
    never term objects; decode at the projection boundary.
    """

    __slots__ = ("columns", "size")

    def __init__(self, columns: Dict[Variable, List[int]], size: int) -> None:
        self.columns = columns
        self.size = size

    @classmethod
    def empty(cls) -> "BindingBatch":
        return cls({}, 0)

    @classmethod
    def unit(cls) -> "BindingBatch":
        """A single all-empty binding row (the seed of every pipeline)."""
        return cls({}, 1)


class JoinStep:
    """One pipeline step: scan (first step) or hash-join (later steps).

    ``key_positions``/``key_sources`` describe the probe key: for each keyed
    argument position, the value is either a constant known at compile time
    (``("const", term)``) or read from the named batch column
    (``("var", variable)``).  ``checks`` are ``(position, first_position)``
    pairs enforcing equality of repeated new variables within the atom.
    ``outputs`` are ``(variable, position)`` pairs extending the batch schema.
    """

    __slots__ = ("atom", "key_positions", "key_sources", "checks", "outputs")

    def __init__(
        self,
        atom: Atom,
        key_positions: Tuple[int, ...],
        key_sources: Tuple[Tuple[str, object], ...],
        checks: Tuple[Tuple[int, int], ...],
        outputs: Tuple[Tuple[Variable, int], ...],
    ) -> None:
        self.atom = atom
        self.key_positions = key_positions
        self.key_sources = key_sources
        self.checks = checks
        self.outputs = outputs

    def describe(self) -> str:
        if self.key_positions:
            return f"{self.atom.predicate.name}[k{len(self.key_positions)}]"
        return f"{self.atom.predicate.name}[scan]"


def _compile_step(atom: Atom, bound: Set[Variable]) -> JoinStep:
    """Compile one body atom given the variables bound by earlier steps."""
    key_positions: List[int] = []
    key_sources: List[Tuple[str, object]] = []
    checks: List[Tuple[int, int]] = []
    outputs: List[Tuple[Variable, int]] = []
    first_new: Dict[Variable, int] = {}
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Variable):
            if arg in bound:
                # every occurrence of a bound variable joins via the key;
                # repeats just widen the key, which only helps selectivity
                key_positions.append(position)
                key_sources.append(("var", arg))
            elif arg in first_new:
                checks.append((position, first_new[arg]))
            else:
                first_new[arg] = position
                outputs.append((arg, position))
        else:
            key_positions.append(position)
            key_sources.append(("const", arg))
    return JoinStep(
        atom,
        tuple(key_positions),
        tuple(key_sources),
        tuple(checks),
        tuple(outputs),
    )


def _order_body(body: Sequence[Atom], pivot: Optional[int]) -> Tuple[int, ...]:
    """Greedy selectivity ordering of the body atoms (compile-time, no stats).

    The pivot (delta-restricted atom) always runs first.  Each following slot
    takes the atom with the most already-bound join variables, breaking ties
    by more constant arguments, then by fewer new variables, then by body
    position (for determinism).
    """
    remaining = list(range(len(body)))
    order: List[int] = []
    bound: Set[Variable] = set()

    def const_count(index: int) -> int:
        return sum(1 for arg in body[index].args if not isinstance(arg, Variable))

    if pivot is not None:
        order.append(pivot)
        remaining.remove(pivot)
        bound.update(body[pivot].variable_set())
    while remaining:
        def score(index: int) -> Tuple[int, int, int, int]:
            atom_vars = body[index].variable_set()
            return (
                len(atom_vars & bound),
                const_count(index),
                -len(atom_vars - bound),
                -index,
            )

        best = max(remaining, key=score)
        order.append(best)
        remaining.remove(best)
        bound.update(body[best].variable_set())
    return tuple(order)


class PlanVariant:
    """An ordered pipeline of join steps for one ``(body, pivot)`` pair."""

    __slots__ = ("body", "pivot", "order", "steps")

    def __init__(self, body: Tuple[Atom, ...], pivot: Optional[int]) -> None:
        self.body = body
        self.pivot = pivot
        self.order = _order_body(body, pivot)
        steps: List[JoinStep] = []
        bound: Set[Variable] = set()
        for index in self.order:
            steps.append(_compile_step(body[index], bound))
            bound.update(body[index].variable_set())
        self.steps = tuple(steps)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        store: FactStore,
        delta_by_predicate: Optional[Dict[Predicate, List[Row]]] = None,
        stats: Optional[JoinPlanStats] = None,
    ) -> BindingBatch:
        """Run the pipeline; returns the batch of complete body matches.

        ``delta_by_predicate`` holds ID-encoded rows of the executing store
        (the engine's commit loop produces exactly this), never atoms.
        """
        # empty-delta / empty-relation short-circuit: any step with no
        # candidate facts makes the whole variant vacuous
        for position, step in zip(self.order, self.steps):
            if self.pivot is not None and position == self.pivot:
                bucket = (
                    delta_by_predicate.get(step.atom.predicate)
                    if delta_by_predicate
                    else None
                )
                if not bucket:
                    if stats is not None:
                        stats.empty_delta_short_circuits += 1
                    return BindingBatch.empty()
            elif not store.count(step.atom.predicate):
                if stats is not None:
                    stats.empty_relation_short_circuits += 1
                return BindingBatch.empty()
        batch = BindingBatch.unit()
        for position, step in zip(self.order, self.steps):
            if self.pivot is not None and position == self.pivot:
                assert delta_by_predicate is not None
                delta_rows = delta_by_predicate.get(step.atom.predicate, ())
                batch = self._join(step, store, batch, stats, delta_rows)
            else:
                batch = self._join(step, store, batch, stats, None)
            if not batch.size:
                return batch
        if stats is not None:
            stats.rows_emitted += batch.size
        return batch

    def execute_deletion(
        self,
        store: FactStore,
        deleted_by_predicate: Optional[Dict[Predicate, List[Row]]],
        stats: Optional[JoinPlanStats] = None,
    ) -> BindingBatch:
        """Run the pipeline pivoted on a *deleted* delta (DRed over-deletion).

        The join machinery is byte-for-byte the one :meth:`execute` uses for
        semi-naive addition — only the delta's meaning flips: rows emitted
        here are candidate deletions (derivations that used at least one
        deleted fact), not new derivations.  The deleted facts must still be
        present in the store when this runs; the engine commits removals
        only after every pivot of the round has executed, so joins pairing
        two same-round deletions are still found.
        """
        batch = self.execute(store, deleted_by_predicate, stats)
        if stats is not None:
            stats.deletion_batches += 1
            stats.deletion_rows += batch.size
        return batch

    @staticmethod
    def _join(
        step: JoinStep,
        store: FactStore,
        batch: BindingBatch,
        stats: Optional[JoinPlanStats],
        delta_rows: Optional[Iterable[Row]],
    ) -> BindingBatch:
        """Extend the batch with one atom: delta scan or indexed hash join.

        Everything here is in row space — delta rows, index buckets, and
        batch columns all hold term IDs of the executing store.
        """
        if stats is not None:
            stats.batches += 1
        columns = batch.columns
        checks = step.checks
        outputs = step.outputs
        lookup = store.terms.lookup
        if delta_rows is not None:
            # pivot scan: the delta is small and unindexed; filter it row by
            # row (constants and repeated variables) and cross it with the
            # batch — the pivot runs first, so the batch is the unit row.
            # Key sources on a leading scan are always constants; a constant
            # the term table has never seen matches nothing.
            sources: Optional[List[Tuple[int, int]]] = []
            for pos, (_, value) in zip(step.key_positions, step.key_sources):
                encoded = lookup(value)
                if encoded is None:
                    sources = None
                    break
                sources.append((pos, encoded))
            matched: List[Row] = []
            if sources is not None:
                for fact_row in delta_rows:
                    if any(fact_row[pos] != value for pos, value in sources):
                        continue
                    if any(fact_row[pos] != fact_row[first] for pos, first in checks):
                        continue
                    matched.append(fact_row)
            if stats is not None:
                stats.probes += max(1, batch.size)
                stats.probe_hits += len(matched)
            if not matched:
                return BindingBatch.empty()
            keep = [row for row in range(batch.size) for _ in matched]
            new_columns = {
                var: [fact_row[pos] for _ in range(batch.size) for fact_row in matched]
                for var, pos in outputs
            }
            result = {
                var: [column[row] for row in keep] for var, column in columns.items()
            }
            result.update(new_columns)
            return BindingBatch(result, len(keep))
        if not step.key_positions:
            # no bound variables or constants: cross product with the relation
            rows = [
                fact_row
                for fact_row in store.relation_rows(step.atom.predicate)
                if not any(
                    fact_row[pos] != fact_row[first] for pos, first in checks
                )
            ]
            if stats is not None:
                stats.probes += batch.size
                stats.probe_hits += len(rows) * batch.size
            if not rows:
                return BindingBatch.empty()
            keep = [row for row in range(batch.size) for _ in rows]
            result = {
                var: [column[row] for row in keep] for var, column in columns.items()
            }
            for var, pos in outputs:
                column = [fact_row[pos] for fact_row in rows]
                result[var] = column * batch.size if batch.size > 1 else column
            return BindingBatch(result, len(keep))
        size = batch.size
        probe_columns: List[Sequence[int]] = []
        for kind, value in step.key_sources:
            if kind == "const":
                encoded = lookup(value)
                if encoded is None:
                    # no stored row mentions this constant: nothing can match
                    if stats is not None:
                        stats.probes += size
                    return BindingBatch.empty()
                probe_columns.append((encoded,) * size)
            else:
                probe_columns.append(columns[value])
        index = store.key_index(step.atom.predicate, step.key_positions)
        keep: List[int] = []
        new_values: List[List[int]] = [[] for _ in outputs]
        output_positions = tuple(pos for _, pos in outputs)
        hits = 0
        if len(step.key_sources) == 1:
            keys: Iterable[object] = probe_columns[0]
        else:
            keys = zip(*probe_columns)
        for row, key in enumerate(keys):
            bucket = index.get(key)
            if not bucket:
                continue
            for fact_row in bucket:
                if checks and any(
                    fact_row[pos] != fact_row[first] for pos, first in checks
                ):
                    continue
                keep.append(row)
                for slot, pos in enumerate(output_positions):
                    new_values[slot].append(fact_row[pos])
                hits += 1
        if stats is not None:
            stats.probes += size
            stats.probe_hits += hits
        if not keep:
            return BindingBatch.empty()
        result = {var: [column[row] for row in keep] for var, column in columns.items()}
        for (var, _), values in zip(outputs, new_values):
            result[var] = values
        return BindingBatch(result, len(keep))

    def describe(self) -> str:
        if not self.steps:
            return "(empty body)"
        first, rest = self.steps[0], self.steps[1:]
        parts = [f"scan {first.atom.predicate.name}"]
        parts.extend(step.describe() for step in rest)
        return " | ".join(parts)


class RulePlan:
    """All compiled variants of one rule, plus its head projection.

    Variants are compiled lazily per pivot position and cached for the
    engine's lifetime, so a rule evaluated over thousands of rounds compiles
    each of its pivots exactly once.
    """

    __slots__ = ("rule", "_variants", "_head_sources")

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        self._variants: Dict[Optional[int], PlanVariant] = {}
        self._head_sources: Tuple[Tuple[str, object], ...] = tuple(
            ("var", arg) if isinstance(arg, Variable) else ("const", arg)
            for arg in rule.head.args
        )

    @property
    def compiled_variant_count(self) -> int:
        return len(self._variants)

    def variant(self, pivot: Optional[int]) -> PlanVariant:
        variant = self._variants.get(pivot)
        if variant is None:
            variant = PlanVariant(self.rule.body, pivot)
            self._variants[pivot] = variant
        return variant

    def project_rows(self, batch: BindingBatch, store: FactStore) -> Iterator[Row]:
        """Instantiate the head as ID-encoded rows for every match row.

        This is the engine's path: the rows feed straight back into the
        store's row layer, so no term object is touched.  Head constants
        are encoded against the store's table (appending is fine — the
        head instance is about to be stored).  Rows binding the head
        identically yield duplicates; the engine deduplicates on insertion
        exactly as the tuple-at-a-time loop did.
        """
        if not batch.size:
            return
        if not self._head_sources:
            yield ()
            return
        encode = store.terms.encode
        arg_columns = [
            batch.columns[value] if kind == "var" else (encode(value),) * batch.size
            for kind, value in self._head_sources
        ]
        yield from zip(*arg_columns)

    def project_head(self, batch: BindingBatch, store: FactStore) -> Iterator[Atom]:
        """Instantiate the head atom for every row of a match batch (decoded).

        The decode boundary for term-space callers (tests, reference
        checks); the engine itself stays in row space via
        :meth:`project_rows`.
        """
        predicate = self.rule.head.predicate
        decode = store.terms.decode_args
        for row in self.project_rows(batch, store):
            yield Atom(predicate, decode(row))

    def shape(self) -> str:
        """Compact human-readable pipeline summary for the bench JSON."""
        variant = self._variants.get(None) or next(iter(self._variants.values()), None)
        if variant is None:
            variant = self.variant(None)
        return f"{self.rule.head.predicate.name}/{self.rule.head.predicate.arity} <- {variant.describe()}"


# ----------------------------------------------------------------------
# query-plan reuse (top-level conjunctive query answering)
# ----------------------------------------------------------------------
def body_supports_plan(body: Tuple[Atom, ...]) -> bool:
    """Whether the hash-join pipeline computes this body exactly.

    Plans bind whole argument terms: every argument must be a variable or a
    ground term.  A non-ground function term such as ``f(?x)`` needs proper
    unification into the stored terms, which the probe-by-equality key index
    cannot express — those (rare, query-only) bodies take the
    tuple-at-a-time matching fallback instead.  Datalog *rule* bodies are
    validated function-free, so the engine itself never hits this.
    """
    for atom in body:
        for arg in atom.args:
            if not isinstance(arg, Variable) and not arg.is_ground:
                return False
    return True


_BODY_PLAN_CACHE: Dict[Tuple[Atom, ...], PlanVariant] = {}
_BODY_PLAN_CACHE_LIMIT = 512


def compiled_body_plan(body: Tuple[Atom, ...]) -> PlanVariant:
    """A (cached) no-pivot pipeline for a conjunctive query body.

    Query answering reuses exactly the rule-body join machinery; atoms are
    interned, so the body tuple is a cheap cache key and repeated queries
    skip compilation.
    """
    plan = _BODY_PLAN_CACHE.get(body)
    if plan is None:
        while len(_BODY_PLAN_CACHE) >= _BODY_PLAN_CACHE_LIMIT:
            _BODY_PLAN_CACHE.pop(next(iter(_BODY_PLAN_CACHE)))
        plan = PlanVariant(tuple(body), None)
        _BODY_PLAN_CACHE[body] = plan
    return plan
