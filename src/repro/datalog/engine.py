"""Semi-naive bottom-up Datalog evaluation over compiled hash-join plans.

Given a Datalog program and a base instance, :class:`DatalogEngine` computes
the *materialization*: the least set of facts containing the base instance
and closed under the rules.  Evaluation is semi-naive — in every round, each
rule is evaluated only over joins that use at least one fact derived in the
previous round — and *set-at-a-time*: each rule/pivot pair is compiled once
into a pipeline of hash joins over columnar binding batches
(:mod:`repro.datalog.plan`) instead of enumerating substitutions one tuple
at a time.  This is the standard technique used by production Datalog
systems (the paper uses RDFox for the end-to-end experiment in Section 7.3).

:func:`naive_reference_fixpoint` retains the obviously-correct
tuple-at-a-time evaluator as an executable specification; the property tests
check the plan-based engine against it on random programs and instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance
from ..logic.rules import Rule
from ..unification.matching import match_atom, match_conjunction_into_set
from ..unification.solver import solve_match_prefiltered
from .plan import JoinPlanStats, RulePlan
from .program import DatalogProgram
from .store import FactStore, Row


@dataclass
class MaterializationResult:
    """The outcome of a materialization run."""

    store: FactStore
    rounds: int
    derived_count: int
    rule_applications: int
    #: per-call join-plan execution counters (see plan.JoinPlanStats)
    join_stats: Optional[Dict[str, object]] = None

    def facts(self) -> FrozenSet[Atom]:
        return self.store.facts()

    def __contains__(self, fact: Atom) -> bool:
        return fact in self.store

    def __len__(self) -> int:
        return len(self.store)


@dataclass(frozen=True)
class DeltaUpdateResult:
    """The outcome of one incremental :meth:`DatalogEngine.extend` call.

    ``added_facts`` counts the delta facts that were genuinely new (not
    already in the store); ``derived_count`` counts only the facts *inferred*
    from them by delta propagation.
    """

    added_facts: int
    derived_count: int
    rounds: int
    rule_applications: int
    #: per-call join-plan execution counters (see plan.JoinPlanStats)
    join_stats: Optional[Dict[str, object]] = None

    @property
    def total_new_facts(self) -> int:
        return self.added_facts + self.derived_count


@dataclass(frozen=True)
class RetractionResult:
    """The outcome of one incremental :meth:`DatalogEngine.retract` call.

    Mirrors :class:`DeltaUpdateResult` for the deletion direction.
    ``retracted_facts`` counts the input facts that actually were base facts
    (and so were un-asserted); ``ignored_facts`` counts inputs skipped per
    the retraction contract (never added, or present only as derived).
    ``overdeleted`` is the size of the over-deletion pass's candidate set
    (excluding the retracted facts themselves), ``rederived`` how many
    candidates the re-derivation pass proved from the surviving facts and
    re-admitted as derived, and ``net_removed`` the store shrinkage —
    ``len(store_before) - len(store_after)``.
    """

    retracted_facts: int
    ignored_facts: int
    overdeleted: int
    rederived: int
    net_removed: int
    rounds: int
    rule_applications: int
    #: per-call join-plan execution counters (see plan.JoinPlanStats)
    join_stats: Optional[Dict[str, object]] = None


class DatalogEngine:
    """Semi-naive evaluation of a Datalog program via compiled join plans.

    Plans (one :class:`~repro.datalog.plan.RulePlan` per rule, with lazily
    compiled per-pivot variants) are built once per engine and reused across
    every :meth:`materialize` round and every :meth:`extend` delta
    propagation — sessions and knowledge bases share one engine per program
    via :func:`compiled_engine`.
    """

    def __init__(self, program: DatalogProgram) -> None:
        self.program = program
        self._rules_by_body = program.rules_by_body_predicate()
        self._rules_by_head = program.rules_by_head()
        self.join_stats = JoinPlanStats()
        self._plans: Dict[Rule, RulePlan] = {rule: RulePlan(rule) for rule in program}

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        instance: Instance | Iterable[Atom],
        max_rounds: Optional[int] = None,
    ) -> MaterializationResult:
        """Compute the fixpoint of the program on the given instance."""
        store = FactStore(instance)
        stats = JoinPlanStats()

        # Round 0: a full naive pass so that rules whose body mentions only
        # EDB facts fire at least once even if the EDB predicates never
        # appear in any delta.
        applications = 0
        new_rows: Set[Tuple[Predicate, Row]] = set()
        for rule in self.program:
            plan = self._plans[rule]
            batch = plan.variant(None).execute(store, None, stats)
            if not batch.size:
                continue
            applications += batch.size
            head_predicate = rule.head.predicate
            relation = store.relation_rows(head_predicate)
            for row in plan.project_rows(batch, store):
                if row not in relation:
                    new_rows.add((head_predicate, row))
        rounds, derived, loop_applications = self._fixpoint_loop(
            store, new_rows, stats, max_rounds
        )
        self.join_stats.merge(stats)
        return MaterializationResult(
            store=store,
            rounds=rounds,
            derived_count=derived,
            rule_applications=applications + loop_applications,
            join_stats=stats.snapshot(),
        )

    def extend(
        self,
        store: FactStore,
        facts: Instance | Iterable[Atom],
    ) -> DeltaUpdateResult:
        """Propagate a delta of new facts through a store already at fixpoint.

        The store is mutated in place.  Instead of re-running the full naive
        round-0 pass of :meth:`materialize`, the semi-naive loop is seeded
        with the new facts: any derivation not available before the update
        must use at least one of them, so this computes the same fixpoint as
        re-materializing from scratch while doing work proportional to the
        consequences of the delta only.  The compiled plans are the same
        objects used by full materialization — the delta rides the identical
        fast path.

        Unlike :meth:`materialize` there is deliberately no ``max_rounds``
        knob: a truncated delta propagation would leave the store below
        fixpoint, silently violating this method's own precondition for every
        later call.
        """
        # encode at the boundary: assertions enter row space here and the
        # whole propagation stays in it
        asserted = {store.encode_fact(fact) for fact in facts}
        seed = {pair for pair in asserted if not store.contains_row(*pair)}
        added = len(seed)
        stats = JoinPlanStats()
        rounds, derived, applications = self._fixpoint_loop(store, seed, stats)
        # assertions become base facts even when already derivable — they
        # must survive a later retraction of their derivers (DRed contract)
        for predicate, row in asserted:
            if not store.is_base_row(predicate, row):
                store.mark_base_row(predicate, row)
        self.join_stats.merge(stats)
        return DeltaUpdateResult(
            added_facts=added,
            derived_count=derived - added,
            rounds=rounds,
            rule_applications=applications,
            join_stats=stats.snapshot(),
        )

    def retract(
        self,
        store: FactStore,
        facts: Instance | Iterable[Atom],
    ) -> RetractionResult:
        """Un-assert base facts from a store at fixpoint, DRed style.

        The store is mutated in place and ends exactly where re-materializing
        the surviving base facts from scratch would land.  Three passes:

        1. **Over-deletion** — the retracted facts seed a deleted-delta that
           is propagated through the same per-rule :class:`PlanVariant`
           pipelines :meth:`extend` uses, pivoted on the deleted facts; every
           head instance they (transitively) helped derive becomes a
           candidate deletion.  Base facts are self-supported and are never
           over-deleted.  Each round's deletions are committed only after all
           of the round's pivots have executed, so a derivation pairing two
           same-round deletions is still discovered through either pivot.
        2. **Re-derivation** — every removed fact whose head matches a rule
           whose body still holds in the shrunken store is re-proved (via the
           shared constraint-propagating match solver) and re-admitted as
           derived.
        3. **Re-insertion** — the re-proved facts seed the ordinary
           semi-naive :meth:`_fixpoint_loop`, transitively restoring removed
           facts that depend on them.

        Contract: inputs that are not in the store, or that are present only
        as derived facts, are ignored (counted in ``ignored_facts``) — an
        inference cannot be deleted away while its premises remain.
        Retracting a base fact that is still derivable demotes it to derived
        rather than removing it.
        """
        requested = {fact for fact in facts}
        # boundary encoding: a requested fact whose terms the table has
        # never seen cannot be in the store, let alone base — it is ignored
        seeds: Set[Tuple[Predicate, Row]] = set()
        for fact in requested:
            found = store.find_fact(fact)
            if found is not None and store.is_base_row(*found):
                seeds.add(found)
        ignored = len(requested) - len(seeds)
        stats = JoinPlanStats()
        size_before = len(store)
        for predicate, row in seeds:
            store.unmark_base_row(predicate, row)

        removed: Set[Tuple[Predicate, Row]] = set()
        delta = seeds
        rounds = 0
        applications = 0
        while delta:
            rounds += 1
            removed |= delta
            delta_by_predicate: Dict[Predicate, List[Row]] = {}
            for predicate, row in delta:
                delta_by_predicate.setdefault(predicate, []).append(row)
            candidates: Set[Tuple[Predicate, Row]] = set()
            for rule in self._rules_touching(delta_by_predicate.keys()):
                plan = self._plans[rule]
                for pivot, atom in enumerate(rule.body):
                    if atom.predicate not in delta_by_predicate:
                        continue
                    batch = plan.variant(pivot).execute_deletion(
                        store, delta_by_predicate, stats
                    )
                    if not batch.size:
                        continue
                    applications += batch.size
                    head_predicate = rule.head.predicate
                    for row in plan.project_rows(batch, store):
                        pair = (head_predicate, row)
                        if (
                            pair not in removed
                            and pair not in candidates
                            and store.contains_row(head_predicate, row)
                            and not store.is_base_row(head_predicate, row)
                        ):
                            candidates.add(pair)
            for predicate, row in delta:
                store.remove_row(predicate, row)
            delta = candidates

        # Re-derivation: a removed fact survives iff some rule body matches
        # it over what is left.  Candidates whose alternative support itself
        # depends on facts restored here are picked up transitively by the
        # re-insertion loop below, so one direct pass suffices as the seed.
        # Removed rows still decode (term IDs are never reclaimed), which is
        # what lets the whole pass stay in row space.
        rederived_seed = self._rederivation_seed(store, removed, stats)
        loop_rounds, _, loop_applications = self._fixpoint_loop(
            store, rederived_seed, stats
        )
        rederived = sum(1 for pair in removed if store.contains_row(*pair))

        self.join_stats.merge(stats)
        return RetractionResult(
            retracted_facts=len(seeds),
            ignored_facts=ignored,
            overdeleted=len(removed) - len(seeds),
            rederived=rederived,
            net_removed=size_before - len(store),
            rounds=rounds + loop_rounds,
            rule_applications=applications + loop_applications,
            join_stats=stats.snapshot(),
        )

    #: below this many removed facts the goal-directed per-fact check wins
    #: over full rule evaluations (one head-constrained solver search per
    #: fact versus one unconstrained join per head-matching rule)
    _REDERIVE_BATCH_THRESHOLD = 16

    def _rederivation_seed(
        self,
        store: FactStore,
        removed: Set[Tuple[Predicate, Row]],
        stats: JoinPlanStats,
    ) -> Set[Tuple[Predicate, Row]]:
        """``removed ∩ T_P(remaining)`` — the facts DRed must re-admit.

        Two strategies with identical results: for small ``removed`` sets,
        each fact is checked goal-directedly (the head match pre-binds the
        rule body, so the shared match solver searches a tiny space — this
        is the one spot where removed rows are decoded back to atoms); for
        large ones, every rule with removed head instances is evaluated
        *once* over the shrunken store through its compiled non-pivoted plan
        variant and the projected rows are intersected with ``removed`` —
        set-at-a-time work proportional to one materialization round instead
        of one solver search per candidate.
        """
        seed: Set[Tuple[Predicate, Row]] = set()
        if len(removed) <= self._REDERIVE_BATCH_THRESHOLD:
            relation_cache: Dict[Predicate, Tuple[Atom, ...]] = {}
            for predicate, row in removed:
                fact = store.decode_row(predicate, row)
                if self._has_alternative_derivation(store, fact, relation_cache):
                    seed.add((predicate, row))
            return seed
        removed_by_predicate: Dict[Predicate, Set[Row]] = {}
        for predicate, row in removed:
            removed_by_predicate.setdefault(predicate, set()).add(row)
        for predicate, targets in removed_by_predicate.items():
            found: Set[Row] = set()
            for rule in self._rules_by_head.get(predicate, ()):
                pending = targets - found
                if not pending:
                    break
                plan = self._plans[rule]
                batch = plan.variant(None).execute(store, None, stats)
                for row in plan.project_rows(batch, store):
                    if row in pending:
                        found.add(row)
            seed.update((predicate, row) for row in found)
        return seed

    def _has_alternative_derivation(
        self,
        store: FactStore,
        fact: Atom,
        relation_cache: Dict[Predicate, Tuple[Atom, ...]],
    ) -> bool:
        """Whether some rule body over the current store derives ``fact``."""
        for rule in self._rules_by_head.get(fact.predicate, ()):
            base = match_atom(rule.head, fact)
            if base is None:
                continue
            candidate_lists = []
            for atom in rule.body:
                relation = relation_cache.get(atom.predicate)
                if relation is None:
                    relation = tuple(store.relation_facts(atom.predicate))
                    relation_cache[atom.predicate] = relation
                candidate_lists.append(relation)
            witness = next(solve_match_prefiltered(rule.body, candidate_lists, base), None)
            if witness is not None:
                return True
        return False

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _fixpoint_loop(
        self,
        store: FactStore,
        new_rows: Set[Tuple[Predicate, Row]],
        stats: JoinPlanStats,
        max_rounds: Optional[int] = None,
    ) -> Tuple[int, int, int]:
        """The shared semi-naive loop; returns (rounds, added, applications).

        ``new_rows`` is the seed delta — (predicate, row) pairs not yet in
        the store.  Every round commits the pending rows, then evaluates
        each rule/pivot plan variant with the pivot atom restricted to the
        committed delta.  The loop never leaves row space.
        """
        rounds = 0
        added = 0
        applications = 0
        plans = self._plans
        while new_rows:
            rounds += 1
            delta_by_predicate: Dict[Predicate, List[Row]] = {}
            for predicate, row in new_rows:
                if store.add_row(predicate, row):
                    added += 1
                    bucket = delta_by_predicate.get(predicate)
                    if bucket is None:
                        delta_by_predicate[predicate] = [row]
                    else:
                        bucket.append(row)
            if max_rounds is not None and rounds >= max_rounds:
                break
            new_rows = set()
            for rule in self._rules_touching(delta_by_predicate.keys()):
                plan = plans[rule]
                for pivot, atom in enumerate(rule.body):
                    if atom.predicate not in delta_by_predicate:
                        continue
                    batch = plan.variant(pivot).execute(
                        store, delta_by_predicate, stats
                    )
                    if not batch.size:
                        continue
                    applications += batch.size
                    head_predicate = rule.head.predicate
                    relation = store.relation_rows(head_predicate)
                    for row in plan.project_rows(batch, store):
                        if row not in relation:
                            new_rows.add((head_predicate, row))
        return rounds, added, applications

    def _rules_touching(self, delta_predicates: Iterable[Predicate]) -> Tuple[Rule, ...]:
        """Rules whose body mentions a predicate with new facts."""
        seen: Set[Rule] = set()
        ordered: List[Rule] = []
        for predicate in delta_predicates:
            for rule in self._rules_by_body.get(predicate, ()):
                if rule not in seen:
                    seen.add(rule)
                    ordered.append(rule)
        return tuple(ordered)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def compiled_plan_count(self) -> int:
        """Distinct (rule, pivot) variants compiled so far (cached for life)."""
        return sum(plan.compiled_variant_count for plan in self._plans.values())

    def plan_shapes(self) -> Tuple[str, ...]:
        """Compact pipeline summaries of every rule plan (sorted, deduped).

        Only the no-pivot variant is summarized; pivot variants share the
        same heuristic and differ only in which atom leads.
        """
        return tuple(sorted({plan.shape() for plan in self._plans.values()}))


# ----------------------------------------------------------------------
# shared compiled engines
# ----------------------------------------------------------------------
_ENGINE_CACHE: Dict[Tuple[Rule, ...], DatalogEngine] = {}
ENGINE_CACHE_LIMIT = 64


def compiled_engine(program: DatalogProgram) -> DatalogEngine:
    """A shared engine for the program, with plans compiled exactly once.

    Keyed by the program's (interned) rule tuple, so every session, one-shot
    materialization, and knowledge base serving the same rewriting reuses
    one set of compiled plans.  Engines are stateless with respect to fact
    stores; only the lifetime join statistics accumulate.
    """
    key = program.rules
    engine = _ENGINE_CACHE.get(key)
    if engine is None:
        while len(_ENGINE_CACHE) >= ENGINE_CACHE_LIMIT:
            _ENGINE_CACHE.pop(next(iter(_ENGINE_CACHE)))
        engine = DatalogEngine(program)
        _ENGINE_CACHE[key] = engine
    return engine


def clear_engine_cache() -> None:
    """Empty the shared-engine cache (tests, benchmarks)."""
    _ENGINE_CACHE.clear()


def materialize(
    program: DatalogProgram | Iterable[Rule],
    instance: Instance | Iterable[Atom],
    max_rounds: Optional[int] = None,
) -> MaterializationResult:
    """Convenience wrapper: materialize a program (or iterable of rules).

    Served through the shared engine cache, so repeated one-shot
    materializations of the same program skip plan compilation.
    """
    if not isinstance(program, DatalogProgram):
        program = DatalogProgram(program)
    return compiled_engine(program).materialize(instance, max_rounds=max_rounds)


def naive_reference_fixpoint(
    program: DatalogProgram | Iterable[Rule],
    instance: Instance | Iterable[Atom],
) -> FrozenSet[Atom]:
    """Tuple-at-a-time naive evaluation, retained as the executable spec.

    Repeatedly applies every rule over the full fact set until nothing new
    is derivable.  Quadratically re-derives known facts and allocates one
    substitution per match — never use it on real workloads; it exists so
    the differential tests can check the plan-based engine against an
    implementation whose correctness is obvious.
    """
    if not isinstance(program, DatalogProgram):
        program = DatalogProgram(program)
    known: Set[Atom] = set(instance)
    changed = True
    while changed:
        changed = False
        snapshot = tuple(known)
        for rule in program:
            for match in match_conjunction_into_set(rule.body, snapshot):
                fact = match.apply_atom(rule.head)
                if fact not in known:
                    known.add(fact)
                    changed = True
    return frozenset(known)
