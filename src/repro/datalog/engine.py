"""Semi-naive bottom-up Datalog evaluation.

Given a Datalog program and a base instance, :class:`DatalogEngine` computes
the *materialization*: the least set of facts containing the base instance
and closed under the rules.  Evaluation is semi-naive — in every round, each
rule is evaluated only over joins that use at least one fact derived in the
previous round — which keeps re-derivations to a minimum and is the standard
technique used by production Datalog systems (the paper uses RDFox for the
end-to-end experiment in Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance
from ..logic.rules import Rule
from ..logic.substitution import Substitution
from ..logic.terms import Variable
from ..unification.matching import match_atom
from .index import FactStore
from .program import DatalogProgram


@dataclass
class MaterializationResult:
    """The outcome of a materialization run."""

    store: FactStore
    rounds: int
    derived_count: int
    rule_applications: int

    def facts(self) -> FrozenSet[Atom]:
        return self.store.facts()

    def __contains__(self, fact: Atom) -> bool:
        return fact in self.store

    def __len__(self) -> int:
        return len(self.store)


class DatalogEngine:
    """Semi-naive evaluation of a Datalog program."""

    def __init__(self, program: DatalogProgram) -> None:
        self.program = program
        self._rules_by_body = program.rules_by_body_predicate()

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        instance: Instance | Iterable[Atom],
        max_rounds: Optional[int] = None,
    ) -> MaterializationResult:
        """Compute the fixpoint of the program on the given instance."""
        store = FactStore(instance)
        delta: Set[Atom] = set(store)
        rounds = 0
        derived = 0
        applications = 0

        # Round 0: rules with empty bodies (facts as rules) and a full naive
        # pass so that rules whose body mentions only EDB facts fire at least
        # once even if the EDB predicates never appear in any delta.
        new_facts: Set[Atom] = set()
        for rule in self.program:
            for substitution in self._match_body(rule.body, store, None, None):
                applications += 1
                fact = substitution.apply_atom(rule.head)
                if fact not in store:
                    new_facts.add(fact)
        while new_facts:
            rounds += 1
            delta = set()
            for fact in new_facts:
                if store.add(fact):
                    derived += 1
                    delta.add(fact)
            if max_rounds is not None and rounds >= max_rounds:
                break
            new_facts = set()
            relevant_rules = self._rules_touching(delta)
            for rule in relevant_rules:
                for substitution in self._semi_naive_matches(rule, store, delta):
                    applications += 1
                    fact = substitution.apply_atom(rule.head)
                    if fact not in store and fact not in new_facts:
                        new_facts.add(fact)
        return MaterializationResult(
            store=store,
            rounds=rounds,
            derived_count=derived,
            rule_applications=applications,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _rules_touching(self, delta: Set[Atom]) -> Tuple[Rule, ...]:
        """Rules whose body mentions a predicate with new facts."""
        predicates = {fact.predicate for fact in delta}
        seen: Set[Rule] = set()
        ordered: List[Rule] = []
        for predicate in predicates:
            for rule in self._rules_by_body.get(predicate, ()):
                if rule not in seen:
                    seen.add(rule)
                    ordered.append(rule)
        return tuple(ordered)

    def _semi_naive_matches(
        self, rule: Rule, store: FactStore, delta: Set[Atom]
    ) -> Iterator[Substitution]:
        """Matches of the rule body that use at least one delta fact.

        For each body position ``i`` in turn, atom ``i`` is restricted to the
        delta while the remaining atoms range over the full store; this is the
        standard semi-naive rewriting of the rule.
        """
        delta_predicates = {fact.predicate for fact in delta}
        for pivot, pivot_atom in enumerate(rule.body):
            if pivot_atom.predicate not in delta_predicates:
                continue
            yield from self._match_body(rule.body, store, pivot, delta)

    def _match_body(
        self,
        body: Sequence[Atom],
        store: FactStore,
        pivot: Optional[int],
        delta: Optional[Set[Atom]],
    ) -> Iterator[Substitution]:
        """Enumerate substitutions matching the body into the store.

        If ``pivot`` is not ``None``, the pivot atom only ranges over ``delta``.
        Atoms are matched in a greedy order that prefers bound/selective atoms.
        """

        order = self._plan_order(body, pivot)

        def recurse(position: int, substitution: Substitution) -> Iterator[Substitution]:
            if position == len(order):
                yield substitution
                return
            index = order[position]
            pattern = body[index]
            if pivot is not None and index == pivot and delta is not None:
                candidates: Iterable[Atom] = [
                    fact for fact in delta if fact.predicate == pattern.predicate
                ]
            else:
                candidates = store.candidates(pattern, substitution)
            for fact in candidates:
                extended = match_atom(pattern, fact, substitution)
                if extended is not None:
                    yield from recurse(position + 1, extended)

        yield from recurse(0, Substitution())

    @staticmethod
    def _plan_order(body: Sequence[Atom], pivot: Optional[int]) -> Tuple[int, ...]:
        """A simple join order: pivot first (if any), then atoms sharing variables."""
        remaining = list(range(len(body)))
        order: List[int] = []
        bound: Set[Variable] = set()
        if pivot is not None:
            order.append(pivot)
            remaining.remove(pivot)
            bound.update(body[pivot].variables())
        while remaining:
            # prefer the atom sharing the most variables with what is bound
            def score(index: int) -> Tuple[int, int]:
                atom_vars = set(body[index].variables())
                return (len(atom_vars & bound), -len(atom_vars - bound))

            best = max(remaining, key=score)
            order.append(best)
            remaining.remove(best)
            bound.update(body[best].variables())
        return tuple(order)


def materialize(
    program: DatalogProgram | Iterable[Rule],
    instance: Instance | Iterable[Atom],
    max_rounds: Optional[int] = None,
) -> MaterializationResult:
    """Convenience wrapper: materialize a program (or iterable of rules)."""
    if not isinstance(program, DatalogProgram):
        program = DatalogProgram(program)
    return DatalogEngine(program).materialize(instance, max_rounds=max_rounds)
