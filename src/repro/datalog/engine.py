"""Semi-naive bottom-up Datalog evaluation.

Given a Datalog program and a base instance, :class:`DatalogEngine` computes
the *materialization*: the least set of facts containing the base instance
and closed under the rules.  Evaluation is semi-naive — in every round, each
rule is evaluated only over joins that use at least one fact derived in the
previous round — which keeps re-derivations to a minimum and is the standard
technique used by production Datalog systems (the paper uses RDFox for the
end-to-end experiment in Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance
from ..logic.rules import Rule
from ..logic.substitution import Substitution
from ..logic.terms import Variable
from ..unification.matching import match_atom
from .index import FactStore
from .program import DatalogProgram


@dataclass
class MaterializationResult:
    """The outcome of a materialization run."""

    store: FactStore
    rounds: int
    derived_count: int
    rule_applications: int

    def facts(self) -> FrozenSet[Atom]:
        return self.store.facts()

    def __contains__(self, fact: Atom) -> bool:
        return fact in self.store

    def __len__(self) -> int:
        return len(self.store)


@dataclass(frozen=True)
class DeltaUpdateResult:
    """The outcome of one incremental :meth:`DatalogEngine.extend` call.

    ``added_facts`` counts the delta facts that were genuinely new (not
    already in the store); ``derived_count`` counts only the facts *inferred*
    from them by delta propagation.
    """

    added_facts: int
    derived_count: int
    rounds: int
    rule_applications: int

    @property
    def total_new_facts(self) -> int:
        return self.added_facts + self.derived_count


class DatalogEngine:
    """Semi-naive evaluation of a Datalog program."""

    def __init__(self, program: DatalogProgram) -> None:
        self.program = program
        self._rules_by_body = program.rules_by_body_predicate()

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        instance: Instance | Iterable[Atom],
        max_rounds: Optional[int] = None,
    ) -> MaterializationResult:
        """Compute the fixpoint of the program on the given instance."""
        store = FactStore(instance)
        rounds = 0
        derived = 0
        applications = 0

        # Round 0: rules with empty bodies (facts as rules) and a full naive
        # pass so that rules whose body mentions only EDB facts fire at least
        # once even if the EDB predicates never appear in any delta.
        new_facts: Set[Atom] = set()
        for rule in self.program:
            for substitution in self._match_body(rule.body, store, None, None):
                applications += 1
                fact = substitution.apply_atom(rule.head)
                if fact not in store:
                    new_facts.add(fact)
        rounds, derived, loop_applications = self._fixpoint_loop(
            store, new_facts, max_rounds
        )
        return MaterializationResult(
            store=store,
            rounds=rounds,
            derived_count=derived,
            rule_applications=applications + loop_applications,
        )

    def extend(
        self,
        store: FactStore,
        facts: Instance | Iterable[Atom],
    ) -> DeltaUpdateResult:
        """Propagate a delta of new facts through a store already at fixpoint.

        The store is mutated in place.  Instead of re-running the full naive
        round-0 pass of :meth:`materialize`, the semi-naive loop is seeded
        with the new facts: any derivation not available before the update
        must use at least one of them, so this computes the same fixpoint as
        re-materializing from scratch while doing work proportional to the
        consequences of the delta only.

        Unlike :meth:`materialize` there is deliberately no ``max_rounds``
        knob: a truncated delta propagation would leave the store below
        fixpoint, silently violating this method's own precondition for every
        later call.
        """
        seed = {fact for fact in facts if fact not in store}
        added = len(seed)
        rounds, derived, applications = self._fixpoint_loop(store, seed)
        return DeltaUpdateResult(
            added_facts=added,
            derived_count=derived - added,
            rounds=rounds,
            rule_applications=applications,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _fixpoint_loop(
        self,
        store: FactStore,
        new_facts: Set[Atom],
        max_rounds: Optional[int] = None,
    ) -> Tuple[int, int, int]:
        """The shared semi-naive loop; returns (rounds, added, applications).

        ``new_facts`` is the seed delta — facts not yet in the store.  Every
        round commits the pending facts, then evaluates the rules touching
        the committed delta with one body atom restricted to it.
        """
        rounds = 0
        added = 0
        applications = 0
        while new_facts:
            rounds += 1
            delta = set()
            for fact in new_facts:
                if store.add(fact):
                    added += 1
                    delta.add(fact)
            if max_rounds is not None and rounds >= max_rounds:
                break
            new_facts = set()
            # computed once per round and threaded through the per-rule
            # matching, instead of being rebuilt for every rule
            delta_predicates = frozenset(fact.predicate for fact in delta)
            for rule in self._rules_touching(delta_predicates):
                for substitution in self._semi_naive_matches(
                    rule, store, delta, delta_predicates
                ):
                    applications += 1
                    fact = substitution.apply_atom(rule.head)
                    if fact not in store and fact not in new_facts:
                        new_facts.add(fact)
        return rounds, added, applications

    def _rules_touching(
        self, delta_predicates: FrozenSet[Predicate]
    ) -> Tuple[Rule, ...]:
        """Rules whose body mentions a predicate with new facts."""
        seen: Set[Rule] = set()
        ordered: List[Rule] = []
        for predicate in delta_predicates:
            for rule in self._rules_by_body.get(predicate, ()):
                if rule not in seen:
                    seen.add(rule)
                    ordered.append(rule)
        return tuple(ordered)

    def _semi_naive_matches(
        self,
        rule: Rule,
        store: FactStore,
        delta: Set[Atom],
        delta_predicates: FrozenSet[Predicate],
    ) -> Iterator[Substitution]:
        """Matches of the rule body that use at least one delta fact.

        For each body position ``i`` in turn, atom ``i`` is restricted to the
        delta while the remaining atoms range over the full store; this is the
        standard semi-naive rewriting of the rule.
        """
        for pivot, pivot_atom in enumerate(rule.body):
            if pivot_atom.predicate not in delta_predicates:
                continue
            yield from self._match_body(rule.body, store, pivot, delta)

    def _match_body(
        self,
        body: Sequence[Atom],
        store: FactStore,
        pivot: Optional[int],
        delta: Optional[Set[Atom]],
    ) -> Iterator[Substitution]:
        """Enumerate substitutions matching the body into the store.

        If ``pivot`` is not ``None``, the pivot atom only ranges over ``delta``.
        Atoms are matched in a greedy order that prefers bound/selective atoms.
        """

        order = self._plan_order(body, pivot)

        def recurse(position: int, substitution: Substitution) -> Iterator[Substitution]:
            if position == len(order):
                yield substitution
                return
            index = order[position]
            pattern = body[index]
            if pivot is not None and index == pivot and delta is not None:
                candidates: Iterable[Atom] = [
                    fact for fact in delta if fact.predicate == pattern.predicate
                ]
            else:
                candidates = store.candidates(pattern, substitution)
            for fact in candidates:
                extended = match_atom(pattern, fact, substitution)
                if extended is not None:
                    yield from recurse(position + 1, extended)

        yield from recurse(0, Substitution())

    @staticmethod
    def _plan_order(body: Sequence[Atom], pivot: Optional[int]) -> Tuple[int, ...]:
        """A simple join order: pivot first (if any), then atoms sharing variables."""
        remaining = list(range(len(body)))
        order: List[int] = []
        bound: Set[Variable] = set()
        if pivot is not None:
            order.append(pivot)
            remaining.remove(pivot)
            bound.update(body[pivot].variables())
        while remaining:
            # prefer the atom sharing the most variables with what is bound
            def score(index: int) -> Tuple[int, int]:
                atom_vars = set(body[index].variables())
                return (len(atom_vars & bound), -len(atom_vars - bound))

            best = max(remaining, key=score)
            order.append(best)
            remaining.remove(best)
            bound.update(body[best].variables())
        return tuple(order)


def materialize(
    program: DatalogProgram | Iterable[Rule],
    instance: Instance | Iterable[Atom],
    max_rounds: Optional[int] = None,
) -> MaterializationResult:
    """Convenience wrapper: materialize a program (or iterable of rules)."""
    if not isinstance(program, DatalogProgram):
        program = DatalogProgram(program)
    return DatalogEngine(program).materialize(instance, max_rounds=max_rounds)
