"""ID-encoded columnar fact storage: the term table and the int-row store.

PR 1 made every term and atom hash-consed, so equality is identity — but
the join pipelines still hashed and moved interned term *objects* through
their batches, paying pointer-chasing and object-hash costs on the hottest
path in the system.  This module finishes the encoding step: a
:class:`TermTable` maps terms to dense integer IDs at the store boundary,
and :class:`FactStore` keeps every relation as a set of *int-tuple rows*
with int-keyed multi-column hash indexes.  The compiled join plans
(:mod:`repro.datalog.plan`) then operate on int columns end-to-end; ints
hash and compare without touching the heap objects at all, and the disk
tier (:mod:`repro.kb.format`'s ``repro-kb/v2`` fact segments) serializes
the same row representation compactly.

ID-encoding invariants
----------------------

* **IDs are store-local.**  Each :class:`FactStore` owns one
  :class:`TermTable`; an ID is meaningful only against the table that
  issued it.  Rows never travel between stores un-decoded (``copy()``
  clones the table precisely so the clone's rows stay valid).
* **IDs are dense and never reused.**  The table is append-only: the
  ``n``-th distinct term encoded gets ID ``n``, and removing facts never
  removes IDs.  DRed relies on this — rows removed during over-deletion
  still decode correctly when the re-derivation pass re-admits them.
* **Decode only at boundaries.**  Everything between "facts enter the
  store" and "answers/materializations leave it" — semi-naive deltas,
  hash-join probes, head projection, DRed bookkeeping — stays in row
  space.  Decoding back to interned :class:`~repro.logic.atoms.Atom`
  objects happens only in the answer projection, the Skolem-term head
  builders of the chase, and the whole-store views (``facts()``,
  iteration, ``relation()``).
* **Only ground terms are encoded.**  Variables never enter the table;
  non-ground facts are rejected exactly as the object-encoded store did.

The base/derived bookkeeping contract (DRed support) is unchanged from the
previous object-encoded store: base facts are the caller-asserted EDB
(``base_facts() ⊆ facts()``), a fact can be base *and* derivable, and
removing a fact discards its base mark.  :mod:`repro.datalog.index`
re-exports :class:`FactStore` for compatibility with older imports.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..logic.atoms import Atom, Predicate
from ..logic.substitution import Substitution
from ..logic.terms import Term, Variable

#: a stored fact: the term IDs of its arguments, in argument order
Row = Tuple[int, ...]


def row_key(row: Row, positions: Tuple[int, ...]) -> object:
    """The probe key of a row for the given positions.

    Single-column keys are the bare int (no tuple allocation); wider keys
    are tuples of ints.  Int hashing is a single arithmetic op — this is
    the cache-friendly core of the encoding.
    """
    if len(positions) == 1:
        return row[positions[0]]
    return tuple(row[position] for position in positions)


class TermTable:
    """An append-only bidirectional term ↔ dense-int-ID map (store-local).

    ``encode_calls``/``decode_calls`` count boundary crossings for the perf
    harness's ``fact_store`` stats block; they are bookkeeping, not caches.
    """

    __slots__ = ("_ids", "_terms", "encode_calls", "decode_calls")

    def __init__(self) -> None:
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []
        self.encode_calls = 0
        self.decode_calls = 0

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def encode(self, term: Term) -> int:
        """The ID of a ground term, issuing a fresh one on first sight."""
        self.encode_calls += 1
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._ids[term] = term_id
            self._terms.append(term)
        return term_id

    def lookup(self, term: Term) -> Optional[int]:
        """The ID of a term, or ``None`` — never issues a new ID.

        A ``None`` is a strong fact: no stored row can mention the term, so
        probes can short-circuit to empty instead of hashing anything.
        """
        return self._ids.get(term)

    def decode(self, term_id: int) -> Term:
        self.decode_calls += 1
        return self._terms[term_id]

    def decode_args(self, row: Sequence[int]) -> Tuple[Term, ...]:
        self.decode_calls += len(row)
        terms = self._terms
        return tuple(terms[term_id] for term_id in row)

    def decode_column(self, column: Sequence[int]) -> List[Term]:
        self.decode_calls += len(column)
        terms = self._terms
        return [terms[term_id] for term_id in column]

    def copy(self) -> "TermTable":
        clone = TermTable.__new__(TermTable)
        clone._ids = dict(self._ids)
        clone._terms = list(self._terms)
        clone.encode_calls = self.encode_calls
        clone.decode_calls = self.decode_calls
        return clone


class FactStore:
    """An indexed set of ground facts, stored as ID-encoded int rows.

    Two API layers share the same storage:

    * the **atom layer** (``add``/``remove``/``__contains__``/``facts()``/
      ``relation()``/``candidates()``…) — the historical interface; it
      encodes/decodes at the call boundary and exists for callers that
      genuinely live in term space (tests, snapshots, reference checks);
    * the **row layer** (``add_row``/``remove_row``/``relation_rows``/
      ``key_index``/``mark_base_row``…) — what the engine, the plan
      executor, and the chase use; nothing here touches a term object.

    See the module docstring for the ID-encoding invariants and the
    base/derived (DRed) bookkeeping contract.
    """

    __slots__ = ("terms", "_rows", "_key_indexes", "_base", "_size")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        #: the store-local term table; plans read it for constant encoding
        self.terms = TermTable()
        self._rows: Dict[Predicate, Set[Row]] = {}
        # predicate -> positions tuple -> key -> rows; see key_index()
        self._key_indexes: Dict[
            Predicate, Dict[Tuple[int, ...], Dict[object, List[Row]]]
        ] = {}
        # (predicate, row) pairs asserted by the caller rather than inferred
        self._base: Set[Tuple[Predicate, Row]] = set()
        self._size = 0
        self.add_all(facts, base=True)

    # ------------------------------------------------------------------
    # encoding boundary
    # ------------------------------------------------------------------
    def encode_fact(self, fact: Atom) -> Tuple[Predicate, Row]:
        """Encode a ground fact to ``(predicate, row)``, issuing IDs as needed."""
        if not fact.is_ground:
            raise ValueError(f"fact stores hold ground facts only, got {fact}")
        encode = self.terms.encode
        return fact.predicate, tuple(encode(term) for term in fact.args)

    def find_fact(self, fact: Atom) -> Optional[Tuple[Predicate, Row]]:
        """``(predicate, row)`` of a *stored* fact, or ``None`` — no new IDs."""
        lookup = self.terms.lookup
        row: List[int] = []
        for term in fact.args:
            term_id = lookup(term)
            if term_id is None:
                return None
            row.append(term_id)
        encoded = tuple(row)
        if encoded in self._rows.get(fact.predicate, ()):
            return fact.predicate, encoded
        return None

    def decode_row(self, predicate: Predicate, row: Row) -> Atom:
        """The interned atom of a row (the decode boundary)."""
        return Atom(predicate, self.terms.decode_args(row))

    # ------------------------------------------------------------------
    # row-layer mutation
    # ------------------------------------------------------------------
    def add_row(self, predicate: Predicate, row: Row) -> bool:
        """Add a row; return ``True`` if it was new.  Maintains every index."""
        relation = self._rows.get(predicate)
        if relation is None:
            relation = self._rows[predicate] = set()
        elif row in relation:
            return False
        relation.add(row)
        key_indexes = self._key_indexes.get(predicate)
        if key_indexes:
            for positions, index in key_indexes.items():
                key = row_key(row, positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
        self._size += 1
        return True

    def remove_row(self, predicate: Predicate, row: Row) -> bool:
        """Remove a row, trimming index buckets; return ``True`` if present.

        Emptied key-index buckets are dropped so later probes stay exact;
        the base mark, if any, is discarded with the row.  Term IDs are
        *not* reclaimed (the table is append-only by contract).
        """
        relation = self._rows.get(predicate)
        if relation is None or row not in relation:
            return False
        relation.discard(row)
        key_indexes = self._key_indexes.get(predicate)
        if key_indexes:
            for positions, index in key_indexes.items():
                key = row_key(row, positions)
                bucket = index.get(key)
                if bucket is not None:
                    try:
                        bucket.remove(row)
                    except ValueError:
                        pass
                    if not bucket:
                        del index[key]
        self._base.discard((predicate, row))
        self._size -= 1
        return True

    def contains_row(self, predicate: Predicate, row: Row) -> bool:
        return row in self._rows.get(predicate, ())

    def relation_rows(self, predicate: Predicate) -> "Set[Row] | Tuple[()]":
        """The live row set of a relation (no defensive copy; read-only).

        Callers must not mutate the store while iterating; the plan
        executor only reads between mutations, which is exactly the
        semi-naive commit-then-evaluate discipline.
        """
        return self._rows.get(predicate, ())

    def mark_base_row(self, predicate: Predicate, row: Row) -> bool:
        if not self.contains_row(predicate, row):
            raise KeyError(
                f"cannot mark a row not in the store as base: {predicate.name}{row}"
            )
        pair = (predicate, row)
        if pair in self._base:
            return False
        self._base.add(pair)
        return True

    def unmark_base_row(self, predicate: Predicate, row: Row) -> bool:
        pair = (predicate, row)
        if pair in self._base:
            self._base.discard(pair)
            return True
        return False

    def is_base_row(self, predicate: Predicate, row: Row) -> bool:
        return (predicate, row) in self._base

    # ------------------------------------------------------------------
    # atom-layer mutation
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Add a fact; return ``True`` if it was new."""
        predicate, row = self.encode_fact(fact)
        return self.add_row(predicate, row)

    def add_all(self, facts: Iterable[Atom], base: bool = False) -> int:
        """Add many facts; return how many were new.

        With ``base=True`` every fact is also marked base — including facts
        already present as derived, which an assertion promotes to base.
        """
        added = 0
        for fact in facts:
            predicate, row = self.encode_fact(fact)
            if self.add_row(predicate, row):
                added += 1
            if base:
                self._base.add((predicate, row))
        return added

    def mark_base(self, fact: Atom) -> bool:
        """Mark a stored fact as base; return ``True`` if it was derived before."""
        found = self.find_fact(fact)
        if found is None:
            raise KeyError(f"cannot mark a fact not in the store as base: {fact}")
        return self.mark_base_row(*found)

    def unmark_base(self, fact: Atom) -> bool:
        """Demote a fact from base to derived; return ``True`` if it was base."""
        found = self.find_fact(fact)
        if found is None:
            return False
        return self.unmark_base_row(*found)

    def remove(self, fact: Atom) -> bool:
        """Remove a fact, maintaining every index; return ``True`` if present."""
        found = self.find_fact(fact)
        if found is None:
            return False
        return self.remove_row(*found)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return self.find_fact(fact) is not None

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        decode = self.terms.decode_args
        for predicate, relation in self._rows.items():
            for row in relation:
                yield Atom(predicate, decode(row))

    def facts(self) -> FrozenSet[Atom]:
        return frozenset(self)

    def is_base(self, fact: Atom) -> bool:
        """``True`` if the fact was asserted (not merely derived)."""
        found = self.find_fact(fact)
        return found is not None and found in self._base

    @property
    def base_count(self) -> int:
        return len(self._base)

    @property
    def derived_count(self) -> int:
        """Stored facts that are not base (inferred-only)."""
        return self._size - len(self._base)

    def base_facts(self) -> FrozenSet[Atom]:
        """The asserted (EDB) facts — what a from-scratch rebuild would start from."""
        decode = self.terms.decode_args
        return frozenset(
            Atom(predicate, decode(row)) for predicate, row in self._base
        )

    def predicates(self) -> Tuple[Predicate, ...]:
        return tuple(self._rows)

    def relation(self, predicate: Predicate) -> FrozenSet[Atom]:
        decode = self.terms.decode_args
        return frozenset(
            Atom(predicate, decode(row)) for row in self._rows.get(predicate, ())
        )

    def relation_facts(self, predicate: Predicate) -> Iterator[Atom]:
        """The relation of a predicate, decoded row by row (atom layer)."""
        decode = self.terms.decode_args
        for row in self._rows.get(predicate, ()):
            yield Atom(predicate, decode(row))

    def count(self, predicate: Predicate) -> int:
        return len(self._rows.get(predicate, ()))

    def counts_by_predicate(self) -> Dict[Predicate, int]:
        return {pred: len(rel) for pred, rel in self._rows.items()}

    def key_index(
        self, predicate: Predicate, positions: Tuple[int, ...]
    ) -> Dict[object, List[Row]]:
        """The int-keyed hash index of a relation over the given positions.

        Built on first request by a plan step and kept incrementally
        up-to-date by :meth:`add_row`/:meth:`remove_row`; the mapping is
        ``key -> [rows]`` where the key is the bare int for single-column
        indexes and a tuple of ints otherwise (see :func:`row_key`).
        """
        per_predicate = self._key_indexes.get(predicate)
        if per_predicate is None:
            per_predicate = self._key_indexes[predicate] = {}
        index = per_predicate.get(positions)
        if index is None:
            index = {}
            for row in self._rows.get(predicate, ()):
                key = row_key(row, positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
            per_predicate[positions] = index
        return index

    def candidates(
        self, atom: Atom, substitution: Optional[Substitution] = None
    ) -> Iterable[Atom]:
        """Facts that could match the (possibly partially bound) atom.

        The most selective single-column index bucket available under the
        current substitution is used (indexes are built lazily per probed
        position and then maintained); if no argument is bound, the whole
        relation is decoded.  A bound term the table has never seen means
        no fact can match — the probe short-circuits to empty.
        """
        relation = self._rows.get(atom.predicate)
        if not relation:
            return ()
        best: Optional[List[Row]] = None
        for position, arg in enumerate(atom.args):
            term: Optional[Term]
            if isinstance(arg, Variable):
                term = substitution.get(arg) if substitution else None
            else:
                term = arg
            if term is None or not term.is_ground:
                continue
            term_id = self.terms.lookup(term)
            if term_id is None:
                return ()
            bucket = self.key_index(atom.predicate, (position,)).get(term_id)
            if bucket is None:
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
        rows = relation if best is None else best
        decode = self.terms.decode_args
        return [Atom(atom.predicate, decode(row)) for row in rows]

    # ------------------------------------------------------------------
    # conversion / introspection
    # ------------------------------------------------------------------
    def copy(self) -> "FactStore":
        """An independent clone: rows, base marks, and the term table.

        The clone shares no mutable state with the original; its rows stay
        valid because the term table travels with them.  Key indexes are
        *not* copied — the clone rebuilds them lazily on first probe.
        """
        clone = FactStore()
        clone.terms = self.terms.copy()
        clone._rows = {pred: set(rel) for pred, rel in self._rows.items()}
        clone._base = set(self._base)
        clone._size = self._size
        return clone

    def stats(self) -> Dict[str, object]:
        """The ``fact_store`` stats block of the perf harness.

        ``index_memory_bytes`` is an order-of-magnitude estimate (8 bytes
        per row reference in a bucket plus ~64 bytes of dict-entry overhead
        per distinct key), not a measurement.
        """
        index_count = 0
        index_keys = 0
        index_entries = 0
        for per_predicate in self._key_indexes.values():
            for index in per_predicate.values():
                index_count += 1
                index_keys += len(index)
                for bucket in index.values():
                    index_entries += len(bucket)
        return {
            "term_table_size": len(self.terms),
            "rows": self._size,
            "relations": sum(1 for rel in self._rows.values() if rel),
            "key_indexes": index_count,
            "index_entries": index_entries,
            "index_memory_bytes": index_entries * 8 + index_keys * 64,
            "encode_calls": self.terms.encode_calls,
            "decode_calls": self.terms.decode_calls,
        }
