"""Long-lived reasoning sessions with incremental materialization.

The paper's deployment mode is "compile Σ once, serve many instances and
queries".  A :class:`ReasoningSession` is the serving half of that story: it
keeps the materialized :class:`~repro.datalog.index.FactStore` alive across
calls, so

* ``add_facts(delta)`` propagates a batch of new base facts by *true
  semi-naive delta propagation* — the fixpoint loop is seeded with the new
  facts (:meth:`DatalogEngine.extend`) instead of re-running the whole
  materialization, doing work proportional to the consequences of the delta;
* ``retract_facts(delta)`` un-asserts base facts by DRed (delete/re-derive,
  :meth:`DatalogEngine.retract`): an over-deletion pass pivots the same
  compiled join plans on the deleted delta, then a re-derivation pass
  re-proves survivors — sessions shrink as cheaply as they grow;
* ``answer(query)`` / ``answer_many(queries)`` evaluate existential-free
  conjunctive queries against the live materialization with no per-call
  setup — or, via :class:`~repro.datalog.query.QueryOptions`, goal-directedly
  through the magic-sets transformation (:mod:`repro.datalog.magic`); and
* ``snapshot()`` returns an immutable :class:`MaterializationResult` over a
  copy of the store, decoupled from later updates.

A session constructed with ``defer_materialization=True`` starts *cold*: it
holds its base facts but does not materialize until something needs the full
fixpoint (a materialized answer, a mutation, a snapshot).  Demand-driven
answers on a cold session never warm it, which is what makes cold
point-query latency cheap — the ``auto`` strategy exists exactly for this.

Sessions are obtained from :meth:`repro.api.KnowledgeBase.session` (which
supplies the compiled rewriting) or constructed directly from any Datalog
program.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..logic.atoms import Atom
from ..logic.instance import Instance
from ..logic.rules import Rule
from ..logic.terms import Term
from .engine import (
    DatalogEngine,
    DeltaUpdateResult,
    MaterializationResult,
    RetractionResult,
    compiled_engine,
)
from .index import FactStore
from .magic import demand_answer, query_has_bound_arguments
from .program import DatalogProgram
from .plan import JoinPlanStats
from .query import ConjunctiveQuery, QueryOptions, evaluate_query


def _is_lazy_fact_source(instance: object) -> bool:
    """Whether the initial instance loads facts per predicate on demand.

    Duck-typed on the :class:`repro.kb.format.FactSegments` surface
    (``facts_for`` + ``all_facts``) so the session layer stays independent
    of the persistence layer.
    """
    return hasattr(instance, "facts_for") and hasattr(instance, "all_facts")


class ReasoningSession:
    """A live materialization of one Datalog program, updated by deltas."""

    def __init__(
        self,
        program: DatalogProgram | Iterable[Rule],
        instance: Instance | Iterable[Atom] = (),
        engine: DatalogEngine | None = None,
        *,
        defer_materialization: bool = False,
    ) -> None:
        if engine is not None:
            self._engine = engine
        else:
            if not isinstance(program, DatalogProgram):
                program = DatalogProgram(program)
            # the shared engine cache means every session over the same
            # program reuses one set of compiled join plans
            self._engine = compiled_engine(program)
        self._store: Optional[FactStore] = None
        # a *lazy* fact source (e.g. repro.kb.format.FactSegments) is kept
        # as-is instead of being flattened: demand answers on a cold session
        # then pull only the predicates their magic program demands, and the
        # remaining segments stay undecoded until the session warms
        self._lazy_source = instance if _is_lazy_fact_source(instance) else None
        self._pending: Tuple[Atom, ...] = (
            () if self._lazy_source is not None else tuple(instance)
        )
        self._rounds = 0
        self._derived = 0
        self._applications = 0
        self._added_facts = 0
        self._retracted_facts = 0
        self._updates = 0
        self._retractions = 0
        self._join_stats: Dict[str, int] = {}
        self._mutation_listeners: List[Callable[["ReasoningSession", str], None]] = []
        self._demand_queries = 0
        self._demand_magic_facts = 0
        self._demand_rounds = 0
        self._demand_predicates_touched = 0
        if not defer_materialization:
            self._warm()

    def _warm(self) -> FactStore:
        """The live store, computing the initial materialization on first use."""
        store = self._store
        if store is None:
            if self._lazy_source is not None:
                seed: Iterable[Atom] = self._lazy_source.all_facts()
            else:
                seed = self._pending
            initial = self._engine.materialize(seed)
            store = self._store = initial.store
            self._pending = ()
            self._lazy_source = None
            self._rounds += initial.rounds
            self._derived += initial.derived_count
            self._applications += initial.rule_applications
            # counted directly from the store's base bookkeeping, not by
            # subtracting derived_count from the store size: the subtraction
            # miscounts duplicated inputs and goes stale once retraction
            # shrinks the store
            self._added_facts += initial.store.base_count
            JoinPlanStats.merge_snapshot(self._join_stats, initial.join_stats)
        return store

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def program(self) -> DatalogProgram:
        return self._engine.program

    @property
    def store(self) -> FactStore:
        """The live store (mutated by :meth:`add_facts`/:meth:`retract_facts`).

        Accessing it warms a cold session (full materialization).
        """
        return self._warm()

    @property
    def is_cold(self) -> bool:
        """``True`` until the full materialization has been computed.

        Sessions opened with ``defer_materialization=True`` start cold and
        stay cold across demand-driven answers; any materialized-path access
        (mutations, snapshots, materialized answers, the store itself) warms
        them permanently.
        """
        return self._store is None

    @property
    def update_count(self) -> int:
        """Number of :meth:`add_facts` calls served so far."""
        return self._updates

    @property
    def retraction_count(self) -> int:
        """Number of :meth:`retract_facts` calls served so far."""
        return self._retractions

    @property
    def derived_count(self) -> int:
        """Total facts inferred over the session's lifetime.

        A lifetime counter: it never decreases, even when retraction later
        removes some of those inferences again.  The live store composition
        is :attr:`base_fact_count` plus ``len(session) - base_fact_count``.
        """
        return self._derived

    @property
    def added_facts(self) -> int:
        """Total input facts accepted (initial instance plus all deltas).

        Lifetime counter, tracked directly from the engine's per-call
        reports; see :attr:`base_fact_count` for the live number of
        currently-asserted facts.
        """
        return self._added_facts

    @property
    def retracted_facts(self) -> int:
        """Total base facts un-asserted over the session's lifetime."""
        return self._retracted_facts

    @property
    def base_fact_count(self) -> int:
        """Currently-asserted base facts (survivors of every add/retract)."""
        if self._store is None:
            if self._lazy_source is not None:
                # segments are deduplicated on save, so the declared total
                # is exact and costs no decoding
                return len(self._lazy_source)
            return len(set(self._pending))
        return self._store.base_count

    @property
    def generation(self) -> int:
        """Monotone mutation counter: bumps on every add/retract call.

        Two reads of the session with the same generation are guaranteed to
        see the same materialization, which is what answer caches key on —
        see :class:`repro.serve.cache.AnswerCache`.
        """
        return self._updates + self._retractions

    def add_mutation_listener(
        self, listener: Callable[["ReasoningSession", str], None]
    ) -> None:
        """Register ``listener(session, kind)`` to fire after every mutation.

        ``kind`` is ``"add"`` or ``"retract"``.  Listeners run after the
        store has reached the post-mutation fixpoint (so reading answers
        from inside a listener is safe) and before the mutating call
        returns.  The serving layer uses this as its cache-invalidation
        hook (:meth:`repro.serve.cache.AnswerCache.watch_session`).
        """
        self._mutation_listeners.append(listener)

    def _notify_mutation(self, kind: str) -> None:
        for listener in self._mutation_listeners:
            listener(self, kind)

    @property
    def join_stats(self) -> dict:
        """Cumulative join-plan counters over the session's lifetime.

        Sums the per-call snapshots of the initial materialization and every
        delta propagation (``batches``, ``probes``, ``probe_hits``,
        ``rows_emitted``, and the short-circuit counts), with ``hit_rate``
        recomputed over the totals.
        """
        return JoinPlanStats.with_hit_rate(dict(self._join_stats))

    def __len__(self) -> int:
        return len(self._warm())

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._warm()

    def facts(self) -> FrozenSet[Atom]:
        return self._warm().facts()

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def add_facts(self, facts: Instance | Iterable[Atom]) -> DeltaUpdateResult:
        """Add base facts and propagate their consequences incrementally.

        Facts already present (base or previously derived) are ignored.  The
        returned :class:`DeltaUpdateResult` reports how many input facts were
        new, how many further facts the delta propagation inferred, and the
        rounds/rule applications it took.  The propagation always runs to
        fixpoint — a truncated update would poison every later answer.
        """
        result = self._engine.extend(self._warm(), facts)
        self._rounds += result.rounds
        self._derived += result.derived_count
        self._applications += result.rule_applications
        self._added_facts += result.added_facts
        self._updates += 1
        JoinPlanStats.merge_snapshot(self._join_stats, result.join_stats)
        self._notify_mutation("add")
        return result

    def add_fact(self, fact: Atom) -> DeltaUpdateResult:
        """Convenience wrapper for a single-fact delta."""
        return self.add_facts((fact,))

    def retract_facts(self, facts: Instance | Iterable[Atom]) -> RetractionResult:
        """Un-assert base facts and unwind their consequences incrementally.

        Runs DRed (delete/re-derive) through the same compiled join plans as
        :meth:`add_facts` — see :meth:`DatalogEngine.retract` for the passes
        and the resulting :class:`RetractionResult` counters.  The contract
        for inputs that cannot be retracted: facts never added and facts
        present only as derivations are *ignored* (reported via
        ``ignored_facts``), never an error — retraction removes assertions,
        and whatever stays entailed by the surviving assertions stays in the
        store.
        """
        result = self._engine.retract(self._warm(), facts)
        self._rounds += result.rounds
        self._applications += result.rule_applications
        self._retracted_facts += result.retracted_facts
        self._retractions += 1
        JoinPlanStats.merge_snapshot(self._join_stats, result.join_stats)
        self._notify_mutation("retract")
        return result

    def retract_fact(self, fact: Atom) -> RetractionResult:
        """Convenience wrapper for a single-fact retraction."""
        return self.retract_facts((fact,))

    # ------------------------------------------------------------------
    # query answering
    # ------------------------------------------------------------------
    def resolve_strategy(
        self, query: ConjunctiveQuery, options: Optional[QueryOptions] = None
    ) -> str:
        """The effective strategy for a query: ``"materialized"`` or ``"demand"``.

        ``auto`` resolves to ``demand`` exactly when the session is cold and
        the query carries at least one bound argument; answering a
        materialized-resolved query warms the session, so later ``auto``
        queries in the same batch resolve to ``materialized``.
        """
        strategy = options.strategy if options is not None else "auto"
        if strategy == "auto":
            if self.is_cold and query_has_bound_arguments(query):
                return "demand"
            return "materialized"
        return strategy

    def _current_base_facts(self) -> "Iterable[Atom]":
        """The currently-asserted base facts, without warming a cold session.

        On a cold session over a lazy source this returns the source itself,
        so the demand path (:func:`repro.datalog.magic.demand_answer`) can
        restrict itself to the predicates its magic program demands.
        """
        if self._store is None:
            if self._lazy_source is not None:
                return self._lazy_source
            return self._pending
        return tuple(self._store.base_facts())

    def _answer_demand(self, query: ConjunctiveQuery) -> FrozenSet[Tuple[Term, ...]]:
        result = demand_answer(
            self._engine.program, self._current_base_facts(), query
        )
        self._demand_queries += 1
        self._demand_magic_facts += result.report.magic_facts
        self._demand_rounds += result.report.rounds
        self._demand_predicates_touched = max(
            self._demand_predicates_touched, result.report.predicates_touched
        )
        return result.answers

    @property
    def demand_stats(self) -> Dict[str, int]:
        """Cumulative counters for demand-driven answers on this session.

        ``queries`` demand evaluations served; ``magic_facts`` and ``rounds``
        summed over them; ``predicates_touched`` the worst case (maximum)
        demand footprint in original predicates, against
        ``predicates_total``.  See :mod:`repro.datalog.magic` for how to
        read the footprint counters.
        """
        return {
            "queries": self._demand_queries,
            "magic_facts": self._demand_magic_facts,
            "rounds": self._demand_rounds,
            "predicates_touched": self._demand_predicates_touched,
            "predicates_total": len(self._engine.program.predicates()),
        }

    def answer(
        self,
        query: ConjunctiveQuery,
        *,
        options: Optional[QueryOptions] = None,
    ) -> FrozenSet[Tuple[Term, ...]]:
        """Certain answers of one existential-free conjunctive query.

        Answers are strategy-invariant; ``options`` only chooses how much
        work is done (see :class:`~repro.datalog.query.QueryOptions`).
        """
        if self.resolve_strategy(query, options) == "demand":
            return self._answer_demand(query)
        return evaluate_query(query, self._warm())

    def answer_many(
        self,
        queries: Sequence[ConjunctiveQuery],
        *,
        options: Optional[QueryOptions] = None,
    ) -> Tuple[FrozenSet[Tuple[Term, ...]], ...]:
        """Batched evaluation: one answer set per query, in input order.

        All materialized-strategy queries run against the same live
        materialization, so a batch pays the (already-amortized) fixpoint
        exactly once.  Duplicate queries within a batch are evaluated once
        and fanned out — the serving layer's micro-batcher leans on this to
        amortize plan probes across concurrent requests asking the same
        thing.  Strategies resolve per query in input order: once one query
        warms the session, later ``auto`` queries go materialized.
        """
        evaluated: Dict[ConjunctiveQuery, FrozenSet[Tuple[Term, ...]]] = {}
        for query in queries:
            if query not in evaluated:
                if self.resolve_strategy(query, options) == "demand":
                    evaluated[query] = self._answer_demand(query)
                else:
                    evaluated[query] = evaluate_query(query, self._warm())
        return tuple(evaluated[query] for query in queries)

    def entails(self, fact: Atom) -> bool:
        """Decide ``I, Σ |= F`` for a base fact over the live materialization."""
        if not fact.is_base_fact:
            raise ValueError("entailment is defined for base facts only")
        return fact in self._warm()

    def certain_base_facts(self) -> FrozenSet[Atom]:
        """All base facts of the live materialization."""
        return frozenset(fact for fact in self._warm() if fact.is_base_fact)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> MaterializationResult:
        """An immutable view of the current materialization.

        The store is copied, so later :meth:`add_facts` calls do not leak
        into the snapshot.  The bookkeeping fields report the session's
        cumulative totals (rounds, derived facts, rule applications).
        """
        return MaterializationResult(
            store=self._warm().copy(),
            rounds=self._rounds,
            derived_count=self._derived,
            rule_applications=self._applications,
        )

    def __repr__(self) -> str:
        if self._store is None:
            pending = (
                len(self._lazy_source)
                if self._lazy_source is not None
                else len(self._pending)
            )
            return (
                f"ReasoningSession({len(self.program)} rules, cold, "
                f"{pending} pending base facts)"
            )
        return (
            f"ReasoningSession({len(self.program)} rules, {len(self._store)} facts, "
            f"{self._updates} updates, {self._retractions} retractions)"
        )
