"""A semi-naive Datalog engine: programs, fact stores, materialization, queries."""

from .engine import DatalogEngine, MaterializationResult, materialize
from .index import FactStore
from .program import DatalogProgram, DatalogValidationError
from .query import (
    ConjunctiveQuery,
    QueryValidationError,
    boolean_query_holds,
    evaluate_query,
)

__all__ = [
    "ConjunctiveQuery",
    "DatalogEngine",
    "DatalogProgram",
    "DatalogValidationError",
    "FactStore",
    "MaterializationResult",
    "QueryValidationError",
    "boolean_query_holds",
    "evaluate_query",
    "materialize",
]
