"""A semi-naive Datalog engine: programs, fact stores, materialization, queries."""

from .engine import (
    DatalogEngine,
    DeltaUpdateResult,
    MaterializationResult,
    RetractionResult,
    compiled_engine,
    materialize,
    naive_reference_fixpoint,
)
from .index import FactStore
from .magic import (
    DemandAnswer,
    DemandReport,
    MagicProgram,
    demand_answer,
    magic_transform,
    query_has_bound_arguments,
)
from .plan import BindingBatch, JoinPlanStats, PlanVariant, RulePlan
from .program import DatalogProgram, DatalogValidationError
from .query import (
    ConjunctiveQuery,
    QueryOptions,
    QueryValidationError,
    QUERY_STRATEGIES,
    boolean_query_holds,
    evaluate_query,
    parse_query,
)
from .session import ReasoningSession

__all__ = [
    "BindingBatch",
    "ConjunctiveQuery",
    "DatalogEngine",
    "DatalogProgram",
    "DatalogValidationError",
    "DeltaUpdateResult",
    "DemandAnswer",
    "DemandReport",
    "FactStore",
    "JoinPlanStats",
    "MagicProgram",
    "MaterializationResult",
    "PlanVariant",
    "QUERY_STRATEGIES",
    "QueryOptions",
    "QueryValidationError",
    "ReasoningSession",
    "RetractionResult",
    "RulePlan",
    "boolean_query_holds",
    "compiled_engine",
    "demand_answer",
    "evaluate_query",
    "magic_transform",
    "materialize",
    "naive_reference_fixpoint",
    "parse_query",
    "query_has_bound_arguments",
]
