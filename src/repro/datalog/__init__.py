"""A semi-naive Datalog engine: programs, fact stores, materialization, queries."""

from .engine import (
    DatalogEngine,
    DeltaUpdateResult,
    MaterializationResult,
    materialize,
)
from .index import FactStore
from .program import DatalogProgram, DatalogValidationError
from .query import (
    ConjunctiveQuery,
    QueryValidationError,
    boolean_query_holds,
    evaluate_query,
    parse_query,
)
from .session import ReasoningSession

__all__ = [
    "ConjunctiveQuery",
    "DatalogEngine",
    "DatalogProgram",
    "DatalogValidationError",
    "DeltaUpdateResult",
    "FactStore",
    "MaterializationResult",
    "QueryValidationError",
    "ReasoningSession",
    "boolean_query_holds",
    "evaluate_query",
    "materialize",
    "parse_query",
]
