"""A semi-naive Datalog engine: programs, fact stores, materialization, queries."""

from .engine import (
    DatalogEngine,
    DeltaUpdateResult,
    MaterializationResult,
    RetractionResult,
    compiled_engine,
    materialize,
    naive_reference_fixpoint,
)
from .index import FactStore
from .plan import BindingBatch, JoinPlanStats, PlanVariant, RulePlan
from .program import DatalogProgram, DatalogValidationError
from .query import (
    ConjunctiveQuery,
    QueryValidationError,
    boolean_query_holds,
    evaluate_query,
    parse_query,
)
from .session import ReasoningSession

__all__ = [
    "BindingBatch",
    "ConjunctiveQuery",
    "DatalogEngine",
    "DatalogProgram",
    "DatalogValidationError",
    "DeltaUpdateResult",
    "FactStore",
    "JoinPlanStats",
    "MaterializationResult",
    "PlanVariant",
    "QueryValidationError",
    "ReasoningSession",
    "RetractionResult",
    "RulePlan",
    "boolean_query_holds",
    "compiled_engine",
    "evaluate_query",
    "materialize",
    "naive_reference_fixpoint",
    "parse_query",
]
