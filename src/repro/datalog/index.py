"""Compatibility re-export: the fact store lives in :mod:`repro.datalog.store`.

The object-encoded store that used to live here was replaced by the
ID-encoded columnar store (terms mapped to dense ints at the boundary,
relations held as int-tuple rows with int-keyed hash indexes).  The public
surface is unchanged — every historical ``from repro.datalog.index import
FactStore`` keeps working — but new code should import from
:mod:`repro.datalog.store`, which also exposes the row-level API and the
:class:`~repro.datalog.store.TermTable`.
"""

from .store import FactStore, Row, TermTable, row_key

__all__ = ["FactStore", "Row", "TermTable", "row_key"]
