"""Fact storage with join indexes for bottom-up Datalog evaluation.

The store keeps, per predicate, the set of facts plus two kinds of indexes:

* a *position index* from ``(argument position, ground term)`` to the facts
  having that term at that position — used by :meth:`candidates` for
  tuple-at-a-time matching of partially bound atoms; and
* *multi-column key indexes* (:meth:`key_index`) from a tuple of argument
  positions to a hash map ``key -> [facts]`` — the probe side of the
  compiled hash-join plans in :mod:`repro.datalog.plan`.  Key indexes are
  built lazily on first use and maintained incrementally by :meth:`add` and
  :meth:`remove`, so a plan compiled once probes a live index across every
  semi-naive round, delta update, and retraction.

Base/derived bookkeeping (DRed support)
---------------------------------------

For incremental deletion the store distinguishes *base* facts (asserted by
the caller — the EDB, self-supported) from *derived* facts (inferred by the
engine).  The invariants are:

* every base fact is in the store (``base_facts() ⊆ facts()``); derived
  facts are exactly ``facts() - base_facts()``;
* base facts are never over-deleted by :meth:`DatalogEngine.retract` — a
  derived fact's "support" is recorded as the overapproximation *"some rule
  body over the remaining facts derives it"*, re-checked during the
  re-derivation pass, rather than as per-derivation counters;
* a fact can be base *and* derivable: asserting an already-derived fact
  marks it base (it then survives retraction of its derivers), and
  retracting a base fact that is still derivable demotes it to derived
  instead of deleting it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.substitution import Substitution
from ..logic.terms import Term, Variable


def _key_of(args: Tuple[Term, ...], positions: Tuple[int, ...]) -> object:
    """The probe key of a fact for the given positions.

    Single-column keys are the bare term (no tuple allocation); wider keys
    are tuples of terms.  Terms are interned, so hashing is a cached lookup.
    """
    if len(positions) == 1:
        return args[positions[0]]
    return tuple(args[position] for position in positions)


class FactStore:
    """An indexed set of ground facts."""

    __slots__ = ("_by_predicate", "_position_index", "_key_indexes", "_size", "_base")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._by_predicate: Dict[Predicate, Set[Atom]] = defaultdict(set)
        self._position_index: Dict[Tuple[Predicate, int, Term], Set[Atom]] = (
            defaultdict(set)
        )
        # predicate -> positions tuple -> key -> facts; see key_index()
        self._key_indexes: Dict[
            Predicate, Dict[Tuple[int, ...], Dict[object, List[Atom]]]
        ] = {}
        self._size = 0
        # facts asserted by the caller rather than inferred; see module docstring
        self._base: Set[Atom] = set()
        self.add_all(facts, base=True)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Add a fact; return ``True`` if it was new."""
        if not fact.is_ground:
            raise ValueError(f"fact stores hold ground facts only, got {fact}")
        relation = self._by_predicate[fact.predicate]
        if fact in relation:
            return False
        relation.add(fact)
        args = fact.args
        for position, term in enumerate(args):
            self._position_index[(fact.predicate, position, term)].add(fact)
        key_indexes = self._key_indexes.get(fact.predicate)
        if key_indexes:
            for positions, index in key_indexes.items():
                key = _key_of(args, positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [fact]
                else:
                    bucket.append(fact)
        self._size += 1
        return True

    def add_all(self, facts: Iterable[Atom], base: bool = False) -> int:
        """Add many facts; return how many were new.

        With ``base=True`` every fact is also marked base — including facts
        already present as derived, which an assertion promotes to base.
        """
        added = 0
        for fact in facts:
            if self.add(fact):
                added += 1
            if base:
                self._base.add(fact)
        return added

    def mark_base(self, fact: Atom) -> bool:
        """Mark a stored fact as base; return ``True`` if it was derived before."""
        if fact not in self:
            raise KeyError(f"cannot mark a fact not in the store as base: {fact}")
        if fact in self._base:
            return False
        self._base.add(fact)
        return True

    def unmark_base(self, fact: Atom) -> bool:
        """Demote a fact from base to derived; return ``True`` if it was base."""
        if fact in self._base:
            self._base.discard(fact)
            return True
        return False

    def remove(self, fact: Atom) -> bool:
        """Remove a fact, maintaining every index; return ``True`` if present.

        Position-index entries and key-index buckets are trimmed (and
        dropped when emptied) so later probes stay exact; base marking, if
        any, is discarded with the fact.
        """
        relation = self._by_predicate.get(fact.predicate)
        if relation is None or fact not in relation:
            return False
        relation.discard(fact)
        args = fact.args
        for position, term in enumerate(args):
            entry = (fact.predicate, position, term)
            bucket = self._position_index.get(entry)
            if bucket is not None:
                bucket.discard(fact)
                if not bucket:
                    del self._position_index[entry]
        key_indexes = self._key_indexes.get(fact.predicate)
        if key_indexes:
            for positions, index in key_indexes.items():
                key = _key_of(args, positions)
                key_bucket = index.get(key)
                if key_bucket is not None:
                    try:
                        key_bucket.remove(fact)
                    except ValueError:
                        pass
                    if not key_bucket:
                        del index[key]
        self._base.discard(fact)
        self._size -= 1
        return True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return fact in self._by_predicate.get(fact.predicate, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for relation in self._by_predicate.values():
            yield from relation

    def facts(self) -> FrozenSet[Atom]:
        return frozenset(self)

    def is_base(self, fact: Atom) -> bool:
        """``True`` if the fact was asserted (not merely derived)."""
        return fact in self._base

    @property
    def base_count(self) -> int:
        return len(self._base)

    @property
    def derived_count(self) -> int:
        """Stored facts that are not base (inferred-only)."""
        return self._size - len(self._base)

    def base_facts(self) -> FrozenSet[Atom]:
        """The asserted (EDB) facts — what a from-scratch rebuild would start from."""
        return frozenset(self._base)

    def predicates(self) -> Tuple[Predicate, ...]:
        return tuple(self._by_predicate)

    def relation(self, predicate: Predicate) -> FrozenSet[Atom]:
        return frozenset(self._by_predicate.get(predicate, ()))

    def relation_facts(self, predicate: Predicate) -> Iterable[Atom]:
        """The live relation of a predicate, without a defensive copy.

        Callers must not mutate the store while iterating; the plan executor
        only reads between mutations, which is exactly the semi-naive
        commit-then-evaluate discipline.
        """
        return self._by_predicate.get(predicate, ())

    def count(self, predicate: Predicate) -> int:
        return len(self._by_predicate.get(predicate, ()))

    def key_index(
        self, predicate: Predicate, positions: Tuple[int, ...]
    ) -> Dict[object, List[Atom]]:
        """The hash index of a relation over the given argument positions.

        Built on first request by a plan step and kept incrementally
        up-to-date by :meth:`add`; the mapping is ``key -> [facts]`` where the
        key is the bare term for single-column indexes and a tuple of terms
        otherwise (see :func:`_key_of`).
        """
        per_predicate = self._key_indexes.get(predicate)
        if per_predicate is None:
            per_predicate = self._key_indexes[predicate] = {}
        index = per_predicate.get(positions)
        if index is None:
            index = {}
            for fact in self._by_predicate.get(predicate, ()):
                key = _key_of(fact.args, positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [fact]
                else:
                    bucket.append(fact)
            per_predicate[positions] = index
        return index

    def candidates(
        self, atom: Atom, substitution: Optional[Substitution] = None
    ) -> Iterable[Atom]:
        """Facts that could match the (possibly partially bound) atom.

        The most selective position index available under the current
        substitution is used; if no argument is bound, the whole relation is
        returned.
        """
        relation = self._by_predicate.get(atom.predicate)
        if not relation:
            return ()
        best: Optional[Set[Atom]] = None
        for position, arg in enumerate(atom.args):
            term: Optional[Term]
            if isinstance(arg, Variable):
                term = substitution.get(arg) if substitution else None
            else:
                term = arg
            if term is None or not term.is_ground:
                continue
            candidates = self._position_index.get((atom.predicate, position, term))
            if candidates is None:
                return ()
            if best is None or len(candidates) < len(best):
                best = candidates
        return best if best is not None else relation

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def copy(self) -> "FactStore":
        clone = FactStore()
        for fact in self:
            clone.add(fact)
        clone._base.update(self._base)
        return clone

    def counts_by_predicate(self) -> Dict[Predicate, int]:
        return {pred: len(rel) for pred, rel in self._by_predicate.items()}
