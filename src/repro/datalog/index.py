"""Fact storage with join indexes for bottom-up Datalog evaluation.

The store keeps, per predicate, the set of facts plus an index from
``(argument position, ground term)`` to the facts having that term at that
position.  Body atoms with partially bound arguments can then retrieve a
small candidate set instead of scanning the whole relation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.substitution import Substitution
from ..logic.terms import Term, Variable


class FactStore:
    """An indexed set of ground facts."""

    __slots__ = ("_by_predicate", "_position_index", "_size")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._by_predicate: Dict[Predicate, Set[Atom]] = defaultdict(set)
        self._position_index: Dict[Tuple[Predicate, int, Term], Set[Atom]] = (
            defaultdict(set)
        )
        self._size = 0
        self.add_all(facts)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Add a fact; return ``True`` if it was new."""
        if not fact.is_ground:
            raise ValueError(f"fact stores hold ground facts only, got {fact}")
        relation = self._by_predicate[fact.predicate]
        if fact in relation:
            return False
        relation.add(fact)
        for position, term in enumerate(fact.args):
            self._position_index[(fact.predicate, position, term)].add(fact)
        self._size += 1
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Add many facts; return how many were new."""
        added = 0
        for fact in facts:
            if self.add(fact):
                added += 1
        return added

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return fact in self._by_predicate.get(fact.predicate, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for relation in self._by_predicate.values():
            yield from relation

    def facts(self) -> FrozenSet[Atom]:
        return frozenset(self)

    def predicates(self) -> Tuple[Predicate, ...]:
        return tuple(self._by_predicate)

    def relation(self, predicate: Predicate) -> FrozenSet[Atom]:
        return frozenset(self._by_predicate.get(predicate, ()))

    def count(self, predicate: Predicate) -> int:
        return len(self._by_predicate.get(predicate, ()))

    def candidates(
        self, atom: Atom, substitution: Optional[Substitution] = None
    ) -> Iterable[Atom]:
        """Facts that could match the (possibly partially bound) atom.

        The most selective position index available under the current
        substitution is used; if no argument is bound, the whole relation is
        returned.
        """
        relation = self._by_predicate.get(atom.predicate)
        if not relation:
            return ()
        best: Optional[Set[Atom]] = None
        for position, arg in enumerate(atom.args):
            term: Optional[Term]
            if isinstance(arg, Variable):
                term = substitution.get(arg) if substitution else None
            else:
                term = arg
            if term is None or not term.is_ground:
                continue
            candidates = self._position_index.get((atom.predicate, position, term))
            if candidates is None:
                return ()
            if best is None or len(candidates) < len(best):
                best = candidates
        return best if best is not None else relation

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def copy(self) -> "FactStore":
        clone = FactStore()
        for fact in self:
            clone.add(fact)
        return clone

    def counts_by_predicate(self) -> Dict[Predicate, int]:
        return {pred: len(rel) for pred, rel in self._by_predicate.items()}
