"""Unification indexes for TGD-based inference rules (Section 6).

For TGDs, the paper maintains one hash table mapping each relation to the
TGDs containing it in the body, and another mapping each relation to the TGDs
containing it in the head.  Given a newly processed TGD, the partners that
could participate in an ExbDR (or FullDR) inference with it are retrieved by
looking up the relations of its head (to find full TGDs whose body mentions
them) or of its body (to find non-full TGDs whose head mentions them).

On top of the body/head tables, this implementation maintains
*fullness-split* and *guard-signature* buckets:

* full TGDs are additionally indexed by the relations of their guards, so an
  ExbDR lookup — whose unification always goes through a guard of the full
  premise (Proposition 5.7) — only meets partners whose guard relation
  actually occurs in the non-full premise's head;
* the full/non-full partner retrievals draw from pre-split buckets instead
  of filtering a mixed bucket per query.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ..logic.atoms import Predicate
from ..logic.tgd import TGD


class TGDUnificationIndex:
    """Hash-based retrieval of TGDs by body/head/guard relation."""

    def __init__(self) -> None:
        self._by_body: Dict[Predicate, Set[TGD]] = defaultdict(set)
        self._by_head: Dict[Predicate, Set[TGD]] = defaultdict(set)
        #: full TGDs keyed by body relation (PROPAGATE/COMPOSE partners)
        self._full_by_body: Dict[Predicate, Set[TGD]] = defaultdict(set)
        #: full TGDs keyed by the relations of their guards (ExbDR partners)
        self._full_by_guard: Dict[Predicate, Set[TGD]] = defaultdict(set)
        #: non-full TGDs keyed by head relation
        self._non_full_by_head: Dict[Predicate, Set[TGD]] = defaultdict(set)
        self._items: Set[TGD] = set()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, tgd: TGD) -> None:
        if tgd in self._items:
            return
        self._items.add(tgd)
        for predicate in {atom.predicate for atom in tgd.body}:
            self._by_body[predicate].add(tgd)
            if tgd.is_full:
                self._full_by_body[predicate].add(tgd)
        for predicate in {atom.predicate for atom in tgd.head}:
            self._by_head[predicate].add(tgd)
            if tgd.is_non_full:
                self._non_full_by_head[predicate].add(tgd)
        if tgd.is_full:
            for predicate in {atom.predicate for atom in tgd.guards()}:
                self._full_by_guard[predicate].add(tgd)

    def remove(self, tgd: TGD) -> None:
        if tgd not in self._items:
            return
        self._items.discard(tgd)
        # mirror add()'s fullness guards: subscripting the defaultdict for a
        # bucket the clause was never in would leave dead empty-set entries
        for atom in tgd.body:
            self._by_body[atom.predicate].discard(tgd)
            if tgd.is_full:
                self._full_by_body[atom.predicate].discard(tgd)
        for atom in tgd.head:
            self._by_head[atom.predicate].discard(tgd)
            if tgd.is_non_full:
                self._non_full_by_head[atom.predicate].discard(tgd)
        if tgd.is_full:
            for atom in tgd.guards():
                self._full_by_guard[atom.predicate].discard(tgd)

    def __contains__(self, tgd: TGD) -> bool:
        return tgd in self._items

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Tuple[TGD, ...]:
        return tuple(self._items)

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def with_body_predicate(self, predicate: Predicate) -> Tuple[TGD, ...]:
        """TGDs whose body mentions the given relation."""
        return tuple(self._by_body.get(predicate, ()))

    def with_head_predicate(self, predicate: Predicate) -> Tuple[TGD, ...]:
        """TGDs whose head mentions the given relation."""
        return tuple(self._by_head.get(predicate, ()))

    def full_partners_for(self, non_full: TGD) -> Tuple[TGD, ...]:
        """Full TGDs whose body shares a relation with the head of ``non_full``."""
        seen: Set[TGD] = set()
        ordered: List[TGD] = []
        for atom in non_full.head:
            for candidate in self._full_by_body.get(atom.predicate, ()):
                if candidate not in seen:
                    seen.add(candidate)
                    ordered.append(candidate)
        return tuple(ordered)

    def full_partners_by_guard(self, non_full: TGD) -> Tuple[TGD, ...]:
        """Full TGDs some guard of which shares a relation with ``non_full``'s head.

        This is the ExbDR partner signature: the unification of Definition 5.5
        always unifies a guard of the full premise with a head atom of the
        non-full premise, so partners whose guards mention none of the head
        relations can be skipped without looking at them.
        """
        seen: Set[TGD] = set()
        ordered: List[TGD] = []
        for atom in non_full.head:
            for candidate in self._full_by_guard.get(atom.predicate, ()):
                if candidate not in seen:
                    seen.add(candidate)
                    ordered.append(candidate)
        return tuple(ordered)

    def non_full_partners_for(self, full: TGD) -> Tuple[TGD, ...]:
        """Non-full TGDs whose head shares a relation with the body of ``full``."""
        seen: Set[TGD] = set()
        ordered: List[TGD] = []
        for atom in full.body:
            for candidate in self._non_full_by_head.get(atom.predicate, ()):
                if candidate not in seen:
                    seen.add(candidate)
                    ordered.append(candidate)
        return tuple(ordered)

    def non_full_partners_by_guard(self, full: TGD) -> Tuple[TGD, ...]:
        """Non-full TGDs whose head shares a relation with a *guard* of ``full``."""
        seen: Set[TGD] = set()
        ordered: List[TGD] = []
        for atom in full.guards():
            for candidate in self._non_full_by_head.get(atom.predicate, ()):
                if candidate not in seen:
                    seen.add(candidate)
                    ordered.append(candidate)
        return tuple(ordered)
