"""Unification indexes for TGD-based inference rules (Section 6).

For TGDs, the paper maintains one hash table mapping each relation to the
TGDs containing it in the body, and another mapping each relation to the TGDs
containing it in the head.  Given a newly processed TGD, the partners that
could participate in an ExbDR (or FullDR) inference with it are retrieved by
looking up the relations of its head (to find full TGDs whose body mentions
them) or of its body (to find non-full TGDs whose head mentions them).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ..logic.atoms import Predicate
from ..logic.tgd import TGD


class TGDUnificationIndex:
    """Hash-based retrieval of TGDs by body/head relation."""

    def __init__(self) -> None:
        self._by_body: Dict[Predicate, Set[TGD]] = defaultdict(set)
        self._by_head: Dict[Predicate, Set[TGD]] = defaultdict(set)
        self._items: Set[TGD] = set()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, tgd: TGD) -> None:
        if tgd in self._items:
            return
        self._items.add(tgd)
        for atom in tgd.body:
            self._by_body[atom.predicate].add(tgd)
        for atom in tgd.head:
            self._by_head[atom.predicate].add(tgd)

    def remove(self, tgd: TGD) -> None:
        if tgd not in self._items:
            return
        self._items.discard(tgd)
        for atom in tgd.body:
            self._by_body[atom.predicate].discard(tgd)
        for atom in tgd.head:
            self._by_head[atom.predicate].discard(tgd)

    def __contains__(self, tgd: TGD) -> bool:
        return tgd in self._items

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Tuple[TGD, ...]:
        return tuple(self._items)

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def with_body_predicate(self, predicate: Predicate) -> Tuple[TGD, ...]:
        """TGDs whose body mentions the given relation."""
        return tuple(self._by_body.get(predicate, ()))

    def with_head_predicate(self, predicate: Predicate) -> Tuple[TGD, ...]:
        """TGDs whose head mentions the given relation."""
        return tuple(self._by_head.get(predicate, ()))

    def full_partners_for(self, non_full: TGD) -> Tuple[TGD, ...]:
        """Full TGDs whose body shares a relation with the head of ``non_full``."""
        seen: Set[TGD] = set()
        ordered: List[TGD] = []
        for atom in non_full.head:
            for candidate in self._by_body.get(atom.predicate, ()):
                if candidate.is_full and candidate not in seen:
                    seen.add(candidate)
                    ordered.append(candidate)
        return tuple(ordered)

    def non_full_partners_for(self, full: TGD) -> Tuple[TGD, ...]:
        """Non-full TGDs whose head shares a relation with the body of ``full``."""
        seen: Set[TGD] = set()
        ordered: List[TGD] = []
        for atom in full.body:
            for candidate in self._by_head.get(atom.predicate, ()):
                if candidate.is_non_full and candidate not in seen:
                    seen.add(candidate)
                    ordered.append(candidate)
        return tuple(ordered)
