"""Path indexing of Skolemized rules (Section 6, after Stickel).

Each atom of a rule is abstracted into a *path string*: the sequence of its
relation symbol followed, per argument position, by either the marker ``*``
(a variable or constant could unify with anything function-free) or the name
of the Skolem function symbol heading that argument.  Two atoms can only
unify if their path strings are compatible: equal relation, and at every
position either at least one side is ``*`` or the function symbols agree.

Rules are entered into two tries — one over the path strings of their body
atoms and one over the path strings of their heads — so that, given an atom,
the rules having a body (respectively head) atom potentially unifiable with
it are retrieved without scanning every rule.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..logic.atoms import Atom
from ..logic.rules import Rule
from ..logic.terms import FunctionTerm

_WILDCARD = "*"


def atom_path(atom: Atom) -> Tuple[str, ...]:
    """The path string of an atom: relation name/arity then one entry per argument."""
    entries: List[str] = [f"{atom.predicate.name}/{atom.predicate.arity}"]
    for arg in atom.args:
        if isinstance(arg, FunctionTerm):
            entries.append(arg.symbol.name)
        else:
            entries.append(_WILDCARD)
    return tuple(entries)


def paths_compatible(left: Tuple[str, ...], right: Tuple[str, ...]) -> bool:
    """Necessary condition for unifiability of the underlying atoms."""
    if len(left) != len(right) or left[0] != right[0]:
        return False
    for entry_left, entry_right in zip(left[1:], right[1:]):
        if entry_left == _WILDCARD or entry_right == _WILDCARD:
            continue
        if entry_left != entry_right:
            return False
    return True


class _PathTrie:
    """A trie over path strings supporting compatible-path retrieval."""

    def __init__(self) -> None:
        self._root: Dict = {}

    def insert(self, path: Tuple[str, ...], value: Rule) -> None:
        node = self._root
        for entry in path:
            node = node.setdefault(entry, {})
        node.setdefault(None, set()).add(value)

    def remove(self, path: Tuple[str, ...], value: Rule) -> None:
        node = self._root
        stack = []
        for entry in path:
            child = node.get(entry)
            if child is None:
                return
            stack.append((node, entry))
            node = child
        values = node.get(None)
        if values is not None:
            values.discard(value)

    def compatible(self, path: Tuple[str, ...]) -> Iterator[Rule]:
        """Rules stored under path strings compatible with the query path."""

        def recurse(node: Dict, position: int) -> Iterator[Rule]:
            if position == len(path):
                values = node.get(None)
                if values:
                    yield from values
                return
            query_entry = path[position]
            for entry, child in node.items():
                if entry is None:
                    continue
                if position == 0:
                    if entry == query_entry:
                        yield from recurse(child, position + 1)
                    continue
                if (
                    entry == _WILDCARD
                    or query_entry == _WILDCARD
                    or entry == query_entry
                ):
                    yield from recurse(child, position + 1)

        yield from recurse(self._root, 0)


class RulePathIndex:
    """Retrieves rules by potentially-unifiable body or head atoms."""

    def __init__(self) -> None:
        self._body_trie = _PathTrie()
        self._head_trie = _PathTrie()
        self._items: Set[Rule] = set()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, rule: Rule) -> None:
        if rule in self._items:
            return
        self._items.add(rule)
        for atom in rule.body:
            self._body_trie.insert(atom_path(atom), rule)
        self._head_trie.insert(atom_path(rule.head), rule)

    def remove(self, rule: Rule) -> None:
        if rule not in self._items:
            return
        self._items.discard(rule)
        for atom in rule.body:
            self._body_trie.remove(atom_path(atom), rule)
        self._head_trie.remove(atom_path(rule.head), rule)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._items

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Tuple[Rule, ...]:
        return tuple(self._items)

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def rules_with_unifiable_body_atom(self, atom: Atom) -> Tuple[Rule, ...]:
        """Rules (still indexed) having a body atom potentially unifiable with ``atom``."""
        path = atom_path(atom)
        seen: Set[Rule] = set()
        ordered: List[Rule] = []
        for rule in self._body_trie.compatible(path):
            if rule in self._items and rule not in seen:
                seen.add(rule)
                ordered.append(rule)
        return tuple(ordered)

    def rules_with_unifiable_head(self, atom: Atom) -> Tuple[Rule, ...]:
        """Rules (still indexed) whose head is potentially unifiable with ``atom``."""
        path = atom_path(atom)
        seen: Set[Rule] = set()
        ordered: List[Rule] = []
        for rule in self._head_trie.compatible(path):
            if rule in self._items and rule not in seen:
                seen.add(rule)
                ordered.append(rule)
        return tuple(ordered)
