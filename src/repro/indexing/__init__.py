"""Term/clause indexing: set-tries, subsumption indexes, unification and path indexes."""

from .clustering import RelationClustering
from .feature_index import SubsumptionIndex
from .path_index import RulePathIndex, atom_path, paths_compatible
from .set_trie import SetTrie
from .unification_index import TGDUnificationIndex

__all__ = [
    "RelationClustering",
    "RulePathIndex",
    "SetTrie",
    "SubsumptionIndex",
    "TGDUnificationIndex",
    "atom_path",
    "paths_compatible",
]
