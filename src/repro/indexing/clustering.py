"""Relation clustering for subsumption indexing (Section 6).

Feature-vector subsumption indexes can become large when the input mentions
thousands of relations.  The paper groups the relation symbols into clusters
and indexes TGDs/rules by the *clusters* touched by their bodies and heads,
which shrinks the index alphabet at the price of retrieving slightly more
candidates.

The number of clusters is derived from the average numbers of relations and
atoms in the input, and relations are assigned to clusters so that the
frequency mass (number of occurrences in the input) is balanced across
clusters — an approximation of the paper's goal of balancing the number of
TGDs per leaf.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..logic.atoms import Predicate
from ..logic.rules import Rule
from ..logic.tgd import TGD


class RelationClustering:
    """Assigns each relation symbol to a small integer cluster id."""

    def __init__(self, assignment: Dict[Predicate, int], cluster_count: int) -> None:
        self._assignment = dict(assignment)
        self.cluster_count = cluster_count

    @classmethod
    def identity(cls, predicates: Iterable[Predicate]) -> "RelationClustering":
        """Trivial clustering: every relation is its own cluster."""
        assignment = {pred: index for index, pred in enumerate(sorted(
            set(predicates), key=lambda p: (p.name, p.arity)))}
        return cls(assignment, len(assignment))

    @classmethod
    def from_input(
        cls,
        items: Sequence[TGD | Rule],
        cluster_count: Optional[int] = None,
    ) -> "RelationClustering":
        """Build a clustering from the input TGDs/rules.

        The default cluster count follows the paper's heuristic: it is
        proportional to the ratio of distinct relations to average atoms per
        dependency, capped to a sane range.
        """
        occurrences: Counter = Counter()
        atom_total = 0
        for item in items:
            if isinstance(item, TGD):
                atoms = item.body + item.head
            else:
                atoms = item.body + (item.head,)
            atom_total += len(atoms)
            for atom in atoms:
                occurrences[atom.predicate] += 1
        predicates = sorted(occurrences, key=lambda p: (-occurrences[p], p.name))
        if not predicates:
            return cls({}, 0)
        if cluster_count is None:
            average_atoms = atom_total / max(len(items), 1)
            cluster_count = max(
                8, min(len(predicates), int(math.sqrt(len(predicates)) * average_atoms))
            )
        cluster_count = max(1, min(cluster_count, len(predicates)))
        # balance frequency mass greedily: assign the next most frequent
        # relation to the currently lightest cluster
        loads = [0] * cluster_count
        assignment: Dict[Predicate, int] = {}
        for predicate in predicates:
            lightest = min(range(cluster_count), key=lambda index: loads[index])
            assignment[predicate] = lightest
            loads[lightest] += occurrences[predicate]
        return cls(assignment, cluster_count)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def cluster_of(self, predicate: Predicate) -> int:
        """Cluster id of a predicate (unknown predicates get a fresh cluster)."""
        cluster = self._assignment.get(predicate)
        if cluster is None:
            cluster = self.cluster_count
            self._assignment[predicate] = cluster
            self.cluster_count += 1
        return cluster

    def clusters_of(self, predicates: Iterable[Predicate]) -> frozenset:
        return frozenset(self.cluster_of(predicate) for predicate in predicates)

    def __len__(self) -> int:
        return self.cluster_count
