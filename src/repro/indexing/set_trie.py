"""A set-trie for fast subset and superset retrieval (Savnik, used in Section 6).

The trie stores finite sets of orderable symbols.  Each set is represented as
the sorted word of its elements; retrieval of all stored sets that are
subsets (respectively supersets) of a query set walks the trie while skipping
branches that cannot lead to a result.  The rewriting engine uses this to
retrieve subsumption candidates among thousands of stored TGDs/rules without
scanning them all.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, TypeVar

Key = TypeVar("Key")
Value = TypeVar("Value")


class _Node(Generic[Key, Value]):
    __slots__ = ("children", "values")

    def __init__(self) -> None:
        self.children: Dict[Key, "_Node[Key, Value]"] = {}
        self.values: Set[Value] = set()


class SetTrie(Generic[Key, Value]):
    """Maps *sets of keys* to collections of values, with subset/superset search.

    Keys must be hashable and totally ordered by the supplied ``order``
    function (defaults to sorting the keys themselves).
    """

    def __init__(self, order=None) -> None:
        self._root: _Node[Key, Value] = _Node()
        self._order = order or (lambda key: key)
        self._size = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _word(self, keys: Iterable[Key]) -> Tuple[Key, ...]:
        return tuple(sorted(set(keys), key=self._order))

    def insert(self, keys: Iterable[Key], value: Value) -> None:
        """Associate ``value`` with the set ``keys``."""
        node = self._root
        for key in self._word(keys):
            child = node.children.get(key)
            if child is None:
                child = _Node()
                node.children[key] = child
            node = child
        if value not in node.values:
            node.values.add(value)
            self._size += 1

    def remove(self, keys: Iterable[Key], value: Value) -> bool:
        """Remove one association; return ``True`` if it was present."""
        word = self._word(keys)
        path: List[Tuple[_Node[Key, Value], Key]] = []
        node = self._root
        for key in word:
            child = node.children.get(key)
            if child is None:
                return False
            path.append((node, key))
            node = child
        if value not in node.values:
            return False
        node.values.discard(value)
        self._size -= 1
        # prune empty branches
        for parent, key in reversed(path):
            child = parent.children[key]
            if not child.values and not child.children:
                del parent.children[key]
            else:
                break
        return True

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def values(self) -> Iterator[Value]:
        """All stored values."""
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _Node[Key, Value]) -> Iterator[Value]:
        yield from node.values
        for child in node.children.values():
            yield from self._iter_node(child)

    def subsets_of(self, keys: Iterable[Key]) -> Iterator[Value]:
        """Values stored under sets that are subsets of the query set."""
        word = self._word(keys)

        def recurse(node: _Node[Key, Value], position: int) -> Iterator[Value]:
            yield from node.values
            for index in range(position, len(word)):
                child = node.children.get(word[index])
                if child is not None:
                    yield from recurse(child, index + 1)

        yield from recurse(self._root, 0)

    def supersets_of(self, keys: Iterable[Key]) -> Iterator[Value]:
        """Values stored under sets that are supersets of the query set."""
        word = self._word(keys)

        def recurse(node: _Node[Key, Value], position: int) -> Iterator[Value]:
            if position == len(word):
                yield from self._iter_node(node)
                return
            target = word[position]
            target_rank = self._order(target)
            for key, child in node.children.items():
                key_rank = self._order(key)
                if key_rank < target_rank:
                    yield from recurse(child, position)
                elif key == target:
                    yield from recurse(child, position + 1)
                # keys greater than the target cannot lead to a superset
                # because words are sorted: the target would never appear.

        yield from recurse(self._root, 0)

    def contains_set(self, keys: Iterable[Key]) -> bool:
        """``True`` if some value is stored under exactly this set."""
        node = self._root
        for key in self._word(keys):
            node = node.children.get(key)
            if node is None:
                return False
        return bool(node.values)

    def exact(self, keys: Iterable[Key]) -> Tuple[Value, ...]:
        """Values stored under exactly this set."""
        node = self._root
        for key in self._word(keys):
            node = node.children.get(key)
            if node is None:
                return ()
        return tuple(node.values)
