"""Feature-vector subsumption indexing (Section 6).

A TGD ``τ1`` can subsume ``τ2`` only if the relations of ``τ1``'s body are a
subset of those of ``τ2``'s body and the relations of ``τ1``'s head are a
superset of those of ``τ2``'s head (and analogously for rules, whose heads
are single atoms).  The index therefore stores each TGD/rule under the set of
(clustered) relation symbols of its body and retrieves

* *subsuming candidates* of a query item: stored items whose body-relation
  set is a **subset** of the query's, post-filtered by the head condition;
* *subsumed candidates* of a query item: stored items whose body-relation set
  is a **superset** of the query's, again post-filtered on heads.

The actual (exact or approximate) subsumption test is performed by the caller
on the retrieved candidates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Generic, Iterable, Iterator, Optional, Tuple, TypeVar, Union

from ..logic.atoms import Predicate
from ..logic.rules import Rule
from ..logic.tgd import TGD
from .clustering import RelationClustering
from .set_trie import SetTrie

Item = TypeVar("Item", TGD, Rule)
Clause = Union[TGD, Rule]


def _body_predicates(item: Clause) -> FrozenSet[Predicate]:
    return frozenset(atom.predicate for atom in item.body)


def _head_predicates(item: Clause) -> FrozenSet[Predicate]:
    if isinstance(item, TGD):
        return frozenset(atom.predicate for atom in item.head)
    return frozenset((item.head.predicate,))


class SubsumptionIndex(Generic[Item]):
    """Retrieves subsumption candidates among the stored TGDs/rules."""

    def __init__(self, clustering: Optional[RelationClustering] = None) -> None:
        self._clustering = clustering
        self._trie: SetTrie = SetTrie()
        self._features: Dict[Clause, Tuple[frozenset, FrozenSet[Predicate], FrozenSet[Predicate]]] = {}
        #: one-slot memo for the clause currently being queried, so the
        #: forward check, backward check, and add of one admission compute
        #: its features once without pinning discarded clauses forever
        self._last_query: Optional[Tuple[Clause, Tuple]] = None

    # ------------------------------------------------------------------
    # feature computation
    # ------------------------------------------------------------------
    def _body_key(self, predicates: FrozenSet[Predicate]) -> frozenset:
        if self._clustering is None:
            return frozenset((pred.name, pred.arity) for pred in predicates)
        return self._clustering.clusters_of(predicates)

    def _features_of(self, item: Clause, store: bool = False):
        """Feature tuple of ``item``; cached only for stored items.

        Query clauses (forward-subsumption probes that get discarded) must
        not populate the cache, or the index would pin every clause ever
        queried for the lifetime of the run.
        """
        cached = self._features.get(item)
        if cached is not None:
            return cached
        last = self._last_query
        if last is not None and last[0] is item:
            cached = last[1]
        else:
            body_preds = _body_predicates(item)
            head_preds = _head_predicates(item)
            cached = (self._body_key(body_preds), body_preds, head_preds)
            self._last_query = (item, cached)
        if store:
            self._features[item] = cached
        return cached

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, item: Item) -> None:
        body_key, _, _ = self._features_of(item, store=True)
        self._trie.insert(body_key, item)

    def remove(self, item: Item) -> None:
        features = self._features.get(item)
        if features is None:
            return
        self._trie.remove(features[0], item)
        # evict the feature cache entry so long saturation runs with heavy
        # backward subsumption do not accumulate features of dead clauses
        del self._features[item]

    def __len__(self) -> int:
        return len(self._trie)

    def __contains__(self, item: Item) -> bool:
        features = self._features.get(item)
        if features is None:
            return False
        return item in self._trie.exact(features[0])

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def subsuming_candidates(self, item: Clause) -> Iterator[Item]:
        """Stored items that could subsume ``item`` (necessary condition only)."""
        body_key, body_preds, head_preds = self._features_of(item)
        for candidate in self._trie.subsets_of(body_key):
            _, cand_body, cand_head = self._features_of(candidate)
            if not cand_body <= body_preds:
                continue
            if not cand_head >= head_preds:
                continue
            yield candidate

    def subsumed_candidates(self, item: Clause) -> Iterator[Item]:
        """Stored items that ``item`` could subsume (necessary condition only)."""
        body_key, body_preds, head_preds = self._features_of(item)
        for candidate in self._trie.supersets_of(body_key):
            _, cand_body, cand_head = self._features_of(candidate)
            if not body_preds <= cand_body:
                continue
            if not head_preds >= cand_head:
                continue
            yield candidate

    def items(self) -> Iterator[Item]:
        yield from self._trie.values()
