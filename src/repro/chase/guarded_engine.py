"""A decision procedure for GTGD fact entailment based on type closures.

The tree-like chase (Section 3) arranges derived facts into a tree whose
vertices hold *types*: finite sets of facts over at most ``hwidth(Σ)`` terms
plus the constants of Σ.  The facts derivable at a vertex depend only on the
vertex's initial type, which yields a terminating decision procedure:

* ``closure(S)`` is the least set containing ``S`` that is closed under
  (a) applications of full GTGDs and (b) the *loop rule* — for every non-full
  GTGD trigger, build the child's initial type, recursively close it, and copy
  back every derived fact that does not mention the fresh nulls.

Because types are canonicalized (labeled nulls renamed by first occurrence),
the number of distinct types is finite, so the memoized global fixpoint
terminates.  This engine is the correctness oracle against which the Datalog
rewriting algorithms are validated in the test suite; it is exponential in
``Σ`` and therefore only intended for small inputs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..logic.atoms import Atom
from ..logic.instance import Instance, guarded_subset
from ..logic.substitution import Substitution
from ..logic.terms import Constant, Null, Term, Variable
from ..logic.tgd import TGD, head_normalize, program_constants, split_full_non_full
from ..unification.solver import solve_match

TypeKey = FrozenSet[Atom]


class GuardedChaseReasoner:
    """Decides fact entailment for a fixed set of GTGDs."""

    def __init__(self, tgds: Iterable[TGD], max_types: int = 50_000) -> None:
        normalized = head_normalize(tgds)
        for tgd in normalized:
            if not tgd.is_guarded:
                raise ValueError(f"TGD is not guarded: {tgd}")
        self.tgds: Tuple[TGD, ...] = normalized
        self.full_tgds, self.non_full_tgds = split_full_non_full(normalized)
        self.sigma_constants: FrozenSet[Constant] = program_constants(normalized)
        self.max_types = max_types
        self._cache: Dict[TypeKey, Set[Atom]] = {}
        self._null_counter = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def saturate(self, instance: Instance | Iterable[Atom]) -> FrozenSet[Atom]:
        """All facts derivable at the root vertex for the given base instance."""
        root_facts = frozenset(instance)
        self._cache = {}
        changed = True
        while changed:
            self._round_changed = False
            self._visited_this_round: Set[TypeKey] = set()
            self._closure(root_facts)
            changed = self._round_changed
        return self._lookup(root_facts)

    def entailed_base_facts(
        self, instance: Instance | Iterable[Atom]
    ) -> FrozenSet[Atom]:
        """The base facts entailed by the instance and the GTGDs."""
        return frozenset(
            fact for fact in self.saturate(instance) if fact.is_base_fact
        )

    def entails(self, instance: Instance | Iterable[Atom], fact: Atom) -> bool:
        """Decide ``I, Σ |= F`` for a base fact ``F``."""
        if not fact.is_base_fact:
            raise ValueError("entailment is defined for base facts only")
        return fact in self.saturate(instance)

    # ------------------------------------------------------------------
    # canonicalization of types
    # ------------------------------------------------------------------
    @staticmethod
    def _canonical_key(facts: FrozenSet[Atom]) -> Tuple[TypeKey, Dict[Null, Null]]:
        """Rename labeled nulls canonically; return the key and the renaming."""
        ordered = sorted(facts, key=str)
        mapping: Dict[Null, Null] = {}

        def rename_term(term: Term) -> Term:
            if isinstance(term, Null):
                renamed = mapping.get(term)
                if renamed is None:
                    renamed = Null(len(mapping))
                    mapping[term] = renamed
                return renamed
            return term

        canonical = frozenset(
            Atom(fact.predicate, tuple(rename_term(arg) for arg in fact.args))
            for fact in ordered
        )
        return canonical, mapping

    @staticmethod
    def _apply_null_renaming(
        facts: Iterable[Atom], renaming: Dict[Null, Null]
    ) -> FrozenSet[Atom]:
        def rename_term(term: Term) -> Term:
            if isinstance(term, Null):
                return renaming.get(term, term)
            return term

        return frozenset(
            Atom(fact.predicate, tuple(rename_term(arg) for arg in fact.args))
            for fact in facts
        )

    def _lookup(self, facts: FrozenSet[Atom]) -> FrozenSet[Atom]:
        key, mapping = self._canonical_key(facts)
        closure = self._cache.get(key, set(key))
        inverse = {canonical: original for original, canonical in mapping.items()}
        return self._apply_null_renaming(closure, inverse)

    # ------------------------------------------------------------------
    # the fixpoint
    # ------------------------------------------------------------------
    def _fresh_null(self) -> Null:
        self._null_counter += 1
        return Null(1_000_000 + self._null_counter)

    def _closure(self, facts: FrozenSet[Atom]) -> FrozenSet[Atom]:
        """Compute (one round of) the closure of a type, using cached children."""
        key, mapping = self._canonical_key(facts)
        inverse = {canonical: original for original, canonical in mapping.items()}
        if key in self._visited_this_round:
            closure = self._cache.get(key, set(key))
            return self._apply_null_renaming(closure, inverse)
        self._visited_this_round.add(key)
        if len(self._cache) > self.max_types:
            raise RuntimeError(
                "type limit exceeded; the oracle is intended for small inputs only"
            )

        cached = self._cache.get(key)
        if cached is None:
            current: Set[Atom] = set(facts)
        else:
            # cached closures are stored in canonical null naming; translate
            # them back into the caller's naming before extending them
            current = set(self._apply_null_renaming(cached, inverse))
        changed = True
        while changed:
            changed = False
            # (a) full GTGDs applied inside the vertex
            for tgd in self.full_tgds:
                for substitution in self._body_matches(tgd.body, current):
                    head_fact = substitution.apply_atom(tgd.head[0])
                    if head_fact not in current:
                        current.add(head_fact)
                        changed = True
            # (b) loops through children created by non-full GTGDs
            for tgd in self.non_full_tgds:
                for substitution in self._body_matches(tgd.body, current):
                    extension = {
                        var: self._fresh_null() for var in tgd.existential_variables
                    }
                    extended = Substitution(
                        {**dict(substitution.items()), **extension}
                    )
                    head_facts = frozenset(extended.apply_atoms(tgd.head))
                    fresh_nulls = frozenset(extension.values())
                    inherited = guarded_subset(
                        current, head_facts, self.sigma_constants
                    )
                    child_type = head_facts | frozenset(inherited)
                    child_closure = self._closure(child_type)
                    for fact in child_closure:
                        # null_set() is cached on the interned atom, so this
                        # per-fact freshness test is one set intersection
                        # instead of re-walking the argument terms
                        if not fresh_nulls.isdisjoint(fact.null_set()):
                            continue
                        if fact not in current:
                            current.add(fact)
                            changed = True

        canonical_closure = self._apply_null_renaming(current, mapping)
        previous = self._cache.get(key)
        if previous is None or not canonical_closure <= previous:
            merged = set(previous or ()) | set(canonical_closure)
            self._cache[key] = merged
            self._round_changed = True
        return frozenset(current)

    # ------------------------------------------------------------------
    # body matching over a fact set
    # ------------------------------------------------------------------
    @staticmethod
    def _body_matches(
        body: Tuple[Atom, ...], facts: Set[Atom]
    ) -> Iterable[Substitution]:
        """All body matches into the current fact set, via the shared solver.

        The solver snapshots the fact set on entry, so facts added while a
        fixpoint round pulls matches are seen by the next round.
        """
        return solve_match(body, facts)
