"""A decision procedure for GTGD fact entailment based on type closures.

The tree-like chase (Section 3) arranges derived facts into a tree whose
vertices hold *types*: finite sets of facts over at most ``hwidth(Σ)`` terms
plus the constants of Σ.  The facts derivable at a vertex depend only on the
vertex's initial type, which yields a terminating decision procedure:

* ``closure(S)`` is the least set containing ``S`` that is closed under
  (a) applications of full GTGDs and (b) the *loop rule* — for every non-full
  GTGD trigger, build the child's initial type, recursively close it, and copy
  back every derived fact that does not mention the fresh nulls.

Because types are canonicalized (labeled nulls renamed by first occurrence),
the number of distinct types is finite, so the memoized global fixpoint
terminates.  This engine is the correctness oracle against which the Datalog
rewriting algorithms are validated in the test suite; it is exponential in
``Σ`` and therefore only intended for small inputs.

Two implementations live here:

* :class:`GuardedChaseReasoner` — the incremental engine: a *dirty-type
  worklist* drives the global fixpoint, every type tracks a per-type delta
  (facts whose consequences have not been explored yet), and full-TGD /
  trigger matches are computed against the delta pivot instead of the whole
  type.  Cross-type dependencies are recorded as *edges* (child type →
  parent type, with the null translation and the trigger's fresh nulls), so
  when a child's closure grows only its registered parents are re-queued —
  the pre-change engine instead re-walked the entire tree of types once per
  global round.  Types are processed directly in their canonical null
  naming, so each type is canonicalized once per trigger firing (with
  per-atom rendered strings cached on the interned atoms) and the
  canonical/original inverse renaming is built exactly once per
  canonicalization.
* :class:`ReferenceGuardedReasoner` — the pre-change recursive engine,
  retained verbatim as the executable specification: the differential tests
  check the worklist engine against it, and the ``guarded_oracle`` perf
  scenario measures ``speedup_vs_pre_change`` against it on the same
  machine in the same process.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance, guarded_subset
from ..logic.substitution import Substitution
from ..logic.terms import Constant, Null, Term
from ..logic.tgd import TGD, head_normalize, program_constants, split_full_non_full
from ..unification.matching import match_atom
from ..unification.solver import solve_match

TypeKey = FrozenSet[Atom]

#: child-to-parent dependency edge: (parent key, canonical-to-parent null
#: translation, child-canonical nulls blocked from export — the trigger's
#: fresh nulls)
_Edge = Tuple[TypeKey, Dict[Null, Null], FrozenSet[Null]]


class GuardedEngineStats:
    """Cumulative counters for the worklist engine (the ``chase_plan`` block
    of the ``guarded_oracle`` perf scenario).

    * ``types_closed`` — distinct types created and closed over the engine's
      lifetime; ``types_reused`` counts trigger firings whose child type
      already existed, so its cached closure was imported instead of being
      re-derived — the memoization hit rate of the type table;
    * ``processes`` — worklist pops that had pending work; ``rounds`` is the
      total number of per-type delta iterations across them, and
      ``delta_facts`` / ``max_delta`` describe the deltas those rounds
      explored (each fact of each type enters its delta exactly once);
    * ``trigger_firings`` — non-full TGD triggers fired (children built);
    * ``imports`` — facts copied from a child closure into a parent type.
    """

    __slots__ = (
        "types_closed",
        "types_reused",
        "processes",
        "rounds",
        "delta_facts",
        "max_delta",
        "trigger_firings",
        "imports",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def _canonicalize(
    facts: FrozenSet[Atom],
) -> Tuple[TypeKey, Dict[Null, Null], Dict[Null, Null]]:
    """Rename labeled nulls by first occurrence in a deterministic fact order.

    Returns ``(canonical key, mapping, inverse)`` where ``mapping`` sends the
    original nulls to canonical ones and ``inverse`` is its inverse — built
    here, once, instead of by every caller that needs to translate back.
    Facts are ordered by their rendered string, which is cached on the
    interned atom, so repeated canonicalizations of recurring facts do not
    re-render them.
    """
    ordered = sorted(facts, key=str)
    mapping: Dict[Null, Null] = {}

    def rename_term(term: Term) -> Term:
        if isinstance(term, Null):
            renamed = mapping.get(term)
            if renamed is None:
                renamed = Null(len(mapping))
                mapping[term] = renamed
            return renamed
        return term

    canonical = frozenset(
        Atom(fact.predicate, tuple(rename_term(arg) for arg in fact.args))
        for fact in ordered
    )
    inverse = {renamed: original for original, renamed in mapping.items()}
    return canonical, mapping, inverse


def _rename_facts(
    facts: Iterable[Atom], renaming: Dict[Null, Null]
) -> FrozenSet[Atom]:
    def rename_term(term: Term) -> Term:
        if isinstance(term, Null):
            return renaming.get(term, term)
        return term

    return frozenset(
        Atom(fact.predicate, tuple(rename_term(arg) for arg in fact.args))
        for fact in facts
    )


def _rename_fact(fact: Atom, renaming: Dict[Null, Null]) -> Atom:
    if not renaming or fact.null_set().isdisjoint(renaming.keys()):
        return fact
    return Atom(
        fact.predicate,
        tuple(
            renaming.get(arg, arg) if isinstance(arg, Null) else arg
            for arg in fact.args
        ),
    )


class _StoredTrigger:
    """One fired non-full trigger, remembered for delta-pivoted re-firing.

    ``inherited`` accumulates the Σ-guarded subset of the parent closure seen
    so far: the full parent scan happens once at the first firing, and every
    later re-fire only classifies the parent's *delta*.  Because every fact
    ever committed to the parent closure passes through exactly one delta,
    and guardedness of a fact depends only on the fact and the trigger's head
    terms, the accumulated set always equals what a fresh scan of the whole
    closure would return.
    """

    __slots__ = ("head_facts", "fresh_nulls", "inherited")

    def __init__(
        self,
        head_facts: FrozenSet[Atom],
        fresh_nulls: FrozenSet[Null],
        inherited: Set[Atom],
    ) -> None:
        self.head_facts = head_facts
        self.fresh_nulls = fresh_nulls
        self.inherited = inherited


class GuardedChaseReasoner:
    """Decides fact entailment for a fixed set of GTGDs (worklist engine)."""

    def __init__(self, tgds: Iterable[TGD], max_types: int = 50_000) -> None:
        normalized = head_normalize(tgds)
        for tgd in normalized:
            if not tgd.is_guarded:
                raise ValueError(f"TGD is not guarded: {tgd}")
        self.tgds: Tuple[TGD, ...] = normalized
        self.full_tgds, self.non_full_tgds = split_full_non_full(normalized)
        self.sigma_constants: FrozenSet[Constant] = program_constants(normalized)
        self.max_types = max_types
        self.stats = GuardedEngineStats()
        self._null_counter = 0
        # per-saturate state (see _reset)
        self._cache: Dict[TypeKey, Set[Atom]] = {}
        # per-type predicate buckets, kept in sync with _cache so a worklist
        # pop does not re-bucket the whole closure to serve a small delta
        self._buckets: Dict[TypeKey, Dict[Predicate, List[Atom]]] = {}
        self._pending: Dict[TypeKey, Set[Atom]] = {}
        self._edges: Dict[TypeKey, List[_Edge]] = {}
        self._edge_seen: Set[Tuple] = set()
        self._triggers: Dict[TypeKey, List[_StoredTrigger]] = {}
        self._dirty: List[TypeKey] = []
        self._dirty_set: Set[TypeKey] = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def saturate(self, instance: Instance | Iterable[Atom]) -> FrozenSet[Atom]:
        """All facts derivable at the root vertex for the given base instance."""
        root_facts = frozenset(instance)
        self._reset()
        root_key, _mapping, inverse = _canonicalize(root_facts)
        self._ensure_type(root_key)
        self._drain()
        return _rename_facts(self._cache[root_key], inverse)

    def entailed_base_facts(
        self, instance: Instance | Iterable[Atom]
    ) -> FrozenSet[Atom]:
        """The base facts entailed by the instance and the GTGDs."""
        return frozenset(
            fact for fact in self.saturate(instance) if fact.is_base_fact
        )

    def entails(self, instance: Instance | Iterable[Atom], fact: Atom) -> bool:
        """Decide ``I, Σ |= F`` for a base fact ``F``."""
        if not fact.is_base_fact:
            raise ValueError("entailment is defined for base facts only")
        return fact in self.saturate(instance)

    # ------------------------------------------------------------------
    # worklist fixpoint
    # ------------------------------------------------------------------
    def _reset(self) -> None:
        self._cache = {}
        self._buckets = {}
        self._pending = {}
        self._edges = {}
        self._edge_seen = set()
        self._triggers = {}
        self._dirty = []
        self._dirty_set = set()

    def _fresh_null(self) -> Null:
        self._null_counter += 1
        return Null(1_000_000 + self._null_counter)

    def _mark_dirty(self, key: TypeKey) -> None:
        if key not in self._dirty_set:
            self._dirty_set.add(key)
            self._dirty.append(key)

    def _ensure_type(self, key: TypeKey) -> bool:
        """Register a (canonical) type; returns ``True`` if it is new.

        The invariant maintained everywhere: ``pending[key]`` is the subset
        of ``cache[key]`` whose consequences have not been explored yet —
        facts are committed to the closure first and queued as delta second.
        """
        if key in self._cache:
            return False
        self._cache[key] = set(key)
        buckets: Dict[Predicate, List[Atom]] = {}
        for fact in key:
            buckets.setdefault(fact.predicate, []).append(fact)
        self._buckets[key] = buckets
        self._pending[key] = set(key)
        self._mark_dirty(key)
        self.stats.types_closed += 1
        if len(self._cache) > self.max_types:
            raise RuntimeError(
                "type limit exceeded; the oracle is intended for small inputs only"
            )
        return True

    def _drain(self) -> None:
        while self._dirty:
            key = self._dirty.pop()
            self._dirty_set.discard(key)
            self._process(key)

    def _process(self, key: TypeKey) -> None:
        """Explore a type's pending delta to a local fixpoint, semi-naively.

        Every inner round matches each TGD body with one atom pivoted on the
        round's delta and the rest on the full type, so rule applications
        whose body facts were all explored earlier are never re-enumerated.
        New facts become the next round's delta; everything derived here is
        propagated to the registered parent types afterwards.
        """
        delta = self._pending.pop(key, None)
        if not delta:
            return
        stats = self.stats
        stats.processes += 1
        current = self._cache[key]
        current_by_pred = self._buckets[key]
        added_total: Set[Atom] = set()
        while delta:
            stats.rounds += 1
            stats.delta_facts += len(delta)
            if len(delta) > stats.max_delta:
                stats.max_delta = len(delta)
            delta_by_pred: Dict[Predicate, List[Atom]] = {}
            for fact in delta:
                delta_by_pred.setdefault(fact.predicate, []).append(fact)
            new: Set[Atom] = set()
            # re-fire stored triggers whose inheritable part grew: a child
            # type is a function of the whole parent closure (the Σ-guarded
            # subset is copied in), not just of the trigger's body match, so
            # parent growth can enlarge the child even when no body atom is
            # re-matched.  Only the *delta* is classified against the guard —
            # the trigger carries its accumulated inheritable set, so a
            # re-fire never re-scans the full closure (the pre-change engine
            # rebuilt every child from the whole closure each global round).
            for trigger in tuple(self._triggers.get(key, ())):
                grown = [
                    fact
                    for fact in guarded_subset(
                        delta, trigger.head_facts, self.sigma_constants
                    )
                    if fact not in trigger.inherited
                ]
                if grown:
                    trigger.inherited.update(grown)
                    self._build_child(
                        key,
                        trigger.head_facts,
                        trigger.fresh_nulls,
                        trigger.inherited,
                        current,
                        new,
                    )
            # (a) full GTGDs applied inside the vertex, delta-pivoted
            for tgd in self.full_tgds:
                for substitution in self._delta_matches(
                    tgd.body, current_by_pred, delta_by_pred
                ):
                    head_fact = substitution.apply_atom(tgd.head[0])
                    if head_fact not in current and head_fact not in new:
                        new.add(head_fact)
            # (b) loops through children created by non-full GTGDs
            for tgd in self.non_full_tgds:
                for substitution in self._delta_matches(
                    tgd.body, current_by_pred, delta_by_pred
                ):
                    self._fire_trigger(key, tgd, substitution, current, new)
            for fact in new:
                current.add(fact)
                current_by_pred.setdefault(fact.predicate, []).append(fact)
            added_total |= new
            delta = new
        if added_total:
            self._propagate(key, added_total)

    def _fire_trigger(
        self,
        key: TypeKey,
        tgd: TGD,
        substitution: Substitution,
        current: Set[Atom],
        new: Set[Atom],
    ) -> None:
        """Instantiate one non-full trigger: mint its fresh nulls, remember it
        for re-firing on parent growth, and build its child type.  The one
        full-closure guard scan happens here; re-fires extend the trigger's
        accumulated inheritable set from deltas only."""
        extension = {var: self._fresh_null() for var in tgd.existential_variables}
        extended = Substitution({**dict(substitution.items()), **extension})
        head_facts = frozenset(extended.apply_atoms(tgd.head))
        fresh_nulls = frozenset(extension.values())
        inherited = set(guarded_subset(current, head_facts, self.sigma_constants))
        trigger = _StoredTrigger(head_facts, fresh_nulls, inherited)
        self._triggers.setdefault(key, []).append(trigger)
        self._build_child(key, head_facts, fresh_nulls, inherited, current, new)

    def _build_child(
        self,
        key: TypeKey,
        head_facts: FrozenSet[Atom],
        fresh_nulls: FrozenSet[Null],
        inherited: Set[Atom],
        current: Set[Atom],
        new: Set[Atom],
    ) -> None:
        """Build (or reuse) a trigger's child type from its head facts plus
        the inheritable parent facts, and import the exportable part of the
        child's closure into ``new``."""
        stats = self.stats
        stats.trigger_firings += 1
        child_type = head_facts | frozenset(inherited)
        child_key, mapping, inverse = _canonicalize(child_type)
        if not self._ensure_type(child_key):
            stats.types_reused += 1
        # the trigger's fresh nulls, in the child's canonical naming: facts
        # mentioning them never leave the child vertex
        blocked = frozenset(mapping[null] for null in fresh_nulls)
        token = (
            child_key,
            key,
            tuple(sorted(inverse.items(), key=lambda item: item[0].label)),
            blocked,
        )
        if token not in self._edge_seen:
            self._edge_seen.add(token)
            self._edges.setdefault(child_key, []).append((key, inverse, blocked))
        for fact in self._cache[child_key]:
            # null_set() is cached on the interned atom, so this per-fact
            # freshness test is one set intersection instead of re-walking
            # the argument terms
            if not blocked.isdisjoint(fact.null_set()):
                continue
            translated = _rename_fact(fact, inverse)
            if translated not in current and translated not in new:
                new.add(translated)
                stats.imports += 1

    def _propagate(self, key: TypeKey, added: Set[Atom]) -> None:
        """Push a type's closure growth through the registered parent edges.

        Transitive: a fact injected into a parent is immediately forwarded to
        the grandparents (filtered and translated per edge), because the
        parent's own delta processing only propagates facts *derived* there.
        Each queue step strictly grows some type's closure, so the walk
        terminates even on cyclic edge graphs.
        """
        queue: List[Tuple[TypeKey, Iterable[Atom]]] = [(key, added)]
        while queue:
            child_key, batch = queue.pop()
            for parent_key, inverse, blocked in self._edges.get(child_key, ()):
                parent_closure = self._cache[parent_key]
                parent_buckets = self._buckets[parent_key]
                injected: List[Atom] = []
                for fact in batch:
                    if not blocked.isdisjoint(fact.null_set()):
                        continue
                    translated = _rename_fact(fact, inverse)
                    if translated not in parent_closure:
                        parent_closure.add(translated)
                        parent_buckets.setdefault(
                            translated.predicate, []
                        ).append(translated)
                        injected.append(translated)
                if injected:
                    self.stats.imports += len(injected)
                    self._pending.setdefault(parent_key, set()).update(injected)
                    self._mark_dirty(parent_key)
                    queue.append((parent_key, injected))

    # ------------------------------------------------------------------
    # delta-pivoted body matching
    # ------------------------------------------------------------------
    @staticmethod
    def _delta_matches(
        body: Tuple[Atom, ...],
        current_by_pred: Dict[Predicate, List[Atom]],
        delta_by_pred: Dict[Predicate, List[Atom]],
    ) -> Iterable[Substitution]:
        """Matches of ``body`` into the type using at least one delta fact.

        For every body position whose predicate received delta facts, the
        pivot atom is bound to each delta fact and the remaining atoms are
        solved against the full type.  A match whose image contains several
        delta facts is found once per such position; the duplicates are
        collapsed here so triggers fire (and fresh nulls are minted) exactly
        once per distinct substitution and round.
        """
        # a single-atom body cannot re-find a match through a second pivot,
        # so the dedupe set is only kept for wider bodies
        seen: Optional[Set[Substitution]] = set() if len(body) > 1 else None
        for pivot, pivot_atom in enumerate(body):
            bucket = delta_by_pred.get(pivot_atom.predicate)
            if not bucket:
                continue
            rest = body[:pivot] + body[pivot + 1 :]
            for fact in bucket:
                base = match_atom(pivot_atom, fact)
                if base is None:
                    continue
                for substitution in solve_match(rest, current_by_pred, base=base):
                    if seen is not None:
                        if substitution in seen:
                            continue
                        seen.add(substitution)
                    yield substitution


class ReferenceGuardedReasoner:
    """The pre-change recursive engine, retained as the executable spec.

    Naive in two ways the worklist engine is not: every global round
    re-closes every type reachable from the root from scratch (a whole-tree
    re-walk), and every closure round recomputes every TGD's matches against
    the entire type.  The property tests check
    :class:`GuardedChaseReasoner` against this implementation, and the
    ``guarded_oracle`` perf scenario uses it as the same-machine pre-change
    baseline.  Never use it outside tests and benchmarks.
    """

    def __init__(self, tgds: Iterable[TGD], max_types: int = 50_000) -> None:
        normalized = head_normalize(tgds)
        for tgd in normalized:
            if not tgd.is_guarded:
                raise ValueError(f"TGD is not guarded: {tgd}")
        self.tgds: Tuple[TGD, ...] = normalized
        self.full_tgds, self.non_full_tgds = split_full_non_full(normalized)
        self.sigma_constants: FrozenSet[Constant] = program_constants(normalized)
        self.max_types = max_types
        self._cache: Dict[TypeKey, Set[Atom]] = {}
        self._null_counter = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def saturate(self, instance: Instance | Iterable[Atom]) -> FrozenSet[Atom]:
        """All facts derivable at the root vertex for the given base instance."""
        root_facts = frozenset(instance)
        self._cache = {}
        changed = True
        while changed:
            self._round_changed = False
            self._visited_this_round: Set[TypeKey] = set()
            self._closure(root_facts)
            changed = self._round_changed
        return self._lookup(root_facts)

    def entailed_base_facts(
        self, instance: Instance | Iterable[Atom]
    ) -> FrozenSet[Atom]:
        """The base facts entailed by the instance and the GTGDs."""
        return frozenset(
            fact for fact in self.saturate(instance) if fact.is_base_fact
        )

    def entails(self, instance: Instance | Iterable[Atom], fact: Atom) -> bool:
        """Decide ``I, Σ |= F`` for a base fact ``F``."""
        if not fact.is_base_fact:
            raise ValueError("entailment is defined for base facts only")
        return fact in self.saturate(instance)

    # ------------------------------------------------------------------
    # canonicalization of types
    # ------------------------------------------------------------------
    @staticmethod
    def _canonical_key(facts: FrozenSet[Atom]) -> Tuple[TypeKey, Dict[Null, Null]]:
        """Rename labeled nulls canonically; return the key and the renaming."""
        key, mapping, _inverse = _canonicalize(facts)
        return key, mapping

    @staticmethod
    def _apply_null_renaming(
        facts: Iterable[Atom], renaming: Dict[Null, Null]
    ) -> FrozenSet[Atom]:
        return _rename_facts(facts, renaming)

    def _lookup(self, facts: FrozenSet[Atom]) -> FrozenSet[Atom]:
        key, mapping = self._canonical_key(facts)
        closure = self._cache.get(key, set(key))
        inverse = {canonical: original for original, canonical in mapping.items()}
        return self._apply_null_renaming(closure, inverse)

    # ------------------------------------------------------------------
    # the fixpoint
    # ------------------------------------------------------------------
    def _fresh_null(self) -> Null:
        self._null_counter += 1
        return Null(1_000_000 + self._null_counter)

    def _closure(self, facts: FrozenSet[Atom]) -> FrozenSet[Atom]:
        """Compute (one round of) the closure of a type, using cached children."""
        key, mapping = self._canonical_key(facts)
        inverse = {canonical: original for original, canonical in mapping.items()}
        if key in self._visited_this_round:
            closure = self._cache.get(key, set(key))
            return self._apply_null_renaming(closure, inverse)
        self._visited_this_round.add(key)
        if len(self._cache) > self.max_types:
            raise RuntimeError(
                "type limit exceeded; the oracle is intended for small inputs only"
            )

        cached = self._cache.get(key)
        if cached is None:
            current: Set[Atom] = set(facts)
        else:
            # cached closures are stored in canonical null naming; translate
            # them back into the caller's naming before extending them
            current = set(self._apply_null_renaming(cached, inverse))
        changed = True
        while changed:
            changed = False
            # (a) full GTGDs applied inside the vertex
            for tgd in self.full_tgds:
                for substitution in self._body_matches(tgd.body, current):
                    head_fact = substitution.apply_atom(tgd.head[0])
                    if head_fact not in current:
                        current.add(head_fact)
                        changed = True
            # (b) loops through children created by non-full GTGDs
            for tgd in self.non_full_tgds:
                for substitution in self._body_matches(tgd.body, current):
                    extension = {
                        var: self._fresh_null() for var in tgd.existential_variables
                    }
                    extended = Substitution(
                        {**dict(substitution.items()), **extension}
                    )
                    head_facts = frozenset(extended.apply_atoms(tgd.head))
                    fresh_nulls = frozenset(extension.values())
                    inherited = guarded_subset(
                        current, head_facts, self.sigma_constants
                    )
                    child_type = head_facts | frozenset(inherited)
                    child_closure = self._closure(child_type)
                    for fact in child_closure:
                        # null_set() is cached on the interned atom, so this
                        # per-fact freshness test is one set intersection
                        # instead of re-walking the argument terms
                        if not fresh_nulls.isdisjoint(fact.null_set()):
                            continue
                        if fact not in current:
                            current.add(fact)
                            changed = True

        canonical_closure = self._apply_null_renaming(current, mapping)
        previous = self._cache.get(key)
        if previous is None or not canonical_closure <= previous:
            merged = set(previous or ()) | set(canonical_closure)
            self._cache[key] = merged
            self._round_changed = True
        return frozenset(current)

    # ------------------------------------------------------------------
    # body matching over a fact set
    # ------------------------------------------------------------------
    @staticmethod
    def _body_matches(
        body: Tuple[Atom, ...], facts: Set[Atom]
    ) -> Iterable[Substitution]:
        """All body matches into the current fact set, via the shared solver.

        The solver snapshots the fact set on entry, so facts added while a
        fixpoint round pulls matches are seen by the next round.
        """
        return solve_match(body, facts)
