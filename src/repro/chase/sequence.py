"""Tree-like chase sequences, one-pass sequences, and loops (Section 4).

A *tree-like chase sequence* for a base instance ``I`` and GTGDs ``Σ`` in
head-normal form is a sequence of chase trees ``T0, ..., Tn`` where ``T0``
has a single root holding ``I`` and each ``Ti`` follows from ``Ti-1`` by a
chase or propagation step.  The sequence is a *chase proof* of every fact
occurring in ``Tn``.

Definition 4.1 singles out *one-pass* sequences, and Definition 4.4
decomposes them into *loops*: subsequences that enter a fresh child with a
non-full step, work inside the subtree, and finally propagate exactly one
output fact back to the vertex where the loop started.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..logic.atoms import Atom
from ..logic.instance import fact_guarded_by_set
from ..logic.substitution import Substitution
from ..logic.terms import Constant
from ..logic.tgd import TGD
from .tree import ChaseTree


@dataclass(frozen=True)
class ChaseStepRecord:
    """Metadata describing how ``T_i`` was obtained from ``T_{i-1}``."""

    kind: str  # "full", "non_full", or "propagation"
    vertex_id: int
    tgd: Optional[TGD] = None
    substitution: Optional[Substitution] = None
    created_vertex_id: Optional[int] = None
    propagated: Tuple[Atom, ...] = ()
    target_vertex_id: Optional[int] = None

    @property
    def is_chase_step(self) -> bool:
        return self.kind in {"full", "non_full"}

    @property
    def is_propagation(self) -> bool:
        return self.kind == "propagation"


@dataclass(frozen=True)
class Loop:
    """A loop at a vertex (Definition 4.4): indices ``i < j`` into the sequence."""

    start_index: int
    end_index: int
    vertex_id: int
    output_fact: Atom

    @property
    def length(self) -> int:
        return self.end_index - self.start_index


class ChaseSequence:
    """A recorded tree-like chase sequence together with its step metadata."""

    def __init__(self, initial_tree: ChaseTree) -> None:
        self._trees: List[ChaseTree] = [initial_tree]
        self._steps: List[ChaseStepRecord] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, tree: ChaseTree, step: ChaseStepRecord) -> None:
        """Append a tree and the step that produced it."""
        self._trees.append(tree)
        self._steps.append(step)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def trees(self) -> Tuple[ChaseTree, ...]:
        return tuple(self._trees)

    @property
    def steps(self) -> Tuple[ChaseStepRecord, ...]:
        return tuple(self._steps)

    def __len__(self) -> int:
        return len(self._trees)

    @property
    def final_tree(self) -> ChaseTree:
        return self._trees[-1]

    def proves(self, fact: Atom) -> bool:
        """``True`` if the fact occurs in some vertex of the final tree."""
        return fact in self.final_tree.all_facts()

    def proves_at_root(self, fact: Atom) -> bool:
        """``True`` if the fact occurs at the root of the final tree."""
        return fact in self.final_tree.root_facts()

    # ------------------------------------------------------------------
    # one-pass property (Definition 4.1)
    # ------------------------------------------------------------------
    def is_one_pass(self, sigma_constants: FrozenSet[Constant]) -> bool:
        """Check whether the recorded sequence satisfies Definition 4.1.

        Each step must be applied to the recently updated vertex of the
        previous tree; propagation steps must copy exactly one fact to the
        parent; and a chase step is allowed only when no propagation step to
        the parent is applicable.
        """
        for index, step in enumerate(self._steps):
            previous = self._trees[index]
            focus = previous.recently_updated
            if step.is_propagation:
                if step.vertex_id != focus:
                    return False
                if step.target_vertex_id != previous.parent(focus):
                    return False
                if len(step.propagated) != 1:
                    return False
            else:
                if step.vertex_id != focus:
                    return False
                if self._propagation_to_parent_applicable(
                    previous, focus, sigma_constants
                ):
                    return False
        return True

    @staticmethod
    def _propagation_to_parent_applicable(
        tree: ChaseTree, vertex_id: int, sigma_constants: FrozenSet[Constant]
    ) -> bool:
        parent_id = tree.parent(vertex_id)
        if parent_id is None:
            return False
        parent_facts = tree.facts(parent_id)
        for fact in tree.facts(vertex_id):
            if fact in parent_facts:
                continue
            if fact_guarded_by_set(fact, parent_facts, sigma_constants):
                return True
        return False

    # ------------------------------------------------------------------
    # loops (Definition 4.4)
    # ------------------------------------------------------------------
    def loops(self) -> Tuple[Loop, ...]:
        """Extract all loops of the sequence.

        A loop at vertex ``v`` is a subsequence ``T_i, ..., T_j`` such that
        ``T_{i+1}`` is obtained by a non-full chase step applied at ``v``,
        ``T_j`` is obtained by a propagation step copying the output fact, and
        ``v`` is the recently updated vertex of both ``T_i`` and ``T_j``.
        """
        loops: List[Loop] = []
        for start_pos, start_step in enumerate(self._steps):
            if start_step.kind != "non_full":
                continue
            start_vertex = start_step.vertex_id
            start_index = start_pos  # T_i is the tree *before* the step
            if self._trees[start_index].recently_updated != start_vertex:
                continue
            for end_pos in range(start_pos + 1, len(self._steps)):
                end_step = self._steps[end_pos]
                if (
                    end_step.is_propagation
                    and end_step.target_vertex_id == start_vertex
                    and len(end_step.propagated) == 1
                ):
                    end_index = end_pos + 1  # T_j is the tree *after* the step
                    loops.append(
                        Loop(
                            start_index=start_index,
                            end_index=end_index,
                            vertex_id=start_vertex,
                            output_fact=end_step.propagated[0],
                        )
                    )
                    break
        return tuple(loops)

    def loops_at_root(self) -> Tuple[Loop, ...]:
        root_id = self._trees[0].root_id
        return tuple(loop for loop in self.loops() if loop.vertex_id == root_id)

    def loop_input_facts(self, loop: Loop) -> FrozenSet[Atom]:
        """The input ``T_i(v)`` of a loop."""
        return self._trees[loop.start_index].facts(loop.vertex_id)
