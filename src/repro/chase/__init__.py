"""The tree-like chase: chase trees, sequences, loops, and entailment oracles."""

from .guarded_engine import GuardedChaseReasoner
from .oracle import (
    bounded_certain_base_facts,
    certain_base_facts,
    entails,
    oracle_agrees,
)
from .sequence import ChaseSequence, ChaseStepRecord, Loop
from .skolem_chase import (
    SkolemChase,
    SkolemChaseResult,
    skolem_chase_base_facts,
    skolem_chase_entails,
)
from .tree import ChaseError, ChaseTree, ChaseVertex

__all__ = [
    "ChaseError",
    "ChaseSequence",
    "ChaseStepRecord",
    "ChaseTree",
    "ChaseVertex",
    "GuardedChaseReasoner",
    "Loop",
    "SkolemChase",
    "SkolemChaseResult",
    "bounded_certain_base_facts",
    "certain_base_facts",
    "entails",
    "oracle_agrees",
    "skolem_chase_base_facts",
    "skolem_chase_entails",
]
