"""The tree-like chase: chase trees, sequences, loops, and entailment oracles."""

from .guarded_engine import (
    GuardedChaseReasoner,
    GuardedEngineStats,
    ReferenceGuardedReasoner,
)
from .oracle import (
    bounded_certain_base_facts,
    certain_base_facts,
    entails,
    oracle_agrees,
)
from .plans import ChasePlanStats, SkolemRulePlan, compile_chase_plans
from .sequence import ChaseSequence, ChaseStepRecord, Loop
from .skolem_chase import (
    SkolemChase,
    SkolemChaseResult,
    skolem_chase_base_facts,
    skolem_chase_entails,
)
from .tree import ChaseError, ChaseTree, ChaseVertex

__all__ = [
    "ChaseError",
    "ChasePlanStats",
    "ChaseSequence",
    "ChaseStepRecord",
    "ChaseTree",
    "ChaseVertex",
    "GuardedChaseReasoner",
    "GuardedEngineStats",
    "Loop",
    "ReferenceGuardedReasoner",
    "SkolemChase",
    "SkolemChaseResult",
    "SkolemRulePlan",
    "bounded_certain_base_facts",
    "certain_base_facts",
    "compile_chase_plans",
    "entails",
    "oracle_agrees",
    "skolem_chase_base_facts",
    "skolem_chase_entails",
]
