"""Chase trees and the two kinds of chase-tree transformations (Section 3).

A *chase tree* consists of a directed tree, a distinguished *recently updated*
vertex, and a function mapping each vertex to a finite set of facts.  A chase
tree is transformed by

* a *chase step* with a GTGD in head-normal form — a full GTGD adds its
  instantiated head to an existing vertex; a non-full GTGD creates a fresh
  child vertex containing the instantiated head together with the facts of
  the parent that are Σ-guarded by that head; or
* a *propagation step* that copies Σ-guarded facts from a vertex to another
  vertex.

The implementation is immutable-by-convention: every transformation returns a
fresh :class:`ChaseTree`, so chase *sequences* can hold all intermediate
trees exactly as the paper's figures do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..logic.atoms import Atom
from ..logic.instance import fact_guarded_by_set, guarded_subset
from ..logic.substitution import Substitution
from ..logic.terms import Constant, Null, Variable
from ..logic.tgd import TGD


class ChaseError(ValueError):
    """Raised when a chase step's precondition is violated."""


_vertex_counter = itertools.count()


def _fresh_vertex_id() -> int:
    return next(_vertex_counter)


@dataclass(frozen=True)
class ChaseVertex:
    """A vertex of a chase tree (identified by a unique integer id)."""

    vertex_id: int
    parent_id: Optional[int]

    def __str__(self) -> str:
        return f"v{self.vertex_id}"


class ChaseTree:
    """An immutable snapshot of a chase tree."""

    __slots__ = ("_vertices", "_facts", "_children", "recently_updated", "root_id")

    def __init__(
        self,
        vertices: Dict[int, ChaseVertex],
        facts: Dict[int, FrozenSet[Atom]],
        recently_updated: int,
        root_id: int,
    ) -> None:
        self._vertices = dict(vertices)
        self._facts = dict(facts)
        self.recently_updated = recently_updated
        self.root_id = root_id
        children: Dict[int, List[int]] = {vid: [] for vid in vertices}
        for vertex in vertices.values():
            if vertex.parent_id is not None:
                children[vertex.parent_id].append(vertex.vertex_id)
        self._children = children

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, base_facts: Iterable[Atom]) -> "ChaseTree":
        """The initial chase tree ``T0``: a single recently-updated root."""
        root = ChaseVertex(_fresh_vertex_id(), None)
        return cls(
            {root.vertex_id: root},
            {root.vertex_id: frozenset(base_facts)},
            recently_updated=root.vertex_id,
            root_id=root.vertex_id,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def vertices(self) -> Tuple[ChaseVertex, ...]:
        return tuple(self._vertices.values())

    def vertex(self, vertex_id: int) -> ChaseVertex:
        return self._vertices[vertex_id]

    def facts(self, vertex_id: int) -> FrozenSet[Atom]:
        """The fact set ``T(v)`` of a vertex."""
        return self._facts[vertex_id]

    def root_facts(self) -> FrozenSet[Atom]:
        return self._facts[self.root_id]

    def children(self, vertex_id: int) -> Tuple[int, ...]:
        return tuple(self._children.get(vertex_id, ()))

    def parent(self, vertex_id: int) -> Optional[int]:
        return self._vertices[vertex_id].parent_id

    def contains_vertex(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices

    def all_facts(self) -> FrozenSet[Atom]:
        result = set()
        for facts in self._facts.values():
            result.update(facts)
        return frozenset(result)

    def all_nulls(self) -> FrozenSet[Null]:
        result = set()
        for facts in self._facts.values():
            for fact in facts:
                result.update(fact.nulls())
        return frozenset(result)

    def depth(self) -> int:
        """Height of the tree (root has depth 0)."""

        def vertex_depth(vertex_id: int) -> int:
            parent = self.parent(vertex_id)
            return 0 if parent is None else 1 + vertex_depth(parent)

        return max(vertex_depth(vid) for vid in self._vertices)

    def path_between(self, source: int, target: int) -> Tuple[int, ...]:
        """The unique path between two vertices (inclusive of both endpoints)."""

        def ancestors(vertex_id: int) -> List[int]:
            chain = [vertex_id]
            while self.parent(chain[-1]) is not None:
                chain.append(self.parent(chain[-1]))
            return chain

        up_source = ancestors(source)
        up_target = ancestors(target)
        source_set = {vid: idx for idx, vid in enumerate(up_source)}
        for idx_target, vid in enumerate(up_target):
            if vid in source_set:
                idx_source = source_set[vid]
                return tuple(up_source[: idx_source + 1]) + tuple(
                    reversed(up_target[:idx_target])
                )
        raise ChaseError("vertices are not connected")

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def _with_updated_vertex(
        self, vertex_id: int, new_facts: FrozenSet[Atom]
    ) -> "ChaseTree":
        facts = dict(self._facts)
        facts[vertex_id] = new_facts
        return ChaseTree(self._vertices, facts, vertex_id, self.root_id)

    def apply_full_step(
        self, vertex_id: int, tgd: TGD, substitution: Substitution
    ) -> "ChaseTree":
        """Chase step with a full GTGD in head-normal form at the given vertex."""
        if not tgd.is_full or len(tgd.head) != 1:
            raise ChaseError("full chase steps require a full TGD in head-normal form")
        body_image = substitution.apply_atoms(tgd.body)
        if not set(body_image) <= self._facts[vertex_id]:
            raise ChaseError(
                "chase step precondition violated: instantiated body not in vertex"
            )
        head_fact = substitution.apply_atom(tgd.head[0])
        if not head_fact.is_ground:
            raise ChaseError("substitution does not ground the head of the full TGD")
        return self._with_updated_vertex(
            vertex_id, self._facts[vertex_id] | {head_fact}
        )

    def apply_non_full_step(
        self,
        vertex_id: int,
        tgd: TGD,
        substitution: Substitution,
        sigma_constants: FrozenSet[Constant],
        null_factory,
    ) -> Tuple["ChaseTree", int]:
        """Chase step with a non-full GTGD: create a fresh child of the vertex.

        ``null_factory`` is a callable returning fresh labeled nulls; the
        substitution is extended to map each existentially quantified variable
        to a fresh null.  Returns the new tree and the id of the new child.
        """
        if tgd.is_full:
            raise ChaseError("non-full chase steps require a non-full TGD")
        body_image = substitution.apply_atoms(tgd.body)
        if not set(body_image) <= self._facts[vertex_id]:
            raise ChaseError(
                "chase step precondition violated: instantiated body not in vertex"
            )
        extension: Dict[Variable, Null] = {
            var: null_factory() for var in tgd.existential_variables
        }
        extended = Substitution({**dict(substitution.items()), **extension})
        head_facts = frozenset(extended.apply_atoms(tgd.head))
        inherited = guarded_subset(
            self._facts[vertex_id], head_facts, sigma_constants
        )
        child = ChaseVertex(_fresh_vertex_id(), vertex_id)
        vertices = dict(self._vertices)
        vertices[child.vertex_id] = child
        facts = dict(self._facts)
        facts[child.vertex_id] = head_facts | frozenset(inherited)
        tree = ChaseTree(vertices, facts, child.vertex_id, self.root_id)
        return tree, child.vertex_id

    def apply_propagation_step(
        self,
        source_id: int,
        target_id: int,
        propagated: Iterable[Atom],
        sigma_constants: FrozenSet[Constant],
    ) -> "ChaseTree":
        """Propagation step: copy Σ-guarded facts from ``source`` to ``target``."""
        propagated = frozenset(propagated)
        if not propagated:
            raise ChaseError("a propagation step must copy a nonempty set of facts")
        source_facts = self._facts[source_id]
        target_facts = self._facts[target_id]
        for fact in propagated:
            if fact not in source_facts:
                raise ChaseError(f"fact {fact} is not present in the source vertex")
            if not fact_guarded_by_set(fact, target_facts, sigma_constants):
                raise ChaseError(
                    f"fact {fact} is not Σ-guarded by the target vertex"
                )
        facts = dict(self._facts)
        facts[target_id] = target_facts | propagated
        return ChaseTree(self._vertices, facts, target_id, self.root_id)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"ChaseTree(vertices={len(self._vertices)}, "
            f"recently_updated=v{self.recently_updated})"
        )

    def pretty(self) -> str:
        """Human-readable rendering of the tree (one line per vertex)."""
        lines: List[str] = []

        def render(vertex_id: int, indent: int) -> None:
            marker = "*" if vertex_id == self.recently_updated else " "
            facts = ", ".join(sorted(str(fact) for fact in self._facts[vertex_id]))
            lines.append(f"{'  ' * indent}{marker} v{vertex_id}: {{{facts}}}")
            for child in self.children(vertex_id):
                render(child, indent + 1)

        render(self.root_id, 0)
        return "\n".join(lines)
