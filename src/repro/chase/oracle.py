"""Entailment oracles used to validate the rewriting algorithms.

Two oracles are provided:

* :class:`repro.chase.guarded_engine.GuardedChaseReasoner` — a sound and
  complete (but worst-case exponential) decision procedure based on type
  closures; and
* the depth-bounded Skolem chase — sound but only complete up to the chosen
  depth; much cheaper, so useful as a quick cross-check.

The helpers in this module pick sensible defaults and expose the oracle
behind a single small interface.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..logic.atoms import Atom
from ..logic.instance import Instance
from ..logic.tgd import TGD
from .guarded_engine import GuardedChaseReasoner
from .skolem_chase import skolem_chase_base_facts


def certain_base_facts(
    instance: Instance | Iterable[Atom], tgds: Iterable[TGD]
) -> FrozenSet[Atom]:
    """All base facts entailed by the instance and the GTGDs (exact oracle)."""
    reasoner = GuardedChaseReasoner(tgds)
    return reasoner.entailed_base_facts(instance)


def entails(
    instance: Instance | Iterable[Atom], tgds: Iterable[TGD], fact: Atom
) -> bool:
    """Decide ``I, Σ |= F`` with the exact oracle."""
    reasoner = GuardedChaseReasoner(tgds)
    return reasoner.entails(instance, fact)


def bounded_certain_base_facts(
    instance: Instance | Iterable[Atom],
    tgds: Iterable[TGD],
    max_term_depth: int = 4,
) -> FrozenSet[Atom]:
    """Base facts derivable by the depth-bounded Skolem chase (sound under-approximation)."""
    return skolem_chase_base_facts(instance, tgds, max_term_depth=max_term_depth)


def oracle_agrees(
    instance: Instance | Iterable[Atom],
    tgds: Iterable[TGD],
    candidate_facts: Iterable[Atom],
) -> bool:
    """``True`` if ``candidate_facts`` equals the exact set of certain base facts."""
    expected = certain_base_facts(instance, tgds)
    actual = frozenset(fact for fact in candidate_facts if fact.is_base_fact)
    return expected == actual
