"""Compiled join plans for the chase: Skolem heads and semi-naive delta loops.

The Datalog engine's hash-join pipelines (:mod:`repro.datalog.plan`) evaluate
*function-free* rules set-at-a-time.  The Skolem chase evaluates *Skolemized*
rules: bodies are still function-free conjunctions (so the compiled
:class:`~repro.datalog.plan.PlanVariant` pipelines apply unchanged — a body
variable simply binds to whatever ground term a fact carries, Skolem terms
included), but heads may contain function terms ``f(x̄)`` that the Datalog
head projection cannot build.  This module supplies the two missing pieces:

* :class:`SkolemRulePlan` — per-rule compiled plan variants (one per
  semi-naive pivot, cached for the chase's lifetime) plus a head *builder*
  compiled from the head atom: each argument is a column read, a constant,
  or a recursive Skolem-term constructor over column reads, so projecting a
  match batch allocates one interned :class:`~repro.logic.terms.FunctionTerm`
  per row and nesting level instead of running a substitution per match.
* :func:`run_semi_naive_chase` — the delta-driven fixpoint used by
  :meth:`repro.chase.skolem_chase.SkolemChase.run`: round 0 evaluates every
  rule's no-pivot pipeline over the base facts, then each round commits the
  pending facts as the new delta and evaluates only the (rule, pivot)
  variants whose pivot predicate received delta facts.  The depth bound is
  applied batch-wise to the projected head facts (``Atom.depth`` is cached on
  interned atoms), and the ``max_facts`` cutoff fires during the commit phase
  exactly as the naive loop's mid-round cutoff does.

Reading the ``chase_plan`` stats block in BENCH_rewriting.json
--------------------------------------------------------------

The perf harness attaches a ``chase_plan`` block to the ``skolem_chase``
scenario (the ``guarded_oracle`` scenario's block comes from
:class:`repro.chase.guarded_engine.GuardedEngineStats` instead):

* ``rounds`` — semi-naive delta rounds after the initial full pass;
* ``delta_facts`` — facts committed across all deltas (equals the derived
  fact count: every fact enters exactly one delta); ``max_delta`` is the
  largest single round's delta — a shrinking tail of small deltas is the
  signature of work proportional to *new* consequences only;
* ``depth_pruned`` — head facts discarded by the term-depth bound (each one
  also marks the run unsaturated, exactly like the naive loop);
* ``batches`` / ``probes`` / ``probe_hits`` / ``hit_rate`` /
  ``rows_emitted`` / short-circuit counters — the underlying join-pipeline
  counters, same meaning as the ``join_plan`` block
  (see :mod:`repro.datalog.plan`);
* ``plans_compiled`` — distinct (rule, pivot) pipelines compiled; flat
  across rounds because variants are cached on the rule plan.
"""

from __future__ import annotations

from itertools import repeat
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.plan import BindingBatch, JoinPlanStats, PlanVariant, body_supports_plan
from ..datalog.store import FactStore, Row, TermTable
from ..logic.atoms import Atom, Predicate
from ..logic.rules import Rule
from ..logic.terms import FunctionTerm, Term, Variable


class ChasePlanStats:
    """Counters for one semi-naive chase run (see the module docstring)."""

    __slots__ = ("join", "rounds", "delta_facts", "max_delta", "depth_pruned")

    def __init__(self) -> None:
        self.join = JoinPlanStats()
        self.rounds = 0
        self.delta_facts = 0
        self.max_delta = 0
        self.depth_pruned = 0

    def snapshot(self, plans_compiled: int = 0) -> Dict[str, object]:
        block: Dict[str, object] = {
            "rounds": self.rounds,
            "delta_facts": self.delta_facts,
            "max_delta": self.max_delta,
            "depth_pruned": self.depth_pruned,
        }
        block.update(self.join.snapshot())
        block["plans_compiled"] = plans_compiled
        return block


#: compiled head-argument source: a constant, a batch column, or a Skolem
#: term built recursively from such sources
_Source = Tuple


def _compile_term_source(term: Term) -> _Source:
    if isinstance(term, Variable):
        return ("var", term)
    if isinstance(term, FunctionTerm) and not term.is_ground:
        return (
            "func",
            term.symbol,
            tuple(_compile_term_source(arg) for arg in term.args),
        )
    return ("const", term)


def _column_iter(
    source: _Source, columns: Dict[Variable, List[int]], size: int, table: TermTable
) -> Iterator[Term]:
    """One value per batch row for a compiled head-argument source.

    Batch columns carry term IDs; ``var`` sources decode them here — the
    Skolem head builder is a term-constructing boundary, so this is where
    the chase leaves row space.
    """
    kind = source[0]
    if kind == "var":
        decode = table.decode
        return (decode(value) for value in columns[source[1]])
    if kind == "const":
        return repeat(source[1], size)
    symbol = source[1]
    sub_iters = [_column_iter(sub, columns, size, table) for sub in source[2]]
    return (FunctionTerm(symbol, args) for args in zip(*sub_iters))


class SkolemRulePlan:
    """Compiled plan variants plus Skolem-aware head projection for one rule."""

    __slots__ = ("rule", "_variants", "_head_sources")

    def __init__(self, rule: Rule) -> None:
        self.rule = rule
        self._variants: Dict[Optional[int], PlanVariant] = {}
        self._head_sources: Tuple[_Source, ...] = tuple(
            _compile_term_source(arg) for arg in rule.head.args
        )

    @property
    def compiled_variant_count(self) -> int:
        return len(self._variants)

    def variant(self, pivot: Optional[int]) -> PlanVariant:
        variant = self._variants.get(pivot)
        if variant is None:
            variant = PlanVariant(self.rule.body, pivot)
            self._variants[pivot] = variant
        return variant

    def project_head(self, batch: BindingBatch, table: TermTable) -> Iterator[Atom]:
        """Instantiate the (possibly Skolem-term) head for every match row."""
        if not batch.size:
            return
        head = self.rule.head
        if not self._head_sources:
            yield from repeat(head, batch.size)
            return
        predicate = head.predicate
        arg_iters = [
            _column_iter(source, batch.columns, batch.size, table)
            for source in self._head_sources
        ]
        for args in zip(*arg_iters):
            yield Atom(predicate, args)


def compile_chase_plans(rules: Iterable[Rule]) -> Optional[Tuple[SkolemRulePlan, ...]]:
    """Compile one :class:`SkolemRulePlan` per rule, or ``None`` if any body
    falls outside what the hash-join pipelines compute exactly (a non-ground
    function term in a body atom — impossible for Skolemized TGDs, whose
    bodies are the original function-free TGD bodies, but checked so exotic
    callers fall back to the naive reference instead of silently mismatching).
    """
    plans: List[SkolemRulePlan] = []
    for rule in rules:
        if not body_supports_plan(rule.body):
            return None
        plans.append(SkolemRulePlan(rule))
    return tuple(plans)


def run_semi_naive_chase(
    plans: Sequence[SkolemRulePlan],
    seed_facts: Iterable[Atom],
    max_term_depth: int,
    max_facts: int,
    stats: Optional[ChasePlanStats] = None,
) -> Tuple[Set[Atom], bool, int]:
    """Saturate ``seed_facts`` under the compiled rules, delta-driven.

    Returns ``(facts, saturated, rounds)`` with the same semantics as the
    naive :meth:`SkolemChase.run` loop: ``saturated`` is ``False`` iff some
    enumerated rule application produced a head fact beyond the depth bound
    (or the ``max_facts`` cutoff fired), and the cutoff aborts mid-commit so
    the result overshoots ``max_facts`` by at most one round's delta.
    """
    stats = stats or ChasePlanStats()
    join_stats = stats.join
    store = FactStore(seed_facts)
    by_pivot: Dict[Predicate, List[Tuple[SkolemRulePlan, int]]] = {}
    for plan in plans:
        for pivot, atom in enumerate(plan.rule.body):
            by_pivot.setdefault(atom.predicate, []).append((plan, pivot))

    saturated = True
    rounds = 0

    def project(plan: SkolemRulePlan, batch: BindingBatch, pending: Set[Atom]) -> None:
        nonlocal saturated
        for fact in plan.project_head(batch, store.terms):
            if fact.depth > max_term_depth:
                saturated = False
                stats.depth_pruned += 1
                continue
            if fact not in store and fact not in pending:
                pending.add(fact)

    # round 0: full no-pivot pass so every rule fires at least once even if
    # its body predicates never receive a delta
    pending: Set[Atom] = set()
    for plan in plans:
        project(plan, plan.variant(None).execute(store, None, join_stats), pending)

    while pending:
        rounds += 1
        stats.rounds += 1
        stats.delta_facts += len(pending)
        if len(pending) > stats.max_delta:
            stats.max_delta = len(pending)
        # pending facts stay atoms (the depth bound reads term structure);
        # the delta handed back to the join pipelines is encoded rows
        delta_by_predicate: Dict[Predicate, List[Row]] = {}
        for fact in pending:
            predicate, row = store.encode_fact(fact)
            if store.add_row(predicate, row):
                bucket = delta_by_predicate.get(predicate)
                if bucket is None:
                    delta_by_predicate[predicate] = [row]
                else:
                    bucket.append(row)
                if len(store) > max_facts:
                    return set(store), False, rounds
        pending = set()
        # each (plan, pivot) entry is registered under exactly one predicate
        # (its pivot atom's), so this visits every affected variant once
        for predicate in delta_by_predicate:
            for plan, pivot in by_pivot.get(predicate, ()):
                batch = plan.variant(pivot).execute(
                    store, delta_by_predicate, join_stats
                )
                project(plan, batch, pending)
    return set(store), saturated, rounds
