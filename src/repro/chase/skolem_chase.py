"""The oblivious Skolem chase with a term-depth bound.

Skolemizing a set of TGDs and saturating a base instance under the resulting
rules yields exactly the certain base facts (Section 3: ``I, Σ |= F`` iff
``I, sk(Σ) |= F``).  The Skolem chase does not terminate for arbitrary GTGDs,
so this implementation bounds the nesting depth of Skolem terms; bounded runs
*under-approximate* the certain answers, which makes them a useful soundness
oracle and (at sufficient depth on small inputs) a completeness oracle for the
rewriting algorithms.

Two evaluation strategies are provided:

* :meth:`SkolemChase.run` — the hot path: a semi-naive, set-at-a-time loop
  over compiled hash-join plans (:mod:`repro.chase.plans`).  Every round
  evaluates only the (rule, pivot) pipelines whose pivot predicate received
  newly derived facts, so work is proportional to the consequences of the
  last delta instead of the whole fact set.
* :meth:`SkolemChase.run_naive_reference` — the retained per-round
  ``solve_match`` loop, kept as the executable specification the property
  tests compare the semi-naive engine against, and as the same-machine
  naive baseline for the ``skolem_chase`` perf scenario's
  ``speedup_vs_pre_change``.  Its one concession to speed over the true
  pre-change loop: per-rule candidate domains are maintained incrementally
  across rounds (facts are appended to the body slots they can match when
  first derived) instead of being rebuilt from the predicate buckets on
  every rule application — so the recorded speedup is a conservative lower
  bound on the speedup over the pre-change code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance
from ..logic.rules import Rule
from ..logic.skolem import SkolemFactory, skolemize
from ..logic.substitution import Substitution
from ..logic.tgd import TGD, head_normalize
from ..unification.matching import match_atom
from ..unification.solver import solve_match_prefiltered
from .plans import (
    ChasePlanStats,
    SkolemRulePlan,
    compile_chase_plans,
    run_semi_naive_chase,
)


@dataclass
class SkolemChaseResult:
    """Result of a (possibly bounded) Skolem chase run."""

    facts: FrozenSet[Atom]
    saturated: bool
    rounds: int
    #: per-run semi-naive plan counters (see repro.chase.plans); ``None`` for
    #: naive-reference runs and plan-unsupported fallbacks
    plan_stats: Optional[Dict[str, object]] = None

    def base_facts(self) -> FrozenSet[Atom]:
        """Facts over constants only (the observable output of the chase)."""
        return frozenset(fact for fact in self.facts if fact.is_base_fact)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self.facts


class SkolemChase:
    """Bottom-up saturation of a base instance under Skolemized TGDs."""

    def __init__(
        self,
        tgds: Iterable[TGD],
        max_term_depth: int = 4,
        max_facts: int = 200_000,
    ) -> None:
        normalized = head_normalize(tgds)
        self._rules: Tuple[Rule, ...] = skolemize(normalized, SkolemFactory())
        self.max_term_depth = max_term_depth
        self.max_facts = max_facts
        # compiled once per chase, reused by every run(); None when some body
        # is outside the plan fragment (never the case for Skolemized TGDs)
        self._plans: Optional[Tuple[SkolemRulePlan, ...]] = compile_chase_plans(
            self._rules
        )

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return self._rules

    # ------------------------------------------------------------------
    # chase (semi-naive, over compiled join plans)
    # ------------------------------------------------------------------
    def run(self, instance: Instance | Iterable[Atom]) -> SkolemChaseResult:
        """Saturate the instance; stop when the depth bound prunes all new facts."""
        if self._plans is None:
            return self.run_naive_reference(instance)
        stats = ChasePlanStats()
        facts, saturated, rounds = run_semi_naive_chase(
            self._plans,
            instance,
            max_term_depth=self.max_term_depth,
            max_facts=self.max_facts,
            stats=stats,
        )
        plans_compiled = sum(plan.compiled_variant_count for plan in self._plans)
        return SkolemChaseResult(
            frozenset(facts),
            saturated=saturated,
            rounds=rounds,
            plan_stats=stats.snapshot(plans_compiled),
        )

    # ------------------------------------------------------------------
    # naive reference (the executable spec and pre-change perf baseline)
    # ------------------------------------------------------------------
    def run_naive_reference(
        self, instance: Instance | Iterable[Atom]
    ) -> SkolemChaseResult:
        """The retained per-round loop: re-enumerate every rule's matches.

        Each round solves every rule's full body-match problem against the
        complete fact set — quadratically re-deriving known facts — which is
        exactly what makes it an obviously correct specification for the
        semi-naive engine.  It differs from the pre-change loop in one way:
        per-rule candidate domains are maintained incrementally across
        rounds (see :class:`_RuleDomains`) instead of being rebuilt from the
        predicate buckets per rule application; the solve itself is
        unchanged.  That makes it *faster* than the true pre-change loop, so
        perf numbers measured against it are conservative.
        """
        facts: Set[Atom] = set(instance)
        domains = _RuleDomains(self._rules, facts)

        def add_fact(fact: Atom) -> bool:
            if fact in facts:
                return False
            facts.add(fact)
            domains.add_fact(fact)
            return True

        rounds = 0
        saturated = True
        changed = True
        max_term_depth = self.max_term_depth
        max_facts = self.max_facts
        while changed:
            changed = False
            rounds += 1
            for rule in self._rules:
                for substitution in domains.matches(rule):
                    head_fact = substitution.apply_atom(rule.head)
                    # Atom.depth is cached on the interned atom, so re-derived
                    # facts answer the depth-bound check without re-walking
                    # their Skolem terms
                    if head_fact.depth > max_term_depth:
                        saturated = False
                        continue
                    if add_fact(head_fact):
                        changed = True
                        if len(facts) > max_facts:
                            return SkolemChaseResult(
                                frozenset(facts), saturated=False, rounds=rounds
                            )
        return SkolemChaseResult(frozenset(facts), saturated=saturated, rounds=rounds)


class _RuleDomains:
    """Incrementally maintained per-rule body-slot candidate domains.

    For every rule and every body atom, the facts that can match that atom in
    isolation (same predicate, compatible constants and repeated variables)
    are kept in a list that grows as facts are derived — instead of being
    recomputed from the predicate buckets by every ``solve_match`` call of
    every round.  The lists are passed to
    :func:`repro.unification.solver.solve_match_prefiltered`, which snapshots
    them in its generator prologue, so appends made while a round is pulling
    matches are picked up by the next round exactly as the bucketed solve
    did.
    """

    __slots__ = ("_by_predicate", "_slots")

    def __init__(self, rules: Tuple[Rule, ...], seed_facts: Iterable[Atom]) -> None:
        # predicate -> [(pattern atom, candidate list)] over all rule slots;
        # slot lists are shared between rules via the pattern atom (atoms are
        # interned, so identical body atoms share one list)
        self._by_predicate: Dict[Predicate, List[Tuple[Atom, List[Atom]]]] = {}
        self._slots: Dict[Rule, Tuple[List[Atom], ...]] = {}
        shared: Dict[Atom, List[Atom]] = {}
        for rule in rules:
            slot_lists: List[List[Atom]] = []
            for atom in rule.body:
                candidates = shared.get(atom)
                if candidates is None:
                    candidates = shared[atom] = []
                    self._by_predicate.setdefault(atom.predicate, []).append(
                        (atom, candidates)
                    )
                slot_lists.append(candidates)
            self._slots[rule] = tuple(slot_lists)
        for fact in seed_facts:
            self.add_fact(fact)

    def add_fact(self, fact: Atom) -> None:
        for pattern, candidates in self._by_predicate.get(fact.predicate, ()):
            if match_atom(pattern, fact) is not None:
                candidates.append(fact)

    def matches(self, rule: Rule) -> Iterable[Substitution]:
        return solve_match_prefiltered(rule.body, self._slots[rule])


def skolem_chase_base_facts(
    instance: Instance | Iterable[Atom],
    tgds: Iterable[TGD],
    max_term_depth: int = 4,
) -> FrozenSet[Atom]:
    """Convenience wrapper: the base facts derivable within the depth bound."""
    chase = SkolemChase(tgds, max_term_depth=max_term_depth)
    return chase.run(instance).base_facts()


def skolem_chase_entails(
    instance: Instance | Iterable[Atom],
    tgds: Iterable[TGD],
    fact: Atom,
    max_term_depth: int = 4,
) -> bool:
    """Sound (but depth-bounded) entailment check for a single base fact."""
    return fact in skolem_chase_base_facts(instance, tgds, max_term_depth)
