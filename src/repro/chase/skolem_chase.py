"""The oblivious Skolem chase with a term-depth bound.

Skolemizing a set of TGDs and saturating a base instance under the resulting
rules yields exactly the certain base facts (Section 3: ``I, Σ |= F`` iff
``I, sk(Σ) |= F``).  The Skolem chase does not terminate for arbitrary GTGDs,
so this implementation bounds the nesting depth of Skolem terms; bounded runs
*under-approximate* the certain answers, which makes them a useful soundness
oracle and (at sufficient depth on small inputs) a completeness oracle for the
rewriting algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance
from ..logic.rules import Rule
from ..logic.skolem import SkolemFactory, skolemize
from ..logic.substitution import Substitution
from ..logic.tgd import TGD, head_normalize
from ..unification.solver import solve_match


@dataclass
class SkolemChaseResult:
    """Result of a (possibly bounded) Skolem chase run."""

    facts: FrozenSet[Atom]
    saturated: bool
    rounds: int

    def base_facts(self) -> FrozenSet[Atom]:
        """Facts over constants only (the observable output of the chase)."""
        return frozenset(fact for fact in self.facts if fact.is_base_fact)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self.facts


class SkolemChase:
    """Bottom-up saturation of a base instance under Skolemized TGDs."""

    def __init__(
        self,
        tgds: Iterable[TGD],
        max_term_depth: int = 4,
        max_facts: int = 200_000,
    ) -> None:
        normalized = head_normalize(tgds)
        self._rules: Tuple[Rule, ...] = skolemize(normalized, SkolemFactory())
        self.max_term_depth = max_term_depth
        self.max_facts = max_facts

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return self._rules

    # ------------------------------------------------------------------
    # chase
    # ------------------------------------------------------------------
    def run(self, instance: Instance | Iterable[Atom]) -> SkolemChaseResult:
        """Saturate the instance; stop when the depth bound prunes all new facts."""
        facts: Set[Atom] = set(instance)
        by_predicate: Dict[Predicate, List[Atom]] = {}
        for fact in facts:
            by_predicate.setdefault(fact.predicate, []).append(fact)

        def add_fact(fact: Atom) -> bool:
            if fact in facts:
                return False
            facts.add(fact)
            by_predicate.setdefault(fact.predicate, []).append(fact)
            return True

        rounds = 0
        saturated = True
        changed = True
        max_term_depth = self.max_term_depth
        max_facts = self.max_facts
        while changed:
            changed = False
            rounds += 1
            for rule in self._rules:
                for substitution in self._matches(rule.body, by_predicate):
                    head_fact = substitution.apply_atom(rule.head)
                    # Atom.depth is cached on the interned atom, so re-derived
                    # facts answer the depth-bound check without re-walking
                    # their Skolem terms
                    if head_fact.depth > max_term_depth:
                        saturated = False
                        continue
                    if add_fact(head_fact):
                        changed = True
                        if len(facts) > max_facts:
                            return SkolemChaseResult(
                                frozenset(facts), saturated=False, rounds=rounds
                            )
        return SkolemChaseResult(frozenset(facts), saturated=saturated, rounds=rounds)

    # ------------------------------------------------------------------
    # body matching
    # ------------------------------------------------------------------
    @staticmethod
    def _matches(
        body: Tuple[Atom, ...], by_predicate: Dict[Predicate, List[Atom]]
    ) -> Iterable[Substitution]:
        """Enumerate substitutions matching all body atoms into the fact store.

        Routed through the shared constraint-propagating solver; the solver
        snapshots the predicate buckets on entry, so facts added while a
        round is in flight are picked up by the next round's matches.
        """
        return solve_match(body, by_predicate)


def skolem_chase_base_facts(
    instance: Instance | Iterable[Atom],
    tgds: Iterable[TGD],
    max_term_depth: int = 4,
) -> FrozenSet[Atom]:
    """Convenience wrapper: the base facts derivable within the depth bound."""
    chase = SkolemChase(tgds, max_term_depth=max_term_depth)
    return chase.run(instance).base_facts()


def skolem_chase_entails(
    instance: Instance | Iterable[Atom],
    tgds: Iterable[TGD],
    fact: Atom,
    max_term_depth: int = 4,
) -> bool:
    """Sound (but depth-bounded) entailment check for a single base fact."""
    return fact in skolem_chase_base_facts(instance, tgds, max_term_depth)
