"""A small Horn description-logic axiom language.

The paper derives its input GTGDs from OWL ontologies (Oxford Ontology
Library) using the standard translation of description logics into
first-order logic: classes become unary relations, properties become binary
relations.  This module provides the fragment of that axiom language needed
by the reproduction:

* class expressions — named classes, conjunctions, and existential
  restrictions ``∃R.C``;
* axioms — class inclusions ``C ⊑ D``, property domain and range
  restrictions, and property inclusions ``R ⊑ S``.

The fragment is chosen so that every axiom translates into one or more GTGDs
(see :mod:`repro.dl.translate`); it mirrors the portion of OWL that survives
the paper's "discarded axioms that cannot be translated into GTGDs" step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union


# ----------------------------------------------------------------------
# class expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NamedClass:
    """An atomic class, e.g. ``ACEquipment``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Existential:
    """An existential restriction ``∃role.filler``."""

    role: str
    filler: "ClassExpression"

    def __str__(self) -> str:
        return f"exists {self.role}.{self.filler}"


@dataclass(frozen=True)
class Conjunction:
    """An intersection of class expressions."""

    operands: Tuple["ClassExpression", ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("a conjunction needs at least two operands")

    def __str__(self) -> str:
        return " and ".join(str(operand) for operand in self.operands)


ClassExpression = Union[NamedClass, Existential, Conjunction]


# ----------------------------------------------------------------------
# axioms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubClassOf:
    """``sub ⊑ sup``.

    For translatability into GTGDs the subclass may be any conjunction of
    named classes and existential restrictions; the superclass may be a named
    class, a conjunction, or an existential restriction whose filler is again
    translatable.
    """

    sub: ClassExpression
    sup: ClassExpression

    def __str__(self) -> str:
        return f"{self.sub} subClassOf {self.sup}"


@dataclass(frozen=True)
class SubPropertyOf:
    """``sub ⊑ sup`` for binary properties."""

    sub: str
    sup: str

    def __str__(self) -> str:
        return f"{self.sub} subPropertyOf {self.sup}"


@dataclass(frozen=True)
class PropertyDomain:
    """``domain(role) ⊑ cls``: every subject of ``role`` belongs to ``cls``."""

    role: str
    cls: ClassExpression

    def __str__(self) -> str:
        return f"domain({self.role}) = {self.cls}"


@dataclass(frozen=True)
class PropertyRange:
    """``range(role) ⊑ cls``: every object of ``role`` belongs to ``cls``."""

    role: str
    cls: ClassExpression

    def __str__(self) -> str:
        return f"range({self.role}) = {self.cls}"


Axiom = Union[SubClassOf, SubPropertyOf, PropertyDomain, PropertyRange]


@dataclass(frozen=True)
class Ontology:
    """A finite set of axioms with a signature of class and property names."""

    axioms: Tuple[Axiom, ...]
    name: str = "ontology"

    def class_names(self) -> FrozenSet[str]:
        names = set()
        for axiom in self.axioms:
            for expression in _expressions_of(axiom):
                names.update(_classes_in(expression))
        return frozenset(names)

    def property_names(self) -> FrozenSet[str]:
        names = set()
        for axiom in self.axioms:
            if isinstance(axiom, SubPropertyOf):
                names.update((axiom.sub, axiom.sup))
            elif isinstance(axiom, (PropertyDomain, PropertyRange)):
                names.add(axiom.role)
            for expression in _expressions_of(axiom):
                names.update(_roles_in(expression))
        return frozenset(names)

    def __len__(self) -> int:
        return len(self.axioms)


def _expressions_of(axiom: Axiom) -> Tuple[ClassExpression, ...]:
    if isinstance(axiom, SubClassOf):
        return (axiom.sub, axiom.sup)
    if isinstance(axiom, (PropertyDomain, PropertyRange)):
        return (axiom.cls,)
    return ()


def _classes_in(expression: ClassExpression) -> Iterable[str]:
    if isinstance(expression, NamedClass):
        yield expression.name
    elif isinstance(expression, Existential):
        yield from _classes_in(expression.filler)
    elif isinstance(expression, Conjunction):
        for operand in expression.operands:
            yield from _classes_in(operand)


def _roles_in(expression: ClassExpression) -> Iterable[str]:
    if isinstance(expression, Existential):
        yield expression.role
        yield from _roles_in(expression.filler)
    elif isinstance(expression, Conjunction):
        for operand in expression.operands:
            yield from _roles_in(operand)


def nesting_depth(expression: ClassExpression) -> int:
    """Depth of nested existential restrictions (used by structural transformation)."""
    if isinstance(expression, NamedClass):
        return 0
    if isinstance(expression, Existential):
        return 1 + nesting_depth(expression.filler)
    return max(nesting_depth(operand) for operand in expression.operands)
