"""Standard translation of the DL axiom language into GTGDs.

Classes become unary relations and properties binary relations.  Every axiom
of :mod:`repro.dl.axioms` translates into one or more guarded TGDs:

* ``C ⊑ D`` becomes ``tr_x(C) → tr_x(D)`` where ``tr_x`` maps class
  expressions to conjunctions of atoms over the free variable ``x`` (with
  fresh existential variables for existential restrictions on the right and
  fresh universally quantified variables on the left);
* ``R ⊑ S`` becomes ``R(x, y) → S(x, y)``;
* ``domain(R) = C`` becomes ``R(x, y) → tr_x(C)``;
* ``range(R) = C`` becomes ``R(x, y) → tr_y(C)``.

Left-hand sides may use existential restrictions of depth one with named
fillers (``∃R.A ⊑ D``): their translation ``R(x, z) ∧ A(z) → ...`` is guarded
by the role atom.  Deeper or conjunctive left-hand-side restrictions would
produce non-guarded TGDs and are rejected with
:class:`UntranslatableAxiomError`, mirroring the paper's step of discarding
axioms that cannot be translated into GTGDs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.terms import Variable
from ..logic.tgd import TGD
from .axioms import (
    Axiom,
    ClassExpression,
    Conjunction,
    Existential,
    NamedClass,
    Ontology,
    PropertyDomain,
    PropertyRange,
    SubClassOf,
    SubPropertyOf,
)


class UntranslatableAxiomError(ValueError):
    """Raised for axioms outside the GTGD-translatable fragment."""


class _VariableSupply:
    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self) -> Variable:
        return Variable(f"{self._prefix}{next(self._counter)}")


def _class_predicate(name: str) -> Predicate:
    return Predicate(name, 1)


def _role_predicate(name: str) -> Predicate:
    return Predicate(name, 2)


def _translate_body(
    expression: ClassExpression, variable: Variable, supply: _VariableSupply
) -> List[Atom]:
    """Translate a left-hand-side class expression (universal variables only)."""
    if isinstance(expression, NamedClass):
        return [Atom(_class_predicate(expression.name), (variable,))]
    if isinstance(expression, Existential):
        successor = supply.fresh()
        atoms = [Atom(_role_predicate(expression.role), (variable, successor))]
        atoms.extend(_translate_body(expression.filler, successor, supply))
        return atoms
    if isinstance(expression, Conjunction):
        atoms: List[Atom] = []
        for operand in expression.operands:
            atoms.extend(_translate_body(operand, variable, supply))
        return atoms
    raise UntranslatableAxiomError(f"unsupported class expression: {expression!r}")


def _translate_head(
    expression: ClassExpression, variable: Variable, supply: _VariableSupply
) -> List[Atom]:
    """Translate a right-hand-side class expression (fresh variables are existential)."""
    if isinstance(expression, NamedClass):
        return [Atom(_class_predicate(expression.name), (variable,))]
    if isinstance(expression, Existential):
        successor = supply.fresh()
        atoms = [Atom(_role_predicate(expression.role), (variable, successor))]
        atoms.extend(_translate_head(expression.filler, successor, supply))
        return atoms
    if isinstance(expression, Conjunction):
        atoms = []
        for operand in expression.operands:
            atoms.extend(_translate_head(operand, variable, supply))
        return atoms
    raise UntranslatableAxiomError(f"unsupported class expression: {expression!r}")


def translate_axiom(axiom: Axiom) -> Tuple[TGD, ...]:
    """Translate a single axiom into GTGDs."""
    x = Variable("x")
    y = Variable("y")
    if isinstance(axiom, SubClassOf):
        body_supply = _VariableSupply("z")
        head_supply = _VariableSupply("v")
        body = _translate_body(axiom.sub, x, body_supply)
        head = _translate_head(axiom.sup, x, head_supply)
        tgd = TGD(tuple(body), tuple(head))
        if not tgd.is_guarded:
            raise UntranslatableAxiomError(
                f"axiom {axiom} translates into a non-guarded TGD: {tgd}"
            )
        return (tgd,)
    if isinstance(axiom, SubPropertyOf):
        return (
            TGD(
                (Atom(_role_predicate(axiom.sub), (x, y)),),
                (Atom(_role_predicate(axiom.sup), (x, y)),),
            ),
        )
    if isinstance(axiom, PropertyDomain):
        head_supply = _VariableSupply("v")
        head = _translate_head(axiom.cls, x, head_supply)
        return (
            TGD((Atom(_role_predicate(axiom.role), (x, y)),), tuple(head)),
        )
    if isinstance(axiom, PropertyRange):
        head_supply = _VariableSupply("v")
        head = _translate_head(axiom.cls, y, head_supply)
        return (
            TGD((Atom(_role_predicate(axiom.role), (x, y)),), tuple(head)),
        )
    raise UntranslatableAxiomError(f"unsupported axiom: {axiom!r}")


def translate_ontology(ontology: Ontology) -> Tuple[TGD, ...]:
    """Translate every axiom of the ontology, skipping nothing.

    (The paper discards untranslatable axioms while loading real ontologies;
    the synthetic generator only produces translatable axioms, so an
    untranslatable axiom here indicates a programming error and raises.)
    """
    tgds: List[TGD] = []
    for axiom in ontology.axioms:
        tgds.extend(translate_axiom(axiom))
    # deduplicate while preserving order
    seen: Dict[TGD, None] = {}
    for tgd in tgds:
        seen.setdefault(tgd, None)
    return tuple(seen)
