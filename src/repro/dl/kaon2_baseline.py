"""A KAON2-style baseline rewriter.

The paper compares its algorithms against KAON2, a closed-source description
logic reasoner that can rewrite GTGDs obtained from OWL ontologies into
Datalog.  KAON2 is not available here, so this module provides a faithful
*behavioural* substitute with the two properties that matter for the
evaluation:

1. it only accepts inputs over relations of arity at most two (KAON2 "supports
   relations of arity at most two", Section 7.4);
2. it applies the structural transformation to the ontology axioms before
   translating them into GTGDs and saturating (Section 7.2 reports that this
   is where KAON2 gains its edge on some inputs).

The saturation itself reuses the SkDR resolution machinery — a reasonable
stand-in, since KAON2 is likewise a resolution-based rewriter — so the
baseline's cost profile tracks the structural simplicity of the transformed
axioms rather than any GTGD-specific optimization of this paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..logic.tgd import TGD
from ..rewriting.base import RewritingResult, RewritingSettings
from ..rewriting.rewriter import rewrite
from .axioms import Ontology
from .structural import structural_transformation
from .translate import translate_ontology


class UnsupportedArityError(ValueError):
    """Raised when the baseline is given relations of arity greater than two."""


@dataclass
class Kaon2Baseline:
    """Structural transformation + resolution saturation, arity ≤ 2 only."""

    settings: Optional[RewritingSettings] = None
    apply_structural_transformation: bool = True

    name: str = "KAON2"

    # ------------------------------------------------------------------
    # ontology-level interface (the way KAON2 is actually driven)
    # ------------------------------------------------------------------
    def rewrite_ontology(self, ontology: Ontology) -> RewritingResult:
        """Rewrite a DL ontology: transform, translate, saturate."""
        if self.apply_structural_transformation:
            ontology = structural_transformation(ontology)
        tgds = translate_ontology(ontology)
        return self.rewrite_tgds(tgds)

    # ------------------------------------------------------------------
    # GTGD-level interface (used when inputs are shared with our algorithms)
    # ------------------------------------------------------------------
    def rewrite_tgds(self, tgds: Iterable[TGD]) -> RewritingResult:
        """Rewrite GTGDs directly; rejects relations of arity above two."""
        tgds = tuple(tgds)
        self._check_arity(tgds)
        result = rewrite(tgds, algorithm="skdr", settings=self.settings)
        return RewritingResult(
            algorithm=self.name,
            datalog_rules=result.datalog_rules,
            statistics=result.statistics,
            worked_off_size=result.worked_off_size,
            completed=result.completed,
        )

    @staticmethod
    def _check_arity(tgds: Tuple[TGD, ...]) -> None:
        for tgd in tgds:
            for atom in tgd.body + tgd.head:
                if atom.predicate.arity > 2:
                    raise UnsupportedArityError(
                        "the KAON2 baseline supports relations of arity at most "
                        f"two, but {atom.predicate} has arity {atom.predicate.arity}"
                    )
