"""Description-logic front end: axioms, translation to GTGDs, structural transformation."""

from .axioms import (
    Axiom,
    ClassExpression,
    Conjunction,
    Existential,
    NamedClass,
    Ontology,
    PropertyDomain,
    PropertyRange,
    SubClassOf,
    SubPropertyOf,
    nesting_depth,
)
from .kaon2_baseline import Kaon2Baseline, UnsupportedArityError
from .structural import StructuralTransformer, structural_transformation
from .translate import UntranslatableAxiomError, translate_axiom, translate_ontology

__all__ = [
    "Axiom",
    "ClassExpression",
    "Conjunction",
    "Existential",
    "Kaon2Baseline",
    "NamedClass",
    "Ontology",
    "PropertyDomain",
    "PropertyRange",
    "StructuralTransformer",
    "SubClassOf",
    "SubPropertyOf",
    "UnsupportedArityError",
    "UntranslatableAxiomError",
    "nesting_depth",
    "structural_transformation",
    "translate_axiom",
    "translate_ontology",
]
