"""Structural transformation of DL axioms (Section 7.2, "Impact of Structural Transformation").

KAON2 simplifies ontology axioms before translating them into GTGDs: an axiom
with a nested existential on the right-hand side, such as ``A ⊑ ∃B.∃C.D``, is
split into ``A ⊑ ∃B.X`` and ``X ⊑ ∃C.D`` for a fresh class ``X``.  The
transformation preserves entailment of base facts over the original
vocabulary and usually improves rewriting performance because the resulting
axioms (and hence GTGDs) are structurally simpler.

The paper notes that generalizing this transformation to arbitrary "flat"
GTGDs is an open question; accordingly, the implementation here operates on
DL axioms only and is exercised by the Section 7.2 ablation benchmark.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from .axioms import (
    Axiom,
    ClassExpression,
    Conjunction,
    Existential,
    NamedClass,
    Ontology,
    PropertyDomain,
    PropertyRange,
    SubClassOf,
    SubPropertyOf,
    nesting_depth,
)


class StructuralTransformer:
    """Splits nested right-hand-side existentials using fresh class names."""

    def __init__(self, fresh_prefix: str = "StrX") -> None:
        self._prefix = fresh_prefix
        self._counter = itertools.count()

    def _fresh_class(self) -> NamedClass:
        return NamedClass(f"{self._prefix}{next(self._counter)}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _flatten_superclass(
        self, expression: ClassExpression, output: List[Axiom]
    ) -> ClassExpression:
        """Return a depth-≤1 expression equivalent to ``expression`` given ``output``."""
        if isinstance(expression, NamedClass):
            return expression
        if isinstance(expression, Existential):
            if nesting_depth(expression) <= 1:
                return expression
            fresh = self._fresh_class()
            flattened_filler = self._flatten_superclass(expression.filler, output)
            output.append(SubClassOf(fresh, flattened_filler))
            return Existential(expression.role, fresh)
        if isinstance(expression, Conjunction):
            flattened = tuple(
                self._flatten_superclass(operand, output)
                for operand in expression.operands
            )
            return Conjunction(flattened)
        raise TypeError(f"unsupported class expression: {expression!r}")

    # ------------------------------------------------------------------
    # axioms
    # ------------------------------------------------------------------
    def transform_axiom(self, axiom: Axiom) -> Tuple[Axiom, ...]:
        """Transform one axiom into an equivalent set of simpler axioms."""
        output: List[Axiom] = []
        if isinstance(axiom, SubClassOf):
            flattened = self._flatten_superclass(axiom.sup, output)
            output.append(SubClassOf(axiom.sub, flattened))
        elif isinstance(axiom, PropertyDomain):
            flattened = self._flatten_superclass(axiom.cls, output)
            output.append(PropertyDomain(axiom.role, flattened))
        elif isinstance(axiom, PropertyRange):
            flattened = self._flatten_superclass(axiom.cls, output)
            output.append(PropertyRange(axiom.role, flattened))
        elif isinstance(axiom, SubPropertyOf):
            output.append(axiom)
        else:
            raise TypeError(f"unsupported axiom: {axiom!r}")
        return tuple(output)

    def transform(self, ontology: Ontology) -> Ontology:
        """Transform every axiom of the ontology."""
        axioms: List[Axiom] = []
        for axiom in ontology.axioms:
            axioms.extend(self.transform_axiom(axiom))
        return Ontology(tuple(axioms), name=f"{ontology.name}+structural")


def structural_transformation(ontology: Ontology) -> Ontology:
    """Convenience wrapper around :class:`StructuralTransformer`."""
    return StructuralTransformer().transform(ontology)
