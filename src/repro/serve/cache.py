"""Retraction-aware LRU answer cache keyed on interned query fingerprints.

The cache maps ``(kb_key, query_fingerprint)`` to an encoded answer list
(:func:`repro.serve.protocol.encode_answers`) stamped with the *generation*
of the knowledge base it was computed against.  Every ``add_facts`` /
``retract_facts`` bumps the KB's generation (:meth:`AnswerCache.invalidate`
— the server calls it at the moment a mutation enters the per-KB op log,
or automatically via :meth:`AnswerCache.watch_session`), so an entry from
an older generation can never be served again: lookups compare the entry's
stamp against the KB's current generation and treat a mismatch as a miss,
dropping the stale entry.  This closes the retraction-aware-caching gap
left open by the DRed work — a retraction invalidates exactly like an
addition, because *any* mutation may change any query's certain answers.

Query fingerprints are canonical up to variable renaming: ``A(?x),B(?x)``
and ``A(?u),B(?u)`` share one entry.  Fingerprinting is memoized on the
(interned, hashable) query objects via ``lru_cache``, so the per-request
cost after the first sighting is one dict probe.

The cache is thread-safe (one lock around the ordered dict and counters);
the event loop, ``asyncio.to_thread`` executors, and tests can share one
instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..datalog.query import ConjunctiveQuery
from ..logic.terms import Variable

#: default bound on cached answer sets; the oldest (least recently used)
#: entries fall out first
DEFAULT_CAPACITY = 1024


@lru_cache(maxsize=8192)
def query_fingerprint(query: ConjunctiveQuery) -> str:
    """A canonical fingerprint of a query, invariant under variable renaming.

    Variables are renamed to ``?v0, ?v1, ...`` in order of first occurrence
    across the answer tuple and the body, so alpha-equivalent queries (same
    atoms, same variable pattern, different names) fingerprint identically
    and share a cache entry.  Atom order is preserved — conjunction is
    commutative, but canonicalizing atom order is graph canonicalization;
    the cheap rename already catches the common aliasing.
    """
    names: Dict[object, str] = {}

    def rename(variable) -> str:
        if variable not in names:
            names[variable] = f"?v{len(names)}"
        return names[variable]

    parts: List[str] = []
    for atom in query.body:
        args = ",".join(
            rename(term) if isinstance(term, Variable) else str(term)
            for term in atom.args
        )
        parts.append(f"{atom.predicate.name}({args})")
    head = ",".join(rename(variable) for variable in query.answer_variables)
    return f"ans({head})<-{';'.join(parts)}"


class AnswerCache:
    """LRU answer cache with per-KB generation invalidation."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        #: (kb_key, query_fp) -> (generation, encoded answers)
        self._entries: "OrderedDict[Tuple[str, str], Tuple[int, List[List[str]]]]"
        self._entries = OrderedDict()
        self._generations: Dict[str, int] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._stale_drops = 0

    # ------------------------------------------------------------------
    # generations
    # ------------------------------------------------------------------
    def generation(self, kb_key: str) -> int:
        """The KB's current generation (0 until the first mutation)."""
        with self._lock:
            return self._generations.get(kb_key, 0)

    def invalidate(self, kb_key: str) -> int:
        """Bump the KB's generation; every cached entry for it goes stale.

        O(1): stale entries are not scanned, they are dropped lazily on
        lookup (counted as ``stale_drops``) or pushed out by LRU pressure.
        Returns the new generation.
        """
        with self._lock:
            generation = self._generations.get(kb_key, 0) + 1
            self._generations[kb_key] = generation
            self._invalidations += 1
            return generation

    def watch_session(self, kb_key: str, session) -> None:
        """Invalidate ``kb_key`` automatically on every mutation of ``session``.

        Registers a mutation listener
        (:meth:`repro.datalog.session.ReasoningSession.add_mutation_listener`),
        so embedders who hand out the session directly cannot forget to
        invalidate — any ``add_facts``/``retract_facts`` bumps the
        generation before the mutating call returns.
        """
        session.add_mutation_listener(lambda _session, _kind: self.invalidate(kb_key))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def get(self, kb_key: str, query_fp: str) -> Optional[List[List[str]]]:
        """The cached answers, or ``None`` on a miss or a stale entry."""
        key = (kb_key, query_fp)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            generation, answers = entry
            if generation != self._generations.get(kb_key, 0):
                del self._entries[key]
                self._stale_drops += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return answers

    def put(
        self,
        kb_key: str,
        query_fp: str,
        generation: int,
        answers: List[List[str]],
    ) -> bool:
        """Insert an answer set computed at ``generation``.

        Refused (returns ``False``) when the KB has moved past that
        generation — an in-flight batch that raced with a mutation must not
        poison the cache with a superseded answer.
        """
        with self._lock:
            if generation != self._generations.get(kb_key, 0):
                return False
            key = (kb_key, query_fp)
            self._entries[key] = (generation, answers)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Counters for the server's stats endpoint and the perf capture."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self._capacity,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": round(self._hits / total, 4) if total else 0.0,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "stale_drops": self._stale_drops,
            }

    def clear(self) -> None:
        """Drop all entries and zero the counters (generations survive)."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = 0
            self._evictions = self._invalidations = self._stale_drops = 0
