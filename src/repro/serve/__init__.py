"""A long-lived serving layer over compiled knowledge bases.

This package turns the library's compile-once-serve-many story into an
actual server process: one or more ``repro-kb/v2`` knowledge bases stay
resident with warm, materialized reasoning sessions, and concurrent
clients query and mutate them over newline-delimited JSON.

Architecture
------------

Requests flow through four layers, each its own module::

    TCP / LocalClient          (protocol.py — NDJSON framing, one format
         |                      shared with `serve-batch --json`)
         v
    ReasoningServer            (server.py — request routing, per-KB drain
         |                      loops, graceful shutdown)
         v
    BatchQueue + AnswerCache   (batcher.py, cache.py — micro-batching,
         |                      dedup, generation-stamped LRU answers)
         v
    worker tier                (workers.py — warm sessions inline or on a
                                ProcessPoolExecutor, op-log catch-up)

**Front end** (:mod:`.server`): an asyncio server accepts NDJSON requests
over TCP (``python -m repro serve``) or in process
(:meth:`~repro.serve.server.ReasoningServer.local_client`, used by tests
and the perf harness so both paths exercise identical code).  Requests
carry an ``id`` echoed in the response, so clients pipeline freely.

**Micro-batching** (:mod:`.batcher`): every request lands in a per-KB
queue drained by one task per KB.  The drain loop yields to the event loop
exactly once after waking, so requests that arrive concurrently meet in
the queue; a maximal run of queries then becomes one batch.  Cache hits
are answered immediately, the remaining queries are deduplicated by
fingerprint, and each distinct query is evaluated once for the whole
batch.  Mutations are *barriers*: the loop waits for in-flight batches,
appends the op to the KB's log, and applies it alone — which is what makes
per-KB request ordering sequentially consistent.

**Answer cache** (:mod:`.cache`): an LRU keyed on interned canonical query
fingerprints, stamped with the KB generation it was computed at.  Any
``add``/``retract`` bumps the generation (O(1) invalidation — stale
entries die lazily on lookup), and inserts from batches that raced with a
mutation are refused, so the cache can never serve a pre-mutation answer.

**Worker tier** (:mod:`.workers`): CPU-bound reasoning never runs on the
event loop.  With ``--workers 0`` the work runs on a serialized thread;
with ``--workers N`` a :class:`~concurrent.futures.ProcessPoolExecutor`
holds N processes, each keeping warm sessions keyed by KB fingerprint.
Workers reach the server-assigned generation by replaying the suffix of
the per-KB op log they have not seen yet — the mutation barrier guarantees
no worker is ever *ahead* of a batch's assigned prefix, so sessions only
ever roll forward.

Fault tolerance
---------------

The serving layer assumes its parts fail and is built to keep answering
correctly anyway; every mechanism below is exercised by the deterministic
fault-injection harness (:mod:`.faults`, driven by
``python -m repro.serve.smoke --chaos`` and the resilience test suite):

* **Worker supervision** — a dead worker process breaks the whole pool
  (``BrokenProcessPool``); the tier rebuilds the executor once per crash
  and retries the failed tasks with capped exponential backoff.  Retries
  are safe by construction: batches are idempotent reads of the op-log
  prefix, and an unacked mutation re-runs against fresh sessions that
  replay it from the log exactly once.  Worker pools use a ``forkserver``
  context so rebuilt workers never inherit live connection descriptors.
* **Deadlines** — every query/add/retract runs under a ``deadline_ms``
  (per-request or the server default); expiry produces a structured
  ``timeout`` error instead of a hang, and a mutation that expires while
  still queued is guaranteed *not* applied.
* **Backpressure** — per-KB admission queues are bounded; past the
  high-water mark requests are shed at the door with a structured
  ``overloaded`` error rather than growing an unbounded latency backlog.
* **Op-log checkpoints** — once a KB's log passes a threshold the server
  snapshots the surviving base facts and truncates the log, so worker
  catch-up (and every post-crash rebuild) replays O(ops since checkpoint)
  instead of the full mutation history.  A warm session standing exactly
  at the checkpoint generation adopts the new epoch in place; a session
  whose catch-up fails mid-suffix is quarantined and rebuilt rather than
  left half-advanced.
* **Client fail-fast** — a dead connection raises
  :class:`~repro.serve.server.ClientDisconnectedError` promptly for every
  in-flight and later request (no dangling futures); reconnect and
  resubmit.

The ``stats`` op reports the whole ledger: per-KB queue depth, op-log
length and checkpoint count, plus a ``resilience`` block (restarts,
retries, timeouts, sheds) and a ``fault_injection`` block when a
:class:`~repro.serve.faults.FaultPlan` is installed.

The serving-side performance story is measured by the
``serving_throughput`` perf scenario (see :mod:`repro.harness.perfcapture`)
and guarded by concurrency tests plus hypothesis properties stating that
no interleaving of cached answers, mutations, and injected worker kills
serves a stale or lost result.
"""

from .cache import AnswerCache, query_fingerprint
from .faults import FaultPlan
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_answers,
    encode_message,
    query_result,
)
from .server import (
    Client,
    ClientDisconnectedError,
    LocalClient,
    ReasoningServer,
    ServedKB,
    ServeError,
)

__all__ = [
    "AnswerCache",
    "Client",
    "ClientDisconnectedError",
    "FaultPlan",
    "LocalClient",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReasoningServer",
    "ServeError",
    "ServedKB",
    "decode_message",
    "encode_answers",
    "encode_message",
    "query_fingerprint",
    "query_result",
]
