"""The CPU-bound worker tier: warm reasoning sessions behind an executor.

Materialization, delta propagation, and query evaluation are CPU-bound, so
the asyncio front end never runs them on the event loop.  Two executors
implement one interface:

* :class:`InlineWorkerTier` — the work runs in this process on a thread
  (``asyncio.to_thread``), serialized by a lock (the fact-store's lazily
  built indexes are not thread-safe).  Zero setup cost; the default for
  tests, the perf capture, and single-core boxes.
* :class:`PoolWorkerTier` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose workers each hold *warm sessions*: the first task touching a KB in
  a worker process materializes it once, and every later task reuses the
  live session.  Knowledge bases are shipped to workers as ``repro-kb/v2``
  JSON payloads (compiled rules travel, saturation never re-runs — each
  worker pays one plan-compile + materialize, served from its process-local
  caches; see the fork-semantics notes in :mod:`repro.kb.cache`).

Consistency across workers uses an **op log**: the server appends every
mutation (as parseable fact text) to a per-KB ordered log and sends the
log prefix with each task.  A worker session remembers how many ops it has
applied and catches up on the missing suffix before answering, so any
worker — no matter which subset of earlier tasks it happened to run —
reaches exactly the generation the server assigned to the batch.  Sessions
only move forward; the server's barrier around mutations (see
:mod:`repro.serve.batcher`) guarantees no task ever needs a generation a
worker has already passed.

Worker results are JSON-ready dicts (answers pre-encoded via
:func:`repro.serve.protocol.encode_answers`) so the pool pickles plain
strings and ints, never interned term objects.  Each result also carries
the worker's pid and its per-process compile-cache counters
(:func:`repro.kb.cache.compile_cache_stats`), which the server's stats
endpoint aggregates into a per-process view.
"""

from __future__ import annotations

import asyncio
import json
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.query import QueryOptions, parse_query
from ..kb.cache import compile_cache_stats
from ..logic.parser import parse_facts
from .protocol import encode_answers, mutation_result

#: an op-log entry: ("add" | "retract", facts text)
OpLog = Sequence[Tuple[str, str]]


def build_kb_spec(kb, initial_facts) -> Dict[str, str]:
    """A picklable description of one served KB (payload JSON + seed facts).

    ``kb`` is a :class:`repro.api.KnowledgeBase`; the spec round-trips its
    compiled rewriting through the ``repro-kb/v2`` payload so worker
    processes reconstruct it without re-running saturation.
    """
    from ..kb.format import knowledge_base_payload
    from ..logic.printer import format_fact

    payload = knowledge_base_payload(kb.tgds, kb.rewriting)
    facts_text = "\n".join(format_fact(fact) for fact in sorted(initial_facts, key=str))
    return {"kb_json": json.dumps(payload), "facts": facts_text}


class WorkerState:
    """Warm sessions for a set of KB specs, caught up against an op log.

    One instance lives in each worker process (module global, installed by
    the pool initializer) and one inside :class:`InlineWorkerTier`.
    """

    def __init__(self, specs: Dict[str, Dict[str, str]]) -> None:
        self._specs = specs
        #: name -> [session, ops_applied]
        self._sessions: Dict[str, list] = {}

    def _ensure(self, name: str) -> list:
        entry = self._sessions.get(name)
        if entry is None:
            from ..api import KnowledgeBase
            from ..kb.format import parse_kb_text

            spec = self._specs[name]
            tgds, rewriting = parse_kb_text(spec["kb_json"])
            kb = KnowledgeBase(tgds=tgds, rewriting=rewriting)
            session = kb.session(parse_facts(spec["facts"]))
            entry = [session, 0]
            self._sessions[name] = entry
        return entry

    def _catch_up(self, entry: list, ops: OpLog):
        """Apply the op-log suffix this session has not seen; return the
        result of the last op applied (``None`` if already caught up)."""
        session, applied = entry
        last = None
        for kind, facts_text in list(ops)[applied:]:
            delta = parse_facts(facts_text)
            if kind == "add":
                last = session.add_facts(delta)
            else:
                last = session.retract_facts(delta)
        entry[1] = max(applied, len(ops))
        return last

    def answer_batch(
        self,
        name: str,
        ops: OpLog,
        query_texts: Sequence[str],
        strategies: Optional[Sequence[str]] = None,
    ) -> Dict[str, object]:
        """Catch up to the op-log prefix, evaluate the (deduplicated)
        queries, return encoded answers.

        ``strategies`` (aligned with ``query_texts``, ``"auto"`` when
        absent) selects per-query evaluation; the result's ``strategies``
        field reports the *effective* strategy each query resolved to —
        worker sessions are warm, so ``auto`` resolves to ``materialized``
        here and only an explicit ``"demand"`` runs the magic-sets path.
        """
        entry = self._ensure(name)
        self._catch_up(entry, ops)
        session = entry[0]
        queries = [parse_query(text) for text in query_texts]
        if strategies is None:
            strategies = ["auto"] * len(queries)
        answer_sets: List[object] = [None] * len(queries)
        effective: List[str] = [""] * len(queries)
        by_strategy: Dict[str, List[int]] = {}
        for index, strategy in enumerate(strategies):
            by_strategy.setdefault(strategy, []).append(index)
        for strategy, indexes in by_strategy.items():
            options = QueryOptions(strategy=strategy)
            for index in indexes:
                effective[index] = session.resolve_strategy(queries[index], options)
            answers = session.answer_many(
                [queries[index] for index in indexes], options=options
            )
            for index, answer_set in zip(indexes, answers):
                answer_sets[index] = answer_set
        return {
            "answers": [encode_answers(answers) for answers in answer_sets],
            "strategies": effective,
            "generation": entry[1],
            "store_size": len(session),
            "pid": os.getpid(),
            "compile_cache": compile_cache_stats(),
        }

    def apply_mutation(self, name: str, ops: OpLog) -> Dict[str, object]:
        """Catch up through the log, whose final entry is the requested
        mutation; return that op's counters."""
        entry = self._ensure(name)
        last = self._catch_up(entry, ops)
        if last is None:
            # this session was already past the requested op (impossible
            # under the server's mutation barrier, but stay honest)
            raise RuntimeError(
                f"worker session for {name!r} is ahead of the requested op log"
            )
        kind = ops[-1][0]
        return {
            "result": mutation_result(kind, last),
            "generation": entry[1],
            "store_size": len(entry[0]),
            "pid": os.getpid(),
            "compile_cache": compile_cache_stats(),
        }


# ----------------------------------------------------------------------
# process-pool plumbing (module-level so the pool can pickle it)
# ----------------------------------------------------------------------
_POOL_STATE: Optional[WorkerState] = None


def _pool_initializer(specs: Dict[str, Dict[str, str]]) -> None:
    global _POOL_STATE
    _POOL_STATE = WorkerState(specs)


def _pool_answer_batch(
    name: str,
    ops: List[Tuple[str, str]],
    texts: List[str],
    strategies: Optional[List[str]] = None,
):
    return _POOL_STATE.answer_batch(name, ops, texts, strategies)


def _pool_apply_mutation(name: str, ops: List[Tuple[str, str]]):
    return _POOL_STATE.apply_mutation(name, ops)


# ----------------------------------------------------------------------
# the two executors
# ----------------------------------------------------------------------
class InlineWorkerTier:
    """Run worker tasks in-process on a thread, one at a time."""

    def __init__(self, specs: Dict[str, Dict[str, str]]) -> None:
        self._state = WorkerState(specs)
        self._lock = asyncio.Lock()

    async def answer_batch(self, name, ops, texts, strategies=None) -> Dict[str, object]:
        async with self._lock:
            return await asyncio.to_thread(
                self._state.answer_batch,
                name,
                list(ops),
                list(texts),
                list(strategies) if strategies is not None else None,
            )

    async def apply_mutation(self, name, ops) -> Dict[str, object]:
        async with self._lock:
            return await asyncio.to_thread(
                self._state.apply_mutation, name, list(ops)
            )

    async def shutdown(self) -> None:
        return None

    def describe(self) -> Dict[str, object]:
        return {"mode": "inline", "max_workers": 1}


class PoolWorkerTier:
    """Run worker tasks on a ProcessPoolExecutor with warm sessions."""

    def __init__(self, specs: Dict[str, Dict[str, str]], max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(f"worker count must be positive, got {max_workers}")
        self._max_workers = max_workers
        self._executor = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_pool_initializer,
            initargs=(specs,),
        )

    async def answer_batch(self, name, ops, texts, strategies=None) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            _pool_answer_batch,
            name,
            list(ops),
            list(texts),
            list(strategies) if strategies is not None else None,
        )

    async def apply_mutation(self, name, ops) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, _pool_apply_mutation, name, list(ops)
        )

    async def shutdown(self) -> None:
        # shutdown(wait=True) blocks; keep the event loop responsive
        await asyncio.to_thread(self._executor.shutdown, True)

    def describe(self) -> Dict[str, object]:
        return {"mode": "pool", "max_workers": self._max_workers}


def make_worker_tier(
    specs: Dict[str, Dict[str, str]], workers: int
) -> "InlineWorkerTier | PoolWorkerTier":
    """``workers == 0`` → inline tier; ``workers >= 1`` → process pool."""
    if workers == 0:
        return InlineWorkerTier(specs)
    return PoolWorkerTier(specs, workers)
