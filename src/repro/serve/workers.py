"""The CPU-bound worker tier: warm reasoning sessions behind an executor.

Materialization, delta propagation, and query evaluation are CPU-bound, so
the asyncio front end never runs them on the event loop.  Two executors
implement one interface:

* :class:`InlineWorkerTier` — the work runs in this process on a thread
  (``asyncio.to_thread``), serialized by a lock (the fact-store's lazily
  built indexes are not thread-safe).  Zero setup cost; the default for
  tests, the perf capture, and single-core boxes.
* :class:`PoolWorkerTier` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose workers each hold *warm sessions*: the first task touching a KB in
  a worker process materializes it once, and every later task reuses the
  live session.  Knowledge bases are shipped to workers as ``repro-kb/v2``
  JSON payloads (compiled rules travel, saturation never re-runs — each
  worker pays one plan-compile + materialize, served from its process-local
  caches; see the fork-semantics notes in :mod:`repro.kb.cache`).

Consistency across workers uses an **op log**: the server appends every
mutation (as parseable fact text) to a per-KB ordered log and sends the
log prefix with each task.  A worker session remembers how many ops it has
applied and catches up on the missing suffix before answering, so any
worker — no matter which subset of earlier tasks it happened to run —
reaches exactly the generation the server assigned to the batch.  Sessions
only move forward; the server's barrier around mutations (see
:mod:`repro.serve.batcher`) guarantees no task ever needs a generation a
worker has already passed.

**Checkpoints** keep catch-up O(delta): once the server's op log passes a
threshold it snapshots the surviving base facts, truncates the log, and
bumps a *checkpoint epoch* (see ``_KBState.take_checkpoint`` in
:mod:`repro.serve.server`).  Tasks then carry ``{"epoch", "base",
"facts"}``; a warm session already standing exactly at the checkpoint
generation adopts the new epoch in place (no rebuild, its state is by
construction the checkpoint's fixpoint), while a session behind it — or a
brand-new worker process — rebuilds from the checkpoint facts and replays
only the post-checkpoint suffix instead of the whole mutation history.
A session whose catch-up *fails mid-suffix* is quarantined (dropped and
rebuilt on the next task) rather than left half-advanced; serving from a
store that applied part of an op batch would break sequential consistency.

**Supervision**: :class:`PoolWorkerTier` survives worker death.  A killed
or segfaulted worker process breaks the whole executor
(:class:`~concurrent.futures.process.BrokenProcessPool` for every pending
future), so the tier rebuilds the executor once and retries the failed
tasks with capped exponential backoff.  The retry is safe by construction:
query batches are idempotent reads against the op-log prefix, and a
mutation task that died unacked re-runs against *fresh* worker sessions
that replay it from the log exactly once — the log, not the worker, is
the source of truth.  ``describe()`` reports ``restarts`` / ``retries`` /
``recovery_wall_seconds`` for the server's ``resilience`` stats block.

Worker results are JSON-ready dicts (answers pre-encoded via
:func:`repro.serve.protocol.encode_answers`) so the pool pickles plain
strings and ints, never interned term objects.  Each result also carries
the worker's pid, its per-process compile-cache counters
(:func:`repro.kb.cache.compile_cache_stats`), and ``ops_replayed`` — how
many log entries this task's catch-up actually applied, the counter the
checkpoint tests pin down.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.query import QueryOptions, parse_query
from ..kb.cache import compile_cache_stats
from ..logic.parser import parse_facts
from .faults import KILL_DIRECTIVE, FaultPlan, apply_worker_fault
from .protocol import encode_answers, mutation_result

#: an op-log entry: ("add" | "retract", facts text)
OpLog = Sequence[Tuple[str, str]]

#: a checkpoint shipped with a task: {"epoch": int, "base": int, "facts": str}
#: (``None`` means epoch 0 — build from the original spec facts)
Checkpoint = Optional[Dict[str, object]]

#: how many times a task broken by worker death is retried before the
#: failure propagates to the requesters (each retry runs on a rebuilt pool)
DEFAULT_MAX_TASK_RETRIES = 3

#: first retry backoff; doubles per attempt, capped at _BACKOFF_CAP_SECONDS
_BACKOFF_BASE_SECONDS = 0.05
_BACKOFF_CAP_SECONDS = 2.0


def _pool_mp_context():
    """The multiprocessing context for worker pools: never plain ``fork``.

    A forked worker inherits every open file descriptor — including the
    server's live TCP connections when the pool is *rebuilt* after a crash
    (the original pool predates the listener, a rebuilt one does not).  A
    connection socket duplicated into a worker never delivers EOF to the
    client when the server closes its copy, so disconnects would silently
    stop propagating after the first supervision restart.  ``forkserver``
    forks workers from a clean early-started template process instead
    (``spawn`` where unavailable), so rebuilds inherit nothing.
    """
    try:
        context = multiprocessing.get_context("forkserver")
        # preload the worker module in the template so every (re)built
        # worker inherits the import work instead of redoing it
        context.set_forkserver_preload([__name__])
        return context
    except ValueError:
        return multiprocessing.get_context("spawn")


def build_kb_spec(kb, initial_facts) -> Dict[str, str]:
    """A picklable description of one served KB (payload JSON + seed facts).

    ``kb`` is a :class:`repro.api.KnowledgeBase`; the spec round-trips its
    compiled rewriting through the ``repro-kb/v2`` payload so worker
    processes reconstruct it without re-running saturation.
    """
    from ..kb.format import knowledge_base_payload
    from ..logic.printer import format_fact

    payload = knowledge_base_payload(kb.tgds, kb.rewriting)
    facts_text = "\n".join(format_fact(fact) for fact in sorted(initial_facts, key=str))
    return {"kb_json": json.dumps(payload), "facts": facts_text}


class _SessionEntry:
    """One warm session plus the bookkeeping that keeps it consistent."""

    __slots__ = ("session", "applied", "epoch", "base")

    def __init__(self, session, epoch: int, base: int) -> None:
        self.session = session
        #: ops applied from the *current* (post-checkpoint) log
        self.applied = 0
        #: checkpoint epoch this session was built from / adopted
        self.epoch = epoch
        #: ops folded into that checkpoint; absolute generation = base + applied
        self.base = base

    @property
    def generation(self) -> int:
        return self.base + self.applied


class WorkerState:
    """Warm sessions for a set of KB specs, caught up against an op log.

    One instance lives in each worker process (module global, installed by
    the pool initializer) and one inside :class:`InlineWorkerTier`.
    """

    def __init__(self, specs: Dict[str, Dict[str, str]]) -> None:
        self._specs = specs
        self._sessions: Dict[str, _SessionEntry] = {}
        #: sessions rebuilt because a newer checkpoint superseded them
        self.rebuilds = 0
        #: sessions dropped because their catch-up failed mid-suffix
        self.quarantined = 0

    def _build(self, name: str, checkpoint: Checkpoint) -> _SessionEntry:
        from ..api import KnowledgeBase
        from ..kb.format import parse_kb_text

        spec = self._specs[name]
        tgds, rewriting = parse_kb_text(spec["kb_json"])
        kb = KnowledgeBase(tgds=tgds, rewriting=rewriting)
        if checkpoint is not None:
            facts_text = str(checkpoint["facts"])
            epoch, base = int(checkpoint["epoch"]), int(checkpoint["base"])
        else:
            facts_text, epoch, base = spec["facts"], 0, 0
        session = kb.session(parse_facts(facts_text))
        entry = _SessionEntry(session, epoch, base)
        self._sessions[name] = entry
        return entry

    def _ensure(self, name: str, checkpoint: Checkpoint = None) -> _SessionEntry:
        epoch = int(checkpoint["epoch"]) if checkpoint is not None else 0
        base = int(checkpoint["base"]) if checkpoint is not None else 0
        entry = self._sessions.get(name)
        if entry is None:
            return self._build(name, checkpoint)
        if entry.epoch == epoch:
            return entry
        if entry.epoch > epoch:
            # a task may never reference an epoch the server has superseded
            # (checkpoints happen at the mutation barrier, after in-flight
            # batches drain), so an older epoch here means a protocol bug
            raise RuntimeError(
                f"task for {name!r} references checkpoint epoch {epoch} but "
                f"this session is already at epoch {entry.epoch}"
            )
        if entry.generation == base:
            # this warm session *is* the checkpoint state: its fixpoint was
            # computed from exactly the ops the checkpoint folded in, so it
            # adopts the new epoch without paying a rebuild
            entry.epoch = epoch
            entry.base = base
            entry.applied = 0
            return entry
        # behind the checkpoint and the pre-checkpoint ops are gone from the
        # log — rebuild from the checkpoint facts
        del self._sessions[name]
        self.rebuilds += 1
        return self._build(name, checkpoint)

    def _catch_up(self, name: str, entry: _SessionEntry, ops: OpLog):
        """Apply the op-log suffix this session has not seen.

        Returns ``(last_result, ops_replayed)`` where ``last_result`` is the
        result of the final op applied (``None`` if already caught up).
        Progress is committed per op; if an op raises mid-suffix the session
        is *quarantined* — dropped so the next task rebuilds it — because a
        half-advanced store with stale ``applied`` bookkeeping would serve
        answers from a generation that never existed.
        """
        last = None
        replayed = 0
        try:
            for kind, facts_text in list(ops)[entry.applied :]:
                delta = parse_facts(facts_text)
                if kind == "add":
                    last = entry.session.add_facts(delta)
                else:
                    last = entry.session.retract_facts(delta)
                entry.applied += 1
                replayed += 1
        except Exception:
            self._sessions.pop(name, None)
            self.quarantined += 1
            raise
        return last, replayed

    def answer_batch(
        self,
        name: str,
        ops: OpLog,
        query_texts: Sequence[str],
        strategies: Optional[Sequence[str]] = None,
        checkpoint: Checkpoint = None,
    ) -> Dict[str, object]:
        """Catch up to the op-log prefix, evaluate the (deduplicated)
        queries, return encoded answers.

        ``strategies`` (aligned with ``query_texts``, ``"auto"`` when
        absent) selects per-query evaluation; the result's ``strategies``
        field reports the *effective* strategy each query resolved to —
        worker sessions are warm, so ``auto`` resolves to ``materialized``
        here and only an explicit ``"demand"`` runs the magic-sets path.
        """
        entry = self._ensure(name, checkpoint)
        _, replayed = self._catch_up(name, entry, ops)
        session = entry.session
        queries = [parse_query(text) for text in query_texts]
        if strategies is None:
            strategies = ["auto"] * len(queries)
        answer_sets: List[object] = [None] * len(queries)
        effective: List[str] = [""] * len(queries)
        by_strategy: Dict[str, List[int]] = {}
        for index, strategy in enumerate(strategies):
            by_strategy.setdefault(strategy, []).append(index)
        for strategy, indexes in by_strategy.items():
            options = QueryOptions(strategy=strategy)
            for index in indexes:
                effective[index] = session.resolve_strategy(queries[index], options)
            answers = session.answer_many(
                [queries[index] for index in indexes], options=options
            )
            for index, answer_set in zip(indexes, answers):
                answer_sets[index] = answer_set
        return {
            "answers": [encode_answers(answers) for answers in answer_sets],
            "strategies": effective,
            "generation": entry.generation,
            "ops_replayed": replayed,
            "store_size": len(session),
            "pid": os.getpid(),
            "compile_cache": compile_cache_stats(),
        }

    def apply_mutation(
        self, name: str, ops: OpLog, checkpoint: Checkpoint = None
    ) -> Dict[str, object]:
        """Catch up through the log, whose final entry is the requested
        mutation; return that op's counters."""
        entry = self._ensure(name, checkpoint)
        last, replayed = self._catch_up(name, entry, ops)
        if last is None:
            # this session was already past the requested op (impossible
            # under the server's mutation barrier, but stay honest)
            raise RuntimeError(
                f"worker session for {name!r} is ahead of the requested op log"
            )
        kind = ops[-1][0]
        return {
            "result": mutation_result(kind, last),
            "generation": entry.generation,
            "ops_replayed": replayed,
            "store_size": len(entry.session),
            "pid": os.getpid(),
            "compile_cache": compile_cache_stats(),
        }


# ----------------------------------------------------------------------
# process-pool plumbing (module-level so the pool can pickle it)
# ----------------------------------------------------------------------
_POOL_STATE: Optional[WorkerState] = None


def _pool_initializer(specs: Dict[str, Dict[str, str]]) -> None:
    global _POOL_STATE
    _POOL_STATE = WorkerState(specs)


def _pool_answer_batch(
    name: str,
    ops: List[Tuple[str, str]],
    texts: List[str],
    strategies: Optional[List[str]],
    checkpoint: Checkpoint,
    fault: Optional[str],
):
    apply_worker_fault(fault)
    return _POOL_STATE.answer_batch(name, ops, texts, strategies, checkpoint)


def _pool_apply_mutation(
    name: str,
    ops: List[Tuple[str, str]],
    checkpoint: Checkpoint,
    fault: Optional[str],
):
    apply_worker_fault(fault)
    return _POOL_STATE.apply_mutation(name, ops, checkpoint)


# ----------------------------------------------------------------------
# the two executors
# ----------------------------------------------------------------------
class InlineWorkerTier:
    """Run worker tasks in-process on a thread, one at a time.

    Honors ``delay`` fault directives (the worker thread sleeps while
    holding the serialization lock, exactly how a slow task starves the
    inline tier); a ``kill`` directive becomes an injected error response —
    the inline tier shares the server process, so actually dying is not a
    survivable fault to exercise here (that is the pool tier's chaos test).
    """

    def __init__(
        self,
        specs: Dict[str, Dict[str, str]],
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._state = WorkerState(specs)
        self._lock = asyncio.Lock()
        self._fault_plan = fault_plan

    async def _apply_fault(self) -> None:
        if self._fault_plan is None:
            return
        directive = self._fault_plan.next_task_directive()
        if directive == KILL_DIRECTIVE:
            raise RuntimeError(
                "injected worker kill (inline tier runs in the server "
                "process; use the pool tier to exercise real worker death)"
            )
        if directive is not None:
            # block the (locked) worker path the way a slow task would
            await asyncio.to_thread(apply_worker_fault, directive)

    async def answer_batch(
        self, name, ops, texts, strategies=None, checkpoint=None
    ) -> Dict[str, object]:
        async with self._lock:
            await self._apply_fault()
            return await asyncio.to_thread(
                self._state.answer_batch,
                name,
                list(ops),
                list(texts),
                list(strategies) if strategies is not None else None,
                checkpoint,
            )

    async def apply_mutation(self, name, ops, checkpoint=None) -> Dict[str, object]:
        async with self._lock:
            await self._apply_fault()
            return await asyncio.to_thread(
                self._state.apply_mutation, name, list(ops), checkpoint
            )

    async def shutdown(self) -> None:
        return None

    def describe(self) -> Dict[str, object]:
        return {
            "mode": "inline",
            "max_workers": 1,
            "restarts": 0,
            "retries": 0,
            "recovery_wall_seconds": 0.0,
            "session_rebuilds": self._state.rebuilds,
            "quarantined_sessions": self._state.quarantined,
        }


class PoolWorkerTier:
    """Run worker tasks on a ProcessPoolExecutor with warm sessions.

    Supervised: a dead worker process breaks the executor for every
    pending future (``BrokenProcessPool``), so the tier rebuilds it once
    (serialized by a lock — concurrent casualties of the same crash share
    one rebuild) and retries each failed task with capped exponential
    backoff, up to ``max_task_retries`` times.  Retries are safe: batches
    are idempotent reads of the op-log prefix, and an unacked mutation
    re-runs against fresh sessions that replay it from the log exactly
    once.  A task that keeps dying (e.g. a fault plan listing consecutive
    kill indexes) eventually propagates ``BrokenProcessPool`` to its
    requesters as an error response — bounded failure, never a hang.
    """

    def __init__(
        self,
        specs: Dict[str, Dict[str, str]],
        max_workers: int,
        fault_plan: Optional[FaultPlan] = None,
        max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"worker count must be positive, got {max_workers}")
        if max_task_retries < 0:
            raise ValueError(
                f"max task retries must be non-negative, got {max_task_retries}"
            )
        self._specs = specs
        self._max_workers = max_workers
        self._fault_plan = fault_plan
        self._max_task_retries = max_task_retries
        self._restarts = 0
        self._retries = 0
        self._recovery_wall = 0.0
        self._rebuild_lock: Optional[asyncio.Lock] = None
        self._mp_context = _pool_mp_context()
        self._executor = self._new_executor()

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._max_workers,
            mp_context=self._mp_context,
            initializer=_pool_initializer,
            initargs=(self._specs,),
        )

    async def _rebuild(self, broken: ProcessPoolExecutor) -> None:
        if self._rebuild_lock is None:
            self._rebuild_lock = asyncio.Lock()
        async with self._rebuild_lock:
            if self._executor is not broken:
                return  # another casualty of the same crash already rebuilt
            start = time.perf_counter()
            # the pool is broken — its processes are dead or dying; don't
            # block the event loop waiting on their corpses
            broken.shutdown(wait=False)
            self._executor = self._new_executor()
            self._restarts += 1
            self._recovery_wall += time.perf_counter() - start

    async def _submit(self, fn, *args) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        backoff = _BACKOFF_BASE_SECONDS
        attempt = 0
        while True:
            executor = self._executor
            fault = (
                self._fault_plan.next_task_directive()
                if self._fault_plan is not None
                else None
            )
            try:
                return await loop.run_in_executor(executor, fn, *args, fault)
            except BrokenProcessPool:
                attempt += 1
                if attempt > self._max_task_retries:
                    raise
                await self._rebuild(executor)
                self._retries += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, _BACKOFF_CAP_SECONDS)

    async def answer_batch(
        self, name, ops, texts, strategies=None, checkpoint=None
    ) -> Dict[str, object]:
        return await self._submit(
            _pool_answer_batch,
            name,
            list(ops),
            list(texts),
            list(strategies) if strategies is not None else None,
            checkpoint,
        )

    async def apply_mutation(self, name, ops, checkpoint=None) -> Dict[str, object]:
        return await self._submit(_pool_apply_mutation, name, list(ops), checkpoint)

    async def shutdown(self) -> None:
        # shutdown(wait=True) blocks; keep the event loop responsive
        await asyncio.to_thread(self._executor.shutdown, True)

    def describe(self) -> Dict[str, object]:
        return {
            "mode": "pool",
            "max_workers": self._max_workers,
            "max_task_retries": self._max_task_retries,
            "restarts": self._restarts,
            "retries": self._retries,
            "recovery_wall_seconds": round(self._recovery_wall, 6),
        }


def make_worker_tier(
    specs: Dict[str, Dict[str, str]],
    workers: int,
    fault_plan: Optional[FaultPlan] = None,
) -> "InlineWorkerTier | PoolWorkerTier":
    """``workers == 0`` → inline tier; ``workers >= 1`` → process pool."""
    if workers == 0:
        return InlineWorkerTier(specs, fault_plan)
    return PoolWorkerTier(specs, workers, fault_plan)
