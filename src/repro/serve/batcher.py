"""Per-KB micro-batching of concurrent requests.

The front end enqueues every request for a knowledge base into one
:class:`BatchQueue`; the server's per-KB drain loop wakes, lets the event
loop settle once (so requests that arrived "together" actually meet in the
queue), and then pops work in arrival order:

* a maximal run of *consecutive query requests* becomes one batch — the
  batch resolves answer-cache hits immediately, deduplicates the remaining
  queries by fingerprint, and evaluates each distinct query once
  (amortizing plan probes across requests exactly the way the join
  pipelines amortize tuples);
* a *mutation* request (add/retract) is a barrier: it is popped alone, so
  every earlier query is answered against the pre-mutation generation and
  every later one sees the mutation.

Admission is **bounded**: a queue built with ``max_depth`` refuses new
requests with :class:`QueueOverloadedError` once its depth reaches the
high-water mark, and the server turns that into a structured
``overloaded`` response — shedding load at the door instead of letting an
unbounded backlog grow latency without limit.  Requests already admitted
are always served (or time out against their own deadlines).

:class:`BatcherStats` records the batch-size histogram and the dedup
savings that the ``serving_throughput`` perf scenario reports.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

#: hard cap on how many query requests one dispatched batch may carry;
#: bounds per-batch latency under a flood without starving the queue
DEFAULT_MAX_BATCH_SIZE = 128

#: request kinds that mutate the KB and therefore act as batch barriers
MUTATION_KINDS = ("add", "retract")

#: default admission bound per KB queue; deep enough that a busy server
#: never sheds by accident, shallow enough that a stalled worker tier
#: cannot accumulate an unbounded latency backlog
DEFAULT_MAX_QUEUE_DEPTH = 1024


class QueueOverloadedError(RuntimeError):
    """Raised by :meth:`BatchQueue.submit` when the queue is at its
    high-water mark; the server sheds the request with a structured
    ``overloaded`` response instead of admitting it."""


@dataclass
class PendingRequest:
    """One enqueued request: its kind, payload, and the future to resolve."""

    kind: str  # "query" | "add" | "retract"
    #: the query text (kind == "query") or the facts text (mutations)
    text: str
    future: "asyncio.Future"
    #: canonical cache fingerprint, filled by the server for queries
    fingerprint: Optional[str] = None
    #: requested evaluation strategy (queries only; see QueryOptions)
    strategy: str = "auto"
    enqueued_at: float = field(default_factory=time.perf_counter)


class BatchQueue:
    """An awaitable FIFO of :class:`PendingRequest` for one knowledge base."""

    def __init__(self, max_depth: Optional[int] = DEFAULT_MAX_QUEUE_DEPTH) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max queue depth must be positive, got {max_depth}")
        self._pending: Deque[PendingRequest] = deque()
        self._wake = asyncio.Event()
        self.closed = False
        self.max_depth = max_depth
        #: deepest the queue has ever been (stats)
        self.high_water = 0

    def submit(self, request: PendingRequest) -> None:
        if self.closed:
            raise RuntimeError("queue is closed (server is shutting down)")
        if self.max_depth is not None and len(self._pending) >= self.max_depth:
            raise QueueOverloadedError(
                f"admission queue is at its high-water mark "
                f"({self.max_depth} pending requests); retry with backoff"
            )
        self._pending.append(request)
        self.high_water = max(self.high_water, len(self._pending))
        self._wake.set()

    def close(self) -> None:
        """Refuse new work; already-enqueued requests will still be served."""
        self.closed = True
        self._wake.set()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def drained(self) -> bool:
        return self.closed and not self._pending

    async def wait(self) -> None:
        """Block until there is (or might be) work, then reset the signal."""
        await self._wake.wait()
        self._wake.clear()
        if self._pending:
            # let concurrently-arriving requests land before batching; one
            # zero-sleep yields the loop exactly once, which is the whole
            # micro-batching window — no timer, no added latency floor
            await asyncio.sleep(0)

    def head_kind(self) -> Optional[str]:
        return self._pending[0].kind if self._pending else None

    def pop_mutation(self) -> PendingRequest:
        head = self._pending.popleft()
        assert head.kind in MUTATION_KINDS
        return head

    def pop_query_batch(
        self, max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    ) -> List[PendingRequest]:
        """Pop the maximal leading run of queries (bounded by the cap)."""
        batch: List[PendingRequest] = []
        while (
            self._pending
            and self._pending[0].kind == "query"
            and len(batch) < max_batch_size
        ):
            batch.append(self._pending.popleft())
        return batch


class BatcherStats:
    """Counters describing how well batching and dedup amortized the work."""

    def __init__(self) -> None:
        self.batches = 0
        self.requests = 0
        self.cache_hits = 0
        self.evaluated = 0
        self.dedup_saved = 0
        self.mutations = 0
        #: requests refused at admission because the queue was full
        self.sheds = 0
        #: requests whose deadline expired before their answer was delivered
        self.timeouts = 0
        #: batch size (number of grouped query requests) -> occurrences
        self.batch_size_histogram: Dict[int, int] = {}
        #: requested strategy -> query requests asking for it
        self.requests_by_strategy: Dict[str, int] = {}

    def record_batch(self, size: int, cache_hits: int, evaluated: int) -> None:
        """One dispatched query batch: ``size`` requests grouped, of which
        ``cache_hits`` were answered from cache and the rest deduplicated
        down to ``evaluated`` distinct evaluations."""
        self.batches += 1
        self.requests += size
        self.cache_hits += cache_hits
        self.evaluated += evaluated
        self.dedup_saved += (size - cache_hits) - evaluated
        self.batch_size_histogram[size] = self.batch_size_histogram.get(size, 0) + 1

    def record_strategy(self, strategy: str) -> None:
        """Count one query request by the strategy it asked for."""
        self.requests_by_strategy[strategy] = (
            self.requests_by_strategy.get(strategy, 0) + 1
        )

    def record_mutation(self) -> None:
        self.mutations += 1

    def record_shed(self) -> None:
        self.sheds += 1

    def record_timeout(self) -> None:
        self.timeouts += 1

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view for the stats endpoint and the perf capture."""
        return {
            "batches": self.batches,
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "evaluated": self.evaluated,
            "dedup_saved": self.dedup_saved,
            "mutations": self.mutations,
            "sheds": self.sheds,
            "timeouts": self.timeouts,
            "requests_by_strategy": dict(sorted(self.requests_by_strategy.items())),
            "max_batch_size": max(self.batch_size_histogram, default=0),
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_size_histogram.items())
            },
        }
