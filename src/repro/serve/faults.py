"""Deterministic fault injection for the serving layer.

The chaos checks (``python -m repro.serve.smoke --chaos``, the resilience
test suite, and the kill-interleaving hypothesis property) need failures
that happen *on purpose, at chosen points, reproducibly* — a worker process
dying mid-batch, a task running past its deadline, a TCP connection
dropping mid-request.  :class:`FaultPlan` is that script: one picklable-by
-value description of which dispatches fail and how, consulted by the two
layers that can be made to fail:

* the **worker tier** (:mod:`repro.serve.workers`) asks
  :meth:`FaultPlan.next_task_directive` once per dispatched task, in
  dispatch order.  The returned directive ships to the worker with the
  task: ``"kill"`` makes the worker process ``os._exit`` (indistinguishable
  from a segfault to the :class:`~concurrent.futures.ProcessPoolExecutor`,
  which is the point — it breaks the whole pool), ``"delay:S"`` sleeps the
  worker for S seconds before doing the work (driving tasks past their
  deadlines).  Because the counter advances per *dispatch*, a retried task
  draws a fresh index — a kill listed once kills once, and supervision's
  retry runs clean unless the plan lists the next index too.
* the **protocol layer** (:meth:`~repro.serve.server.ReasoningServer`'s TCP
  ``_respond``) asks :meth:`FaultPlan.should_drop_request` once per
  received request line; ``True`` aborts the connection without a response,
  which is what a mid-request network death looks like to the client.

Determinism matters more than realism here: the CI chaos stage asserts
exact kill counts and oracle-checks every surviving answer, which only
works if the same plan produces the same failures every run.  For
sequential drivers the ``schedule_*_on_next_*`` helpers arm a fault for
exactly the next dispatch without knowing absolute indexes.

``injected`` counts what actually fired (kills/delays/drops); the server
surfaces it in its stats payload as ``fault_injection`` so chaos drivers
can assert the plan ran rather than silently missing its indexes.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, Mapping, Optional

#: worker-side fault directives shipped with a task
KILL_DIRECTIVE = "kill"
DELAY_DIRECTIVE_PREFIX = "delay:"


class FaultPlan:
    """A deterministic script of failures to inject into the serving stack.

    ``kill_on_tasks``/``delay_on_tasks`` are keyed by the zero-based
    dispatch index of worker-tier tasks (batches, mutations, and warm-up
    calls all count, in dispatch order); ``drop_on_requests`` by the
    zero-based index of TCP request lines received across all connections.
    """

    def __init__(
        self,
        kill_on_tasks: Iterable[int] = (),
        delay_on_tasks: Optional[Mapping[int, float]] = None,
        drop_on_requests: Iterable[int] = (),
    ) -> None:
        self.kill_on_tasks = set(kill_on_tasks)
        self.delay_on_tasks: Dict[int, float] = dict(delay_on_tasks or {})
        self.drop_on_requests = set(drop_on_requests)
        self._tasks_dispatched = 0
        self._requests_seen = 0
        #: faults that actually fired, by kind
        self.injected: Dict[str, int] = {"kills": 0, "delays": 0, "drops": 0}

    # ------------------------------------------------------------------
    # worker-tier faults
    # ------------------------------------------------------------------
    def next_task_directive(self) -> Optional[str]:
        """The fault directive for the next dispatched worker task, if any.

        Advances the dispatch counter — call exactly once per task, in
        dispatch order (the worker tiers do).
        """
        index = self._tasks_dispatched
        self._tasks_dispatched += 1
        if index in self.kill_on_tasks:
            self.injected["kills"] += 1
            return KILL_DIRECTIVE
        if index in self.delay_on_tasks:
            self.injected["delays"] += 1
            return f"{DELAY_DIRECTIVE_PREFIX}{self.delay_on_tasks[index]}"
        return None

    def schedule_delay_on_next_task(self, seconds: float) -> None:
        """Arm a delay for the very next dispatched task (sequential drivers)."""
        self.delay_on_tasks[self._tasks_dispatched] = seconds

    def schedule_kill_on_next_task(self) -> None:
        """Arm a kill for the very next dispatched task (sequential drivers)."""
        self.kill_on_tasks.add(self._tasks_dispatched)

    # ------------------------------------------------------------------
    # protocol-layer faults
    # ------------------------------------------------------------------
    def should_drop_request(self) -> bool:
        """Whether to drop the connection for the next received request line."""
        index = self._requests_seen
        self._requests_seen += 1
        if index in self.drop_on_requests:
            self.injected["drops"] += 1
            return True
        return False

    def schedule_drop_on_next_request(self) -> None:
        """Arm a connection drop for the very next received request line."""
        self.drop_on_requests.add(self._requests_seen)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """A JSON-ready view for the server's ``fault_injection`` stats block."""
        return {
            "tasks_dispatched": self._tasks_dispatched,
            "requests_seen": self._requests_seen,
            "kills": self.injected["kills"],
            "delays": self.injected["delays"],
            "drops": self.injected["drops"],
        }


def apply_worker_fault(directive: Optional[str]) -> None:
    """Execute a fault directive inside a worker process.

    ``"kill"`` exits the process without cleanup — to the pool this is a
    worker that segfaulted, so every pending future gets
    :class:`~concurrent.futures.process.BrokenProcessPool` and supervision
    must rebuild.  ``"delay:S"`` blocks the worker for S seconds, the
    injected version of a query that blows its deadline.
    """
    if not directive:
        return
    if directive == KILL_DIRECTIVE:
        os._exit(1)
    if directive.startswith(DELAY_DIRECTIVE_PREFIX):
        time.sleep(float(directive[len(DELAY_DIRECTIVE_PREFIX) :]))
