"""End-to-end smoke check for the serving layer (the CI ``serve`` job).

Boots a real :class:`~repro.serve.server.ReasoningServer` with a TCP
listener, fires ~50 concurrent queries from several pipelined clients with
one retraction interleaved mid-stream, and asserts that every response
agrees with a direct :meth:`repro.api.KnowledgeBase.answer_many` oracle at
the generation the server stamped on it.  Exercises the whole stack —
NDJSON framing, micro-batching, the answer cache across an invalidation,
the worker tier (process pool by default), and graceful shutdown.

A second stage covers the ``repro-kb/v2`` segment tier: the KB is saved
*with its facts* as per-predicate fact segments, reopened through
:meth:`repro.api.KnowledgeBase.load_or_compile` (the loading contract of
``python -m repro serve``), probed cold with one bound demand query — which
must decode only the demanded predicates' segments — and then served, with
every answer checked against the oracle again.

Run it as::

    python -m repro.serve.smoke [--workers N] [--queries N]

Exit status 0 means every concurrent answer matched the oracle.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Dict, List, Tuple

SIGMA = """
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

RETRACTED_FACT = "ACEquipment(sw1)."

QUERY_TEXTS = (
    "Equipment(?x)",
    "Terminal(?x)",
    "ACEquipment(?x)",
    "ACTerminal(?x)",
    "hasTerminal(?x, ?y)",
    "ACEquipment(?x), hasTerminal(?x, ?y)",
)


def _fact_lines(devices: int = 12) -> List[str]:
    lines = []
    for i in range(1, devices + 1):
        lines.append(f"ACEquipment(sw{i}).")
        if i % 2 == 0:
            lines.append(f"hasTerminal(sw{i}, trm{i}).")
            lines.append(f"ACTerminal(trm{i}).")
    return lines


async def _run(workers: int, total_queries: int) -> int:
    from ..api import KnowledgeBase
    from ..datalog.query import parse_query
    from ..logic.parser import parse_facts, parse_program
    from .protocol import encode_answers
    from .server import Client, ReasoningServer, ServedKB

    program = parse_program(SIGMA)
    kb = KnowledgeBase.compile(program.tgds)
    fact_lines = _fact_lines()
    initial = parse_facts("\n".join(fact_lines))

    server = ReasoningServer([ServedKB("cim", kb, initial)], workers=workers)
    await server.start()
    await server.warm()
    host, port = await server.start_tcp()
    print(f"serve smoke: listening on {host}:{port} (workers={workers})")

    observed: List[Tuple[str, int, List[List[str]]]] = []

    async def query_task(client: Client, text: str) -> None:
        response = await client.query(text)
        observed.append((text, response["generation"], response["answers"]))

    clients = [await Client.connect(host, port) for _ in range(5)]
    tasks = []
    mutation_response: Dict[str, object] = {}

    async def retract_task() -> None:
        mutation_response.update(await clients[0].retract_facts(RETRACTED_FACT))

    for i in range(total_queries):
        tasks.append(
            asyncio.create_task(
                query_task(clients[i % len(clients)], QUERY_TEXTS[i % len(QUERY_TEXTS)])
            )
        )
        if i == total_queries // 2:
            tasks.append(asyncio.create_task(retract_task()))
    await asyncio.gather(*tasks)
    stats = await clients[0].stats()
    for client in clients:
        await client.close()
    await server.shutdown()

    # the oracle: fresh single-shot answers at each generation the server
    # could have stamped (0 = initial facts, 1 = after the retraction)
    queries = [parse_query(text) for text in QUERY_TEXTS]
    oracle: Dict[int, Dict[str, List[List[str]]]] = {}
    for generation, lines in (
        (0, fact_lines),
        (1, [line for line in fact_lines if line != RETRACTED_FACT]),
    ):
        answers = kb.answer_many(queries, parse_facts("\n".join(lines)))
        oracle[generation] = {
            text: encode_answers(answer_set)
            for text, answer_set in zip(QUERY_TEXTS, answers)
        }

    failures = 0
    for text, generation, answers in observed:
        if generation not in oracle:
            print(f"FAIL: {text!r} answered at unexpected generation {generation}")
            failures += 1
        elif answers != oracle[generation][text]:
            print(
                f"FAIL: {text!r} at generation {generation}: served {answers!r}, "
                f"oracle says {oracle[generation][text]!r}"
            )
            failures += 1

    kb_stats = stats["kbs"]["cim"]
    cache = stats["answer_cache"]
    batching = stats["batching"]
    print(
        f"serve smoke: {len(observed)} answers checked against the oracle, "
        f"{failures} mismatches"
    )
    print(
        f"  generation={kb_stats['generation']} batches={batching['batches']} "
        f"cache_hit_rate={cache['hit_rate']} dedup_saved={batching['dedup_saved']} "
        f"workers={stats['workers']['mode']}"
    )
    if len(observed) != total_queries:
        print(f"FAIL: expected {total_queries} answers, saw {len(observed)}")
        failures += 1
    if kb_stats["generation"] != 1 or "retracted_facts" not in mutation_response:
        print(f"FAIL: retraction did not land (response: {mutation_response})")
        failures += 1
    if cache["invalidations"] < 1:
        print("FAIL: the retraction never invalidated the answer cache")
        failures += 1
    return 1 if failures else 0


#: the segment-tier stage adds a TGD/fact family disconnected from the CIM
#: queries, so a demand answer provably leaves at least one segment undecoded
LAZY_SIGMA = SIGMA + "Tag(?x) -> Tagged(?x).\n"


async def _run_lazy_kb(workers: int) -> int:
    """The ``repro-kb/v2`` segment-tier case: save → load_or_compile → serve.

    Exercises the loading path of ``python -m repro serve``: the KB is saved
    with its facts as v2 segments, reopened with
    :meth:`~repro.api.KnowledgeBase.load_or_compile`, probed cold with one
    bound demand query (asserting only the demanded predicates' segments
    decoded), then booted into a :class:`ReasoningServer` whose answers are
    checked against a direct oracle.
    """
    import os
    import tempfile

    from ..api import KnowledgeBase
    from ..datalog.query import QueryOptions, parse_query
    from ..logic.parser import parse_facts, parse_program
    from .protocol import encode_answers
    from .server import Client, ReasoningServer, ServedKB

    program = parse_program(LAZY_SIGMA)
    kb = KnowledgeBase.compile(program.tgds)
    fact_lines = _fact_lines() + ["Tag(aux1).", "Tag(aux2)."]
    initial = parse_facts("\n".join(fact_lines))

    handle, path = tempfile.mkstemp(suffix=".json", prefix="repro-kb-")
    os.close(handle)
    failures = 0
    try:
        kb.save(path, facts=initial)
        loaded_kb, segments = KnowledgeBase.load_or_compile(path)
        # cold bound demand answer: only the demanded predicates may decode
        cold = loaded_kb.session(segments, defer_materialization=True)
        query = parse_query("Equipment(sw2)")
        demanded = cold.answer(query, options=QueryOptions(strategy="demand"))
        expected = kb.answer_many([query], initial)[0]
        if demanded != expected:
            print(f"FAIL: lazy demand answer {demanded!r} != oracle {expected!r}")
            failures += 1
        if not 0 < segments.predicates_loaded < segments.total_predicates:
            print(
                "FAIL: cold demand answer decoded "
                f"{segments.predicates_loaded}/{segments.total_predicates} "
                "segments; expected a non-empty strict subset"
            )
            failures += 1
        print(
            f"serve smoke (lazy kb): {segments.predicates_loaded}/"
            f"{segments.total_predicates} segments decoded by the cold "
            "demand answer"
        )
        # serve the reopened KB the way `python -m repro serve` does;
        # serving materializes eagerly, draining the remaining segments
        server = ReasoningServer(
            [ServedKB("cim", loaded_kb, segments)], workers=workers
        )
        await server.start()
        await server.warm()
        host, port = await server.start_tcp()
        client = await Client.connect(host, port)
        queries = [parse_query(text) for text in QUERY_TEXTS]
        oracle = kb.answer_many(queries, initial)
        checked = 0
        for text, answer_set in zip(QUERY_TEXTS, oracle):
            response = await client.query(text)
            if response["answers"] != encode_answers(answer_set):
                print(
                    f"FAIL: lazy-kb server served {response['answers']!r} for "
                    f"{text!r}, oracle says {encode_answers(answer_set)!r}"
                )
                failures += 1
            checked += 1
        await client.close()
        await server.shutdown()
        print(
            f"serve smoke (lazy kb): {checked} served answers checked against "
            f"the oracle, {failures} failures"
        )
    finally:
        os.unlink(path)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queries", type=int, default=50)
    options = parser.parse_args(argv)
    status = asyncio.run(_run(options.workers, options.queries))
    if status:
        return status
    return asyncio.run(_run_lazy_kb(options.workers))


if __name__ == "__main__":
    sys.exit(main())
