"""End-to-end smoke check for the serving layer (the CI ``serve`` job).

Boots a real :class:`~repro.serve.server.ReasoningServer` with a TCP
listener, fires ~50 concurrent queries from several pipelined clients with
one retraction interleaved mid-stream, and asserts that every response
agrees with a direct :meth:`repro.api.KnowledgeBase.answer_many` oracle at
the generation the server stamped on it.  Exercises the whole stack —
NDJSON framing, micro-batching, the answer cache across an invalidation,
the worker tier (process pool by default), and graceful shutdown.

A second stage covers the ``repro-kb/v2`` segment tier: the KB is saved
*with its facts* as per-predicate fact segments, reopened through
:meth:`repro.api.KnowledgeBase.load_or_compile` (the loading contract of
``python -m repro serve``), probed cold with one bound demand query — which
must decode only the demanded predicates' segments — and then served, with
every answer checked against the oracle again.

A third stage (``--chaos``) runs the fault-injection harness: a
deterministic :class:`~repro.serve.faults.FaultPlan` kills worker
processes (twice in a row on the first post-warm batch, once under a
mutation), delays a task past its deadline, drops a connection
mid-request, and floods a stalled admission queue — asserting the server
answers every surviving request correctly, sheds and times out with
structured errors, checkpoints the op log, and counts every recovery in
its ``resilience`` stats block.

Run it as::

    python -m repro.serve.smoke [--workers N] [--queries N] [--chaos]

Exit status 0 means every concurrent answer matched the oracle.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Dict, List, Tuple

SIGMA = """
ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
ACTerminal(?x) -> Terminal(?x).
hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
"""

RETRACTED_FACT = "ACEquipment(sw1)."

QUERY_TEXTS = (
    "Equipment(?x)",
    "Terminal(?x)",
    "ACEquipment(?x)",
    "ACTerminal(?x)",
    "hasTerminal(?x, ?y)",
    "ACEquipment(?x), hasTerminal(?x, ?y)",
)


def _fact_lines(devices: int = 12) -> List[str]:
    lines = []
    for i in range(1, devices + 1):
        lines.append(f"ACEquipment(sw{i}).")
        if i % 2 == 0:
            lines.append(f"hasTerminal(sw{i}, trm{i}).")
            lines.append(f"ACTerminal(trm{i}).")
    return lines


async def _run(workers: int, total_queries: int) -> int:
    from ..api import KnowledgeBase
    from ..datalog.query import parse_query
    from ..logic.parser import parse_facts, parse_program
    from .protocol import encode_answers
    from .server import Client, ReasoningServer, ServedKB

    program = parse_program(SIGMA)
    kb = KnowledgeBase.compile(program.tgds)
    fact_lines = _fact_lines()
    initial = parse_facts("\n".join(fact_lines))

    server = ReasoningServer([ServedKB("cim", kb, initial)], workers=workers)
    await server.start()
    await server.warm()
    host, port = await server.start_tcp()
    print(f"serve smoke: listening on {host}:{port} (workers={workers})")

    observed: List[Tuple[str, int, List[List[str]]]] = []

    async def query_task(client: Client, text: str) -> None:
        response = await client.query(text)
        observed.append((text, response["generation"], response["answers"]))

    clients = [await Client.connect(host, port) for _ in range(5)]
    tasks = []
    mutation_response: Dict[str, object] = {}

    async def retract_task() -> None:
        mutation_response.update(await clients[0].retract_facts(RETRACTED_FACT))

    for i in range(total_queries):
        tasks.append(
            asyncio.create_task(
                query_task(clients[i % len(clients)], QUERY_TEXTS[i % len(QUERY_TEXTS)])
            )
        )
        if i == total_queries // 2:
            tasks.append(asyncio.create_task(retract_task()))
    await asyncio.gather(*tasks)
    stats = await clients[0].stats()
    for client in clients:
        await client.close()
    await server.shutdown()

    # the oracle: fresh single-shot answers at each generation the server
    # could have stamped (0 = initial facts, 1 = after the retraction)
    queries = [parse_query(text) for text in QUERY_TEXTS]
    oracle: Dict[int, Dict[str, List[List[str]]]] = {}
    for generation, lines in (
        (0, fact_lines),
        (1, [line for line in fact_lines if line != RETRACTED_FACT]),
    ):
        answers = kb.answer_many(queries, parse_facts("\n".join(lines)))
        oracle[generation] = {
            text: encode_answers(answer_set)
            for text, answer_set in zip(QUERY_TEXTS, answers)
        }

    failures = 0
    for text, generation, answers in observed:
        if generation not in oracle:
            print(f"FAIL: {text!r} answered at unexpected generation {generation}")
            failures += 1
        elif answers != oracle[generation][text]:
            print(
                f"FAIL: {text!r} at generation {generation}: served {answers!r}, "
                f"oracle says {oracle[generation][text]!r}"
            )
            failures += 1

    kb_stats = stats["kbs"]["cim"]
    cache = stats["answer_cache"]
    batching = stats["batching"]
    print(
        f"serve smoke: {len(observed)} answers checked against the oracle, "
        f"{failures} mismatches"
    )
    print(
        f"  generation={kb_stats['generation']} batches={batching['batches']} "
        f"cache_hit_rate={cache['hit_rate']} dedup_saved={batching['dedup_saved']} "
        f"workers={stats['workers']['mode']}"
    )
    if len(observed) != total_queries:
        print(f"FAIL: expected {total_queries} answers, saw {len(observed)}")
        failures += 1
    if kb_stats["generation"] != 1 or "retracted_facts" not in mutation_response:
        print(f"FAIL: retraction did not land (response: {mutation_response})")
        failures += 1
    if cache["invalidations"] < 1:
        print("FAIL: the retraction never invalidated the answer cache")
        failures += 1
    return 1 if failures else 0


#: the segment-tier stage adds a TGD/fact family disconnected from the CIM
#: queries, so a demand answer provably leaves at least one segment undecoded
LAZY_SIGMA = SIGMA + "Tag(?x) -> Tagged(?x).\n"


async def _run_lazy_kb(workers: int) -> int:
    """The ``repro-kb/v2`` segment-tier case: save → load_or_compile → serve.

    Exercises the loading path of ``python -m repro serve``: the KB is saved
    with its facts as v2 segments, reopened with
    :meth:`~repro.api.KnowledgeBase.load_or_compile`, probed cold with one
    bound demand query (asserting only the demanded predicates' segments
    decoded), then booted into a :class:`ReasoningServer` whose answers are
    checked against a direct oracle.
    """
    import os
    import tempfile

    from ..api import KnowledgeBase
    from ..datalog.query import QueryOptions, parse_query
    from ..logic.parser import parse_facts, parse_program
    from .protocol import encode_answers
    from .server import Client, ReasoningServer, ServedKB

    program = parse_program(LAZY_SIGMA)
    kb = KnowledgeBase.compile(program.tgds)
    fact_lines = _fact_lines() + ["Tag(aux1).", "Tag(aux2)."]
    initial = parse_facts("\n".join(fact_lines))

    handle, path = tempfile.mkstemp(suffix=".json", prefix="repro-kb-")
    os.close(handle)
    failures = 0
    try:
        kb.save(path, facts=initial)
        loaded_kb, segments = KnowledgeBase.load_or_compile(path)
        # cold bound demand answer: only the demanded predicates may decode
        cold = loaded_kb.session(segments, defer_materialization=True)
        query = parse_query("Equipment(sw2)")
        demanded = cold.answer(query, options=QueryOptions(strategy="demand"))
        expected = kb.answer_many([query], initial)[0]
        if demanded != expected:
            print(f"FAIL: lazy demand answer {demanded!r} != oracle {expected!r}")
            failures += 1
        if not 0 < segments.predicates_loaded < segments.total_predicates:
            print(
                "FAIL: cold demand answer decoded "
                f"{segments.predicates_loaded}/{segments.total_predicates} "
                "segments; expected a non-empty strict subset"
            )
            failures += 1
        print(
            f"serve smoke (lazy kb): {segments.predicates_loaded}/"
            f"{segments.total_predicates} segments decoded by the cold "
            "demand answer"
        )
        # serve the reopened KB the way `python -m repro serve` does;
        # serving materializes eagerly, draining the remaining segments
        server = ReasoningServer(
            [ServedKB("cim", loaded_kb, segments)], workers=workers
        )
        await server.start()
        await server.warm()
        host, port = await server.start_tcp()
        client = await Client.connect(host, port)
        queries = [parse_query(text) for text in QUERY_TEXTS]
        oracle = kb.answer_many(queries, initial)
        checked = 0
        for text, answer_set in zip(QUERY_TEXTS, oracle):
            response = await client.query(text)
            if response["answers"] != encode_answers(answer_set):
                print(
                    f"FAIL: lazy-kb server served {response['answers']!r} for "
                    f"{text!r}, oracle says {encode_answers(answer_set)!r}"
                )
                failures += 1
            checked += 1
        await client.close()
        await server.shutdown()
        print(
            f"serve smoke (lazy kb): {checked} served answers checked against "
            f"the oracle, {failures} failures"
        )
    finally:
        os.unlink(path)
    return 1 if failures else 0


async def _run_chaos(workers: int) -> int:
    """The fault-injection stage: the server must survive a scripted storm.

    Boots the *pool* tier under a deterministic :class:`FaultPlan` and
    drives it through every failure mode the resilience layer claims to
    handle, oracle-checking each surviving answer at its stamped
    generation:

    * the first post-warm query batch is killed **twice** in a row (two
      worker deaths, two pool rebuilds) and must still answer correctly;
    * a mutation's worker is killed mid-task — supervision retries it and
      the op must land **exactly once** (generation advances by exactly 1);
    * enough mutations flow to cross the checkpoint threshold, and the
      op log must end up shorter than the total mutation count;
    * a delayed task drives a query past its ``deadline_ms`` — the client
      must get a structured ``timeout`` well before the injected delay
      ends (a deadline, not a hang);
    * a connection is dropped mid-request — the client must fail fast
      with :class:`ClientDisconnectedError` and a reconnect must serve;
    * a stalled mutation barrier plus a query flood overruns the bounded
      admission queue — some requests must shed with ``overloaded``, and
      every admitted one must still answer correctly.
    """
    import time as _time

    from ..api import KnowledgeBase
    from ..datalog.query import parse_query
    from ..logic.parser import parse_facts, parse_program
    from .faults import FaultPlan
    from .protocol import encode_answers
    from .server import (
        Client,
        ClientDisconnectedError,
        ReasoningServer,
        ServedKB,
        ServeError,
    )

    workers = max(2, workers)  # real worker death needs the pool tier
    program = parse_program(SIGMA)
    kb = KnowledgeBase.compile(program.tgds)
    fact_lines = _fact_lines()
    initial = parse_facts("\n".join(fact_lines))

    # warm() dispatches one task per worker slot (indexes 0..workers-1);
    # kill the first post-warm dispatch and its first retry
    plan = FaultPlan(kill_on_tasks={workers, workers + 1})
    server = ReasoningServer(
        [ServedKB("cim", kb, initial)],
        workers=workers,
        checkpoint_threshold=4,
        max_queue_depth=32,
        fault_plan=plan,
    )
    await server.start()
    await server.warm()
    host, port = await server.start_tcp()
    print(f"serve smoke (chaos): listening on {host}:{port} (workers={workers})")

    failures = 0
    queries = [parse_query(text) for text in QUERY_TEXTS]
    #: absolute generation -> surviving fact lines at that generation
    history: Dict[int, List[str]] = {0: list(fact_lines)}
    oracle_cache: Dict[int, Dict[str, List[List[str]]]] = {}

    def check(text: str, generation: int, answers: List[List[str]], where: str) -> None:
        nonlocal failures
        if generation not in history:
            print(
                f"FAIL({where}): {text!r} answered at unknown generation "
                f"{generation}"
            )
            failures += 1
            return
        if generation not in oracle_cache:
            lines = history[generation]
            answer_sets = kb.answer_many(queries, parse_facts("\n".join(lines)))
            oracle_cache[generation] = {
                q: encode_answers(a) for q, a in zip(QUERY_TEXTS, answer_sets)
            }
        expected = oracle_cache[generation][text]
        if answers != expected:
            print(
                f"FAIL({where}): {text!r} at generation {generation}: served "
                f"{answers!r}, oracle says {expected!r}"
            )
            failures += 1

    clients = [await Client.connect(host, port) for _ in range(3)]

    # -- stage 1: the double-killed query batch --------------------------
    print("serve smoke (chaos): stage 1 — double-killed query batch")
    async def killed_query(client: Client, text: str) -> None:
        response = await client.query(text)
        check(text, response["generation"], response["answers"], "double-kill")

    await asyncio.gather(
        *(
            killed_query(clients[i % len(clients)], QUERY_TEXTS[i % len(QUERY_TEXTS)])
            for i in range(len(QUERY_TEXTS) * 2)
        )
    )
    if plan.injected["kills"] < 2:
        print(
            f"FAIL(double-kill): expected both scripted kills to fire, "
            f"saw {plan.injected['kills']}"
        )
        failures += 1

    # -- stage 2: mutations across a kill and a checkpoint ---------------
    print("serve smoke (chaos): stage 2 — mutations across a kill and a checkpoint")
    mutations: List[Tuple[str, str]] = [
        ("add", "ACEquipment(chaos1)."),
        ("retract", "ACEquipment(sw1)."),
        ("add", "hasTerminal(chaos1, ctrm1). ACTerminal(ctrm1)."),
        ("add", "ACEquipment(chaos2)."),
        ("retract", "ACEquipment(chaos2)."),
        ("add", "ACEquipment(chaos3)."),
    ]
    kill_mutation_index = 2  # arm a worker kill under this one
    generation = 0
    for index, (kind, facts) in enumerate(mutations):
        if index == kill_mutation_index:
            plan.schedule_kill_on_next_task()
        if kind == "add":
            response = await clients[0].add_facts(facts)
        else:
            response = await clients[0].retract_facts(facts)
        if response["generation"] != generation + 1:
            print(
                f"FAIL(mutation): op {index} ({kind}) moved the generation "
                f"{generation} -> {response['generation']}; exactly-once "
                "application requires +1"
            )
            failures += 1
        generation = response["generation"]
        lines = set(history[generation - 1])
        delta = {
            line.strip() for line in facts.replace(". ", ".\n").splitlines() if line.strip()
        }
        lines = lines | delta if kind == "add" else lines - delta
        history[generation] = sorted(lines)
        # a query between every mutation, checked at its stamped generation
        probe = await clients[1].query(QUERY_TEXTS[index % len(QUERY_TEXTS)])
        check(
            probe["query"], probe["generation"], probe["answers"], "post-mutation"
        )

    # -- stage 3: deadline enforcement (a timeout, not a hang) -----------
    print("serve smoke (chaos): stage 3 — deadline enforcement")
    plan.schedule_delay_on_next_task(0.8)
    started = _time.perf_counter()
    try:
        await clients[2].query(QUERY_TEXTS[0], deadline_ms=150)
    except ServeError as exc:
        elapsed = _time.perf_counter() - started
        if exc.kind != "timeout":
            print(f"FAIL(deadline): expected error_kind 'timeout', got {exc.kind!r}")
            failures += 1
        if elapsed > 0.7:
            print(
                f"FAIL(deadline): timeout took {elapsed:.3f}s — longer than "
                "the injected delay; the deadline did not actually fire"
            )
            failures += 1
    else:
        print("FAIL(deadline): delayed query answered instead of timing out")
        failures += 1
    await asyncio.sleep(0.9)  # let the delayed worker task land

    # -- stage 4: dropped connection fails fast, reconnect serves --------
    print("serve smoke (chaos): stage 4 — dropped connection")
    plan.schedule_drop_on_next_request()
    try:
        await clients[2].query(QUERY_TEXTS[1])
    except ClientDisconnectedError:
        pass
    else:
        print("FAIL(drop): request on a dropped connection did not fail")
        failures += 1
    if not clients[2].disconnected:
        print("FAIL(drop): client does not know its connection died")
        failures += 1
    try:
        await clients[2].query(QUERY_TEXTS[1])
    except ClientDisconnectedError:
        pass
    else:
        print("FAIL(drop): dead client accepted another request")
        failures += 1
    clients[2] = await Client.connect(host, port)
    response = await clients[2].query(QUERY_TEXTS[1])
    check(QUERY_TEXTS[1], response["generation"], response["answers"], "reconnect")

    # -- stage 5: backpressure under a stalled mutation barrier ----------
    print("serve smoke (chaos): stage 5 — backpressure flood")
    plan.schedule_delay_on_next_task(0.5)
    stall = asyncio.create_task(clients[0].add_facts("ACEquipment(chaos4)."))
    # the flood below is answered *after* the stalled op applies, so its
    # oracle generation is knowable now
    history[generation + 1] = sorted(
        set(history[generation]) | {"ACEquipment(chaos4)."}
    )
    await asyncio.sleep(0.1)  # let the drain loop block on the stalled op
    sheds = 0

    async def flooded_query(client: Client, text: str) -> None:
        nonlocal sheds, failures
        try:
            response = await client.query(text)
        except ServeError as exc:
            if exc.kind == "overloaded":
                sheds += 1
            else:
                print(f"FAIL(flood): unexpected error {exc} (kind={exc.kind!r})")
                failures += 1
            return
        check(text, response["generation"], response["answers"], "flood")

    await asyncio.gather(
        *(
            flooded_query(clients[i % 2], QUERY_TEXTS[i % len(QUERY_TEXTS)])
            for i in range(48)
        )
    )
    response = await stall
    if response["generation"] != generation + 1:
        print(
            f"FAIL(flood): the stalled mutation moved the generation "
            f"{generation} -> {response['generation']}"
        )
        failures += 1
    generation = response["generation"]
    if sheds < 1:
        print("FAIL(flood): the bounded queue never shed under overload")
        failures += 1

    # -- the resilience ledger must corroborate the script ---------------
    stats = await clients[0].stats()
    for client in clients:
        if not client.disconnected:
            await client.close()
    await server.shutdown()

    resilience = stats["resilience"]
    injected = stats["fault_injection"]
    kb_stats = stats["kbs"]["cim"]
    checks = [
        (resilience["worker_restarts"] >= 1, "no pool rebuild was recorded"),
        (resilience["task_retries"] >= 2, "supervision retries not recorded"),
        (resilience["timeouts"] >= 1, "the deadline timeout was not counted"),
        (resilience["sheds"] >= 1, "the shed requests were not counted"),
        (resilience["checkpoints"] >= 1, "no checkpoint was ever taken"),
        (injected["kills"] == 3, f"expected 3 kills, saw {injected['kills']}"),
        (injected["drops"] == 1, f"expected 1 drop, saw {injected['drops']}"),
        (
            kb_stats["op_log_length"] < len(mutations) + 1,
            "checkpointing never truncated the op log",
        ),
        (
            kb_stats["generation"] == len(mutations) + 1,
            f"expected generation {len(mutations) + 1}, "
            f"saw {kb_stats['generation']}",
        ),
    ]
    for passed, complaint in checks:
        if not passed:
            print(f"FAIL(stats): {complaint}")
            failures += 1
    print(
        "serve smoke (chaos): survived "
        f"kills={injected['kills']} delays={injected['delays']} "
        f"drops={injected['drops']} restarts={resilience['worker_restarts']} "
        f"retries={resilience['task_retries']} sheds={resilience['sheds']} "
        f"timeouts={resilience['timeouts']} "
        f"checkpoints={resilience['checkpoints']}; {failures} failures"
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="also run the fault-injection stage (forces the pool tier)",
    )
    options = parser.parse_args(argv)
    status = asyncio.run(_run(options.workers, options.queries))
    if status:
        return status
    status = asyncio.run(_run_lazy_kb(options.workers))
    if status:
        return status
    if options.chaos:
        return asyncio.run(_run_chaos(options.workers))
    return 0


if __name__ == "__main__":
    sys.exit(main())
