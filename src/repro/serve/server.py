"""The long-lived reasoning server: asyncio front end over the worker tier.

:class:`ReasoningServer` holds one or more compiled knowledge bases
resident and serves concurrent query/add/retract traffic against them:

* requests enter through :meth:`handle_request` (used directly by the
  in-process :class:`LocalClient` and by the NDJSON-over-TCP listener);
* each KB's requests flow through a :class:`~repro.serve.batcher.BatchQueue`
  drained by one task per KB: consecutive queries are micro-batched (cache
  hits answered immediately, the rest deduplicated and evaluated once),
  mutations are barriers that bump the answer-cache generation and append
  to the KB's op log;
* CPU-bound work runs on the worker tier (:mod:`repro.serve.workers`) —
  inline threads or a process pool of warm sessions that catch up against
  the op log;
* :meth:`shutdown` drains: the queues refuse new work, in-flight batches
  finish and their responses are delivered, then the pool is torn down.

Consistency contract: responses are sequentially consistent per KB — a
query observes every mutation whose response was delivered before the
query was submitted, and the answer cache can never serve a result from
before a mutation (generation-stamped entries, see
:mod:`repro.serve.cache`).

Two knowledge bases registered under different names but with the same Σ
fingerprint *and* the same initial facts share one serving state (one op
log, one set of warm worker sessions) — the fingerprint is the safe share
key, which is how a fleet of logical KB names stays cheap.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..api import KnowledgeBase
from ..datalog.query import QueryValidationError, parse_query
from ..kb.cache import compile_cache_stats
from ..logic.atoms import Atom
from ..logic.instance import Instance
from ..logic.printer import format_fact
from ..logic.parser import parse_facts
from .batcher import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE_DEPTH,
    MUTATION_KINDS,
    BatcherStats,
    BatchQueue,
    PendingRequest,
    QueueOverloadedError,
)
from .cache import DEFAULT_CAPACITY, AnswerCache, query_fingerprint
from .faults import FaultPlan
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    validate_request,
)
from .workers import build_kb_spec, make_worker_tier

#: server-side default deadline applied to query/add/retract requests that
#: do not carry their own ``deadline_ms``; generous enough that only a
#: genuinely wedged request trips it, finite so nothing ever hangs forever
DEFAULT_DEADLINE_MS = 30_000.0

#: op-log length at which the server snapshots the surviving base facts
#: and truncates the log, so worker catch-up (and every pool rebuild after
#: a crash) replays O(ops since checkpoint) instead of O(all history)
DEFAULT_CHECKPOINT_THRESHOLD = 32


class ServeError(RuntimeError):
    """Raised for server lifecycle misuse and failed client requests.

    ``kind`` mirrors the response's ``error_kind`` when the server tagged
    the failure (``"timeout"``, ``"overloaded"``), so callers can branch
    without parsing the message.
    """

    def __init__(self, message: str, kind: Optional[str] = None) -> None:
        super().__init__(message)
        self.kind = kind


class ClientDisconnectedError(ServeError):
    """The connection died with requests in flight.

    Raised promptly for every pending request (no future is left dangling)
    and by any later request on the dead client; reconnect with
    :meth:`Client.connect` and resubmit — the server never saw, or never
    answered, the failed requests.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, kind="disconnected")


@dataclass
class ServedKB:
    """One knowledge base to serve: a handle name, the KB, its base facts."""

    name: str
    kb: KnowledgeBase
    initial_facts: "Instance | Sequence[Atom]" = ()


class _KBState:
    """Per-share-key serving state: queue, op log, checkpoint, batcher stats."""

    def __init__(
        self,
        key: str,
        kb: KnowledgeBase,
        facts_text: str,
        max_queue_depth: Optional[int] = DEFAULT_MAX_QUEUE_DEPTH,
    ) -> None:
        self.key = key
        self.kb = kb
        self.facts_text = facts_text
        self.queue = BatchQueue(max_queue_depth)
        #: ordered mutation log *since the last checkpoint*:
        #: ("add" | "retract", facts text)
        self.ops: List[Tuple[str, str]] = []
        #: the surviving base facts as canonical fact lines — the front end
        #: folds every applied mutation in, so a checkpoint is one snapshot
        #: of this set (a session materialized from it equals a session
        #: that replayed the full history; the churn scenario pins that)
        self.base_lines: Set[str] = {
            line for line in facts_text.splitlines() if line
        }
        #: monotonically increasing checkpoint epoch (0 = the original spec)
        self.epoch = 0
        #: ops folded into the current checkpoint; the absolute generation
        #: of the KB is checkpoint_base + len(ops)
        self.checkpoint_base = 0
        #: the checkpoint's fact snapshot (shipped to workers per task)
        self.checkpoint_facts = facts_text
        #: checkpoints taken over this state's lifetime
        self.checkpoints = 0
        self.stats = BatcherStats()
        #: effective strategy (reported by the workers) -> evaluations run
        self.evaluated_by_strategy: Dict[str, int] = {}
        self.inflight: Set[asyncio.Task] = set()
        self.drain_task: Optional[asyncio.Task] = None

    @property
    def generation(self) -> int:
        return self.checkpoint_base + len(self.ops)

    def checkpoint_payload(self) -> Optional[Dict[str, object]]:
        """What a worker task needs to build/advance a session: the current
        checkpoint (``None`` at epoch 0 — the spec facts already shipped
        with the worker tier's specs are the epoch-0 snapshot)."""
        if self.epoch == 0:
            return None
        return {
            "epoch": self.epoch,
            "base": self.checkpoint_base,
            "facts": self.checkpoint_facts,
        }

    def fold_mutation(self, kind: str, fact_lines: Sequence[str]) -> None:
        """Fold one applied mutation into the surviving-base-facts set."""
        if kind == "add":
            self.base_lines.update(fact_lines)
        else:
            self.base_lines.difference_update(fact_lines)

    def take_checkpoint(self) -> None:
        """Snapshot the surviving base facts and truncate the op log.

        Called only at the mutation barrier (no in-flight batches), so no
        dispatched task still references the truncated prefix; warm worker
        sessions standing at the checkpoint generation adopt the new epoch
        in place, anything behind it rebuilds from the snapshot.
        """
        self.checkpoint_base = self.generation
        self.ops = []
        self.epoch += 1
        self.checkpoint_facts = "\n".join(sorted(self.base_lines))
        self.checkpoints += 1


class ReasoningServer:
    """Serve concurrent reasoning traffic over resident compiled KBs."""

    def __init__(
        self,
        served: Sequence[ServedKB],
        workers: int = 0,
        cache_size: int = DEFAULT_CAPACITY,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        default_deadline_ms: Optional[float] = DEFAULT_DEADLINE_MS,
        max_queue_depth: Optional[int] = DEFAULT_MAX_QUEUE_DEPTH,
        checkpoint_threshold: int = DEFAULT_CHECKPOINT_THRESHOLD,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if not served:
            raise ValueError("a server needs at least one knowledge base")
        if max_batch_size < 1:
            raise ValueError(f"max batch size must be positive, got {max_batch_size}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default deadline must be positive, got {default_deadline_ms}"
            )
        if checkpoint_threshold < 1:
            raise ValueError(
                f"checkpoint threshold must be positive, got {checkpoint_threshold}"
            )
        self._names: Dict[str, str] = {}
        self._states: Dict[str, _KBState] = {}
        specs: Dict[str, Dict[str, str]] = {}
        for entry in served:
            if entry.name in self._names:
                raise ValueError(f"duplicate knowledge base name {entry.name!r}")
            if not entry.kb.rewriting.completed:
                raise ValueError(
                    f"knowledge base {entry.name!r} carries an incomplete "
                    "rewriting (timeout or clause limit during compile); "
                    "serving it would silently drop certain answers"
                )
            facts_text = "\n".join(
                format_fact(fact) for fact in sorted(entry.initial_facts, key=str)
            )
            # the safe share key: same Σ + same base facts ⇒ one op log and
            # one set of warm worker sessions, however many names point at it
            facts_digest = hashlib.sha256(facts_text.encode("utf-8")).hexdigest()
            key = f"{entry.kb.fingerprint[:16]}/{facts_digest[:8]}"
            self._names[entry.name] = key
            if key not in self._states:
                self._states[key] = _KBState(
                    key, entry.kb, facts_text, max_queue_depth
                )
                specs[key] = build_kb_spec(entry.kb, entry.initial_facts)
        self._default_key = (
            next(iter(self._states)) if len(self._states) == 1 else None
        )
        self._specs = specs
        self._workers = workers
        self._max_batch_size = max_batch_size
        self._default_deadline_ms = default_deadline_ms
        self._checkpoint_threshold = checkpoint_threshold
        self._fault_plan = fault_plan
        self.cache = AnswerCache(cache_size)
        self._tier = None
        self._worker_processes: Dict[str, Dict[str, object]] = {}
        self._closing = False
        self._started_at: Optional[float] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ReasoningServer":
        """Create the worker tier and the per-KB drain loops."""
        if self._tier is not None:
            raise ServeError("server already started")
        self._tier = make_worker_tier(self._specs, self._workers, self._fault_plan)
        self._started_at = time.monotonic()
        for state in self._states.values():
            state.drain_task = asyncio.create_task(self._drain(state))
        return self

    async def warm(self) -> None:
        """Pre-materialize every KB on the worker tier before taking traffic.

        Dispatches one empty batch per worker slot per KB; in pool mode
        that warms (up to) every worker process, in inline mode the single
        local session.
        """
        self._require_started()
        slots = max(1, self._tier.describe().get("max_workers", 1))
        tasks = [
            self._tier.answer_batch(
                state.key, list(state.ops), [], None, state.checkpoint_payload()
            )
            for state in self._states.values()
            for _ in range(slots)
        ]
        for payload in await asyncio.gather(*tasks):
            self._note_worker(payload)

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Listen for NDJSON clients; returns the bound (host, port)."""
        self._require_started()
        if self._tcp_server is not None:
            raise ServeError("TCP listener already running")
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._tcp_server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish in-flight batches, stop."""
        if self._tier is None or self._closing:
            return
        self._closing = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for state in self._states.values():
            state.queue.close()
        drains = [
            state.drain_task
            for state in self._states.values()
            if state.drain_task is not None
        ]
        if drains:
            await asyncio.gather(*drains, return_exceptions=True)
        await self._tier.shutdown()

    def _require_started(self) -> None:
        if self._tier is None:
            raise ServeError("server not started; call start() first")

    def local_client(self) -> "LocalClient":
        """An in-process client speaking the protocol without sockets."""
        return LocalClient(self)

    # ------------------------------------------------------------------
    # request handling (shared by LocalClient and the TCP listener)
    # ------------------------------------------------------------------
    async def handle_request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Serve one decoded protocol request; always returns a response."""
        request_id = message.get("id")
        try:
            op = validate_request(message)
        except ProtocolError as exc:
            return error_response(request_id, str(exc))
        if op == "ping":
            return ok_response(request_id, pong=True, protocol=PROTOCOL_VERSION)
        if op == "stats":
            return ok_response(request_id, stats=self.stats())
        self._require_started()
        state = self._resolve_kb(message.get("kb"))
        if state is None:
            known = ", ".join(sorted(self._names)) or "(none)"
            return error_response(
                request_id,
                f"unknown knowledge base {message.get('kb')!r}; serving: {known}",
            )
        if op == "query":
            try:
                query = parse_query(message["query"])
            except (QueryValidationError, ValueError) as exc:
                return error_response(request_id, f"bad query: {exc}")
            pending = PendingRequest(
                kind="query",
                text=str(message["query"]),
                future=asyncio.get_running_loop().create_future(),
                fingerprint=query_fingerprint(query),
                strategy=str(message.get("strategy", "auto")),
            )
        else:
            try:
                parse_facts(message["facts"])
            except ValueError as exc:
                # reject before the op can enter the log: a malformed entry
                # would poison every later worker catch-up
                return error_response(request_id, f"bad facts: {exc}")
            pending = PendingRequest(
                kind=op,
                text=str(message["facts"]),
                future=asyncio.get_running_loop().create_future(),
            )
        try:
            state.queue.submit(pending)
        except QueueOverloadedError as exc:
            # shed at the door: admitting past the high-water mark only
            # grows the backlog's latency, it never grows throughput
            state.stats.record_shed()
            return error_response(request_id, str(exc), kind="overloaded")
        except RuntimeError as exc:
            return error_response(request_id, str(exc))
        deadline_ms = message.get("deadline_ms", self._default_deadline_ms)
        try:
            result = await asyncio.wait_for(
                pending.future,
                timeout=deadline_ms / 1000.0 if deadline_ms is not None else None,
            )
        except asyncio.TimeoutError:
            # wait_for already cancelled the future, so the drain loop will
            # skip this request: a still-queued mutation is never applied,
            # a still-queued query never dispatched, and an in-flight batch
            # simply drops this requester when it lands
            state.stats.record_timeout()
            return error_response(
                request_id,
                f"deadline of {deadline_ms}ms expired before the "
                f"{op} completed",
                kind="timeout",
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: B902 - worker failures become responses
            return error_response(request_id, f"{type(exc).__name__}: {exc}")
        return ok_response(request_id, **result)

    def _resolve_kb(self, name: object) -> Optional[_KBState]:
        if name is None:
            if self._default_key is None:
                return None
            return self._states[self._default_key]
        key = self._names.get(name)
        return self._states.get(key) if key is not None else None

    # ------------------------------------------------------------------
    # the per-KB drain loop
    # ------------------------------------------------------------------
    async def _drain(self, state: _KBState) -> None:
        queue = state.queue
        while True:
            if not len(queue):
                if queue.closed:
                    break
                await queue.wait()
                continue
            if queue.head_kind() in MUTATION_KINDS:
                # barrier: no batch may still be answering at an older
                # generation when the op enters the log, and no worker
                # session may run ahead of a later batch's assigned prefix
                await self._wait_inflight(state)
                await self._apply_mutation(state, queue.pop_mutation())
            else:
                self._dispatch_batch(
                    state, queue.pop_query_batch(self._max_batch_size)
                )
        await self._wait_inflight(state)

    async def _wait_inflight(self, state: _KBState) -> None:
        while state.inflight:
            await asyncio.gather(*list(state.inflight), return_exceptions=True)

    async def _apply_mutation(self, state: _KBState, pending: PendingRequest) -> None:
        if pending.future.done():
            # the requester's deadline expired while the op was still
            # queued: it was never acked and never entered the log, so
            # honoring the timeout means *not* applying it
            return
        state.ops.append((pending.kind, pending.text))
        self.cache.invalidate(state.key)
        state.stats.record_mutation()
        try:
            payload = await self._tier.apply_mutation(
                state.key, list(state.ops), state.checkpoint_payload()
            )
        except Exception as exc:  # noqa: B902 - delivered via the future
            self._resolve(pending, exception=exc)
            return
        self._note_worker(payload)
        # the op is applied and about to be acked: fold it into the
        # surviving-base-facts snapshot source, then checkpoint once the
        # log is long enough (we are at the barrier — no batch in flight
        # references the prefix this truncates)
        state.fold_mutation(
            pending.kind,
            [format_fact(fact) for fact in parse_facts(pending.text)],
        )
        if len(state.ops) >= self._checkpoint_threshold:
            state.take_checkpoint()
        result = dict(payload["result"])
        result["generation"] = payload["generation"]
        result["store_size"] = payload["store_size"]
        self._resolve(pending, result=result)

    def _dispatch_batch(self, state: _KBState, batch: List[PendingRequest]) -> None:
        # requests whose deadline expired while queued are already answered
        # (with a structured timeout); don't waste an evaluation on them
        batch = [pending for pending in batch if not pending.future.done()]
        if not batch:
            return
        generation = state.generation
        cache_hits = 0
        misses: Dict[str, List[PendingRequest]] = {}
        for pending in batch:
            state.stats.record_strategy(pending.strategy)
            answers = self.cache.get(state.key, pending.fingerprint)
            if answers is not None:
                cache_hits += 1
                self._resolve(
                    pending,
                    result={
                        "query": pending.text,
                        "answers": answers,
                        "count": len(answers),
                        "cached": True,
                        "generation": generation,
                    },
                )
            else:
                misses.setdefault(pending.fingerprint, []).append(pending)
        state.stats.record_batch(len(batch), cache_hits, len(misses))
        if not misses:
            return
        task = asyncio.create_task(
            self._execute_batch(
                state,
                generation,
                list(state.ops),
                state.checkpoint_payload(),
                misses,
            )
        )
        state.inflight.add(task)
        task.add_done_callback(state.inflight.discard)

    async def _execute_batch(
        self,
        state: _KBState,
        generation: int,
        ops: List[Tuple[str, str]],
        checkpoint: Optional[Dict[str, object]],
        misses: Dict[str, List[PendingRequest]],
    ) -> None:
        fingerprints = list(misses)
        texts = [misses[fp][0].text for fp in fingerprints]
        # deduplicated queries evaluate under the strategy of the first
        # request asking for them (answers are strategy-invariant, so the
        # fan-out below is correct for every requester)
        strategies = [misses[fp][0].strategy for fp in fingerprints]
        try:
            payload = await self._tier.answer_batch(
                state.key, ops, texts, strategies, checkpoint
            )
        except Exception as exc:  # noqa: B902 - delivered via the futures
            for fingerprint in fingerprints:
                for pending in misses[fingerprint]:
                    self._resolve(pending, exception=exc)
            return
        self._note_worker(payload)
        for effective in payload.get("strategies", ()):
            state.evaluated_by_strategy[effective] = (
                state.evaluated_by_strategy.get(effective, 0) + 1
            )
        for fingerprint, answers in zip(fingerprints, payload["answers"]):
            self.cache.put(state.key, fingerprint, generation, answers)
            for pending in misses[fingerprint]:
                self._resolve(
                    pending,
                    result={
                        "query": pending.text,
                        "answers": answers,
                        "count": len(answers),
                        "cached": False,
                        "generation": generation,
                    },
                )

    @staticmethod
    def _resolve(
        pending: PendingRequest,
        result: Optional[Dict[str, object]] = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        if pending.future.done():  # client gave up (disconnected / cancelled)
            return
        if exception is not None:
            pending.future.set_exception(exception)
        else:
            pending.future.set_result(result)

    def _note_worker(self, payload: Dict[str, object]) -> None:
        pid = payload.get("pid")
        stats = payload.get("compile_cache")
        if pid is not None and isinstance(stats, dict):
            self._worker_processes[str(pid)] = stats

    # ------------------------------------------------------------------
    # stats endpoint
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The JSON stats block (``op: stats`` and the perf capture)."""
        kbs: Dict[str, object] = {}
        merged = BatcherStats()
        merged_evaluated_by_strategy: Dict[str, int] = {}
        for name, key in sorted(self._names.items()):
            state = self._states[key]
            kbs[name] = {
                "share_key": state.key,
                "fingerprint": state.kb.fingerprint,
                "rules": len(state.kb.program),
                "generation": state.generation,
                "queued": len(state.queue),
                "queue_depth": len(state.queue),
                "queue_high_water": state.queue.high_water,
                "op_log_length": len(state.ops),
                "checkpoints": state.checkpoints,
                "checkpoint_epoch": state.epoch,
                "batcher": state.stats.snapshot(),
                "evaluated_by_strategy": dict(
                    sorted(state.evaluated_by_strategy.items())
                ),
            }
        for state in self._states.values():
            merged.batches += state.stats.batches
            merged.requests += state.stats.requests
            merged.cache_hits += state.stats.cache_hits
            merged.evaluated += state.stats.evaluated
            merged.dedup_saved += state.stats.dedup_saved
            merged.mutations += state.stats.mutations
            merged.sheds += state.stats.sheds
            merged.timeouts += state.stats.timeouts
            for size, count in state.stats.batch_size_histogram.items():
                merged.batch_size_histogram[size] = (
                    merged.batch_size_histogram.get(size, 0) + count
                )
            for strategy, count in state.stats.requests_by_strategy.items():
                merged.requests_by_strategy[strategy] = (
                    merged.requests_by_strategy.get(strategy, 0) + count
                )
            for strategy, count in state.evaluated_by_strategy.items():
                merged_evaluated_by_strategy[strategy] = (
                    merged_evaluated_by_strategy.get(strategy, 0) + count
                )
        batching = merged.snapshot()
        batching["evaluated_by_strategy"] = dict(
            sorted(merged_evaluated_by_strategy.items())
        )
        workers = dict(self._tier.describe()) if self._tier is not None else {}
        workers["per_process_compile_cache"] = dict(self._worker_processes)
        # the front-end process compiles too (KB loading); report it under
        # its own pid so inline mode still shows a per-process view
        workers.setdefault("frontend_compile_cache", compile_cache_stats())
        resilience = {
            "worker_restarts": workers.get("restarts", 0),
            "task_retries": workers.get("retries", 0),
            "recovery_wall_seconds": workers.get("recovery_wall_seconds", 0.0),
            "worker_rebuilds": workers.get("session_rebuilds", 0),
            "quarantined_sessions": workers.get("quarantined_sessions", 0),
            "timeouts": merged.timeouts,
            "sheds": merged.sheds,
            "checkpoints": sum(
                state.checkpoints for state in self._states.values()
            ),
        }
        payload = {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3)
            if self._started_at is not None
            else 0.0,
            "draining": self._closing,
            "kbs": kbs,
            "answer_cache": self.cache.stats(),
            "batching": batching,
            "resilience": resilience,
            "workers": workers,
        }
        if self._fault_plan is not None:
            payload["fault_injection"] = self._fault_plan.stats()
        return payload

    # ------------------------------------------------------------------
    # TCP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(self._respond(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        if self._fault_plan is not None and self._fault_plan.should_drop_request():
            # injected network death: kill the connection mid-request, no
            # response, no FIN-before-RST niceties — the client must fail
            # its in-flight futures fast and reconnect
            writer.transport.abort()
            return
        try:
            message = decode_message(line)
        except ProtocolError as exc:
            response = error_response(None, str(exc))
        else:
            response = await self.handle_request(message)
        async with write_lock:
            try:
                writer.write(encode_message(response))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing left to deliver


# ----------------------------------------------------------------------
# clients
# ----------------------------------------------------------------------
class _ClientOps:
    """Protocol helpers shared by the in-process and TCP clients."""

    async def request(self, message: Dict[str, object]) -> Dict[str, object]:
        raise NotImplementedError

    async def _checked(self, message: Dict[str, object]) -> Dict[str, object]:
        response = await self.request(message)
        if not response.get("ok"):
            raise ServeError(
                response.get("error") or "request failed",
                kind=response.get("error_kind"),
            )
        return response

    async def query(
        self,
        query: str,
        kb: Optional[str] = None,
        strategy: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, object]:
        message: Dict[str, object] = {"op": "query", "query": query}
        if kb is not None:
            message["kb"] = kb
        if strategy is not None:
            message["strategy"] = strategy
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return await self._checked(message)

    async def add_facts(
        self,
        facts: str,
        kb: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, object]:
        message: Dict[str, object] = {"op": "add", "facts": facts}
        if kb is not None:
            message["kb"] = kb
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return await self._checked(message)

    async def retract_facts(
        self,
        facts: str,
        kb: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, object]:
        message: Dict[str, object] = {"op": "retract", "facts": facts}
        if kb is not None:
            message["kb"] = kb
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return await self._checked(message)

    async def stats(self) -> Dict[str, object]:
        return (await self._checked({"op": "stats"}))["stats"]

    async def ping(self) -> bool:
        return bool((await self._checked({"op": "ping"})).get("pong"))


class LocalClient(_ClientOps):
    """In-process client: protocol dicts straight into ``handle_request``.

    The test and perf-capture client — same code path as TCP minus the
    socket framing.
    """

    def __init__(self, server: ReasoningServer) -> None:
        self._server = server
        self._next_id = 0

    async def request(self, message: Dict[str, object]) -> Dict[str, object]:
        if "id" not in message:
            self._next_id += 1
            message = {**message, "id": self._next_id}
        return await self._server.handle_request(message)


class Client(_ClientOps):
    """NDJSON-over-TCP client with pipelining (responses matched by id).

    Fails fast on a dead connection: every in-flight request gets
    :class:`ClientDisconnectedError` the moment the read loop sees EOF or a
    socket error (no future is ever left dangling), and every *later*
    request on this client raises the same error immediately instead of
    writing into a dead socket.  Reconnect with :meth:`connect` and
    resubmit — the server either never saw or never answered the failed
    requests.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: Dict[object, asyncio.Future] = {}
        self._closed = False
        self._disconnected = False
        self._read_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "Client":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    @property
    def disconnected(self) -> bool:
        """Whether the connection is known dead (reconnect to continue)."""
        return self._disconnected

    async def request(self, message: Dict[str, object]) -> Dict[str, object]:
        if self._disconnected:
            raise ClientDisconnectedError(
                "connection is closed; reconnect and resubmit"
            )
        if "id" not in message:
            self._next_id += 1
            message = {**message, "id": f"c{self._next_id}"}
        future = asyncio.get_running_loop().create_future()
        self._pending[message["id"]] = future
        try:
            self._writer.write(encode_message(message))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            # the write itself hit a dead socket: fail this request (and
            # everything else in flight) now rather than waiting on a
            # response that can never arrive
            self._pending.pop(message["id"], None)
            self._mark_disconnected(exc)
            raise ClientDisconnectedError(
                f"connection died while sending the request: {exc}"
            ) from exc
        return await future

    async def _read_loop(self) -> None:
        exc: Optional[Exception] = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = decode_message(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, OSError, ProtocolError) as err:
            exc = err
        finally:
            self._mark_disconnected(exc)

    def _mark_disconnected(self, cause: Optional[Exception] = None) -> None:
        self._disconnected = True
        detail = f": {cause}" if cause is not None else ""
        message = (
            "connection closed by client"
            if self._closed
            else f"connection died with the request in flight{detail}; "
            "reconnect and resubmit"
        )
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(ClientDisconnectedError(message))

    async def close(self) -> None:
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._mark_disconnected()
