"""The one wire format of the serving layer: newline-delimited JSON.

Every message — a request to the long-lived server, its response, and each
result line of ``serve-batch --json`` — is a single JSON object on a single
line (NDJSON), so clients can stream with nothing but a line reader and a
JSON parser.  This module owns encoding and decoding for both directions;
the batch CLI and the server deliberately share it so the two serving paths
speak one format.

Requests
--------

Every request is an object with an ``op`` and an optional ``id`` (echoed
verbatim in the response, so clients may pipeline)::

    {"id": 1, "op": "query",   "kb": "cim", "query": "Equipment(?x)"}
    {"id": 2, "op": "add",     "kb": "cim", "facts": "ACEquipment(sw9)."}
    {"id": 3, "op": "retract", "kb": "cim", "facts": "ACEquipment(sw1)."}
    {"id": 4, "op": "stats"}
    {"id": 5, "op": "ping"}

``kb`` may be omitted when the server hosts exactly one knowledge base.
A query request may carry a ``strategy`` field — one of ``"auto"``
(default), ``"materialized"``, ``"demand"`` — selecting how the worker
evaluates it (see :class:`repro.datalog.query.QueryOptions`); answers are
identical under every strategy, and the server counts requests per
strategy in its ``stats`` payload.

Query, ``add``, and ``retract`` requests may carry ``deadline_ms`` — a
positive number of milliseconds this request is willing to wait.  The
server enforces it (falling back to its configured default): a request
whose answer is not delivered in time gets a structured ``timeout`` error
instead of hanging.  A timed-out *mutation* is indeterminate — if it was
still queued it was never applied, but a timeout that fired while the op
was mid-application leaves it applied; clients must re-check (query the
generation) rather than blindly resubmit.

Responses
---------

``{"id": ..., "ok": true, ...}`` on success, with op-specific fields
(``answers`` as a sorted list of term-string rows for queries, mutation
counters for add/retract, the stats block for ``stats``), or
``{"id": ..., "ok": false, "error": "..."}`` on failure.  Failures the
client is expected to *react* to also carry ``error_kind``: ``"timeout"``
(the request's deadline expired — safe to retry reads, re-check
mutations) and ``"overloaded"`` (the admission queue shed the request —
back off and retry).  Answers are encoded by :func:`encode_answers`,
which both the server and the correctness checks (CI smoke, tests) use,
so "the same answers" is a well-defined string comparison.
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

#: protocol identifier reported by the server's hello/stats payloads
PROTOCOL_VERSION = "repro-serve/v1"

#: request operations the server understands
REQUEST_OPS = ("query", "add", "retract", "stats", "ping")

#: strategies a query request may ask for (mirrors QUERY_STRATEGIES in
#: repro.datalog.query; duplicated as plain strings so the protocol module
#: stays import-light)
QUERY_STRATEGIES = ("auto", "materialized", "demand")


class ProtocolError(ValueError):
    """Raised when a message is not a valid protocol line."""


# ----------------------------------------------------------------------
# message framing
# ----------------------------------------------------------------------
def encode_message(message: Mapping[str, object]) -> bytes:
    """Serialize one message as a single NDJSON line (bytes, newline included)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: "str | bytes") -> Dict[str, object]:
    """Parse one NDJSON line into a message dict.

    Raises :class:`ProtocolError` on malformed JSON or a non-object payload.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"a protocol message must be a JSON object, got {type(message).__name__}"
        )
    return message


def validate_request(message: Mapping[str, object]) -> str:
    """Check a decoded request's shape; return its ``op``.

    Raises :class:`ProtocolError` naming the problem — the server turns
    that into an ``ok: false`` response rather than dropping the
    connection.
    """
    op = message.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(REQUEST_OPS)}"
        )
    if op == "query":
        if not isinstance(message.get("query"), str):
            raise ProtocolError("a query request needs a string 'query' field")
        strategy = message.get("strategy", "auto")
        if strategy not in QUERY_STRATEGIES:
            raise ProtocolError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{', '.join(QUERY_STRATEGIES)}"
            )
    if op in ("add", "retract") and not isinstance(message.get("facts"), str):
        raise ProtocolError(f"an {op} request needs a string 'facts' field")
    if op in ("query", "add", "retract"):
        deadline = message.get("deadline_ms")
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or deadline <= 0
        ):
            raise ProtocolError(
                f"deadline_ms must be a positive number of milliseconds, "
                f"got {deadline!r}"
            )
    return op


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
def ok_response(
    request_id: object = None, **fields: object
) -> Dict[str, object]:
    """A success response echoing the request id."""
    response: Dict[str, object] = {"id": request_id, "ok": True}
    response.update(fields)
    return response


def error_response(
    request_id: object, message: str, kind: Optional[str] = None
) -> Dict[str, object]:
    """A failure response echoing the request id.

    ``kind`` tags machine-actionable failures (``"timeout"``,
    ``"overloaded"``) as ``error_kind`` so clients can branch on them
    without parsing the message text.
    """
    response: Dict[str, object] = {"id": request_id, "ok": False, "error": message}
    if kind is not None:
        response["error_kind"] = kind
    return response


# ----------------------------------------------------------------------
# payload encoding shared by the server and serve-batch --json
# ----------------------------------------------------------------------
def encode_answers(
    answers: "FrozenSet[Tuple[object, ...]] | Iterable[Tuple[object, ...]]",
) -> List[List[str]]:
    """Answer tuples as a deterministically sorted list of term-string rows.

    The sort makes the encoding canonical: two answer sets are equal iff
    their encodings are equal, which is what the stale-cache checks (CI
    smoke, hypothesis properties) compare.
    """
    return sorted([str(term) for term in row] for row in answers)


def query_result(query_text: str, answers, cached: Optional[bool] = None) -> Dict[str, object]:
    """The op-agnostic query result payload (server response body and
    ``serve-batch --json`` line share this shape)."""
    encoded = encode_answers(answers)
    payload: Dict[str, object] = {
        "query": query_text,
        "answers": encoded,
        "count": len(encoded),
    }
    if cached is not None:
        payload["cached"] = cached
    return payload


def mutation_result(kind: str, result) -> Dict[str, object]:
    """Counters of one applied mutation (a Delta/RetractionResult)."""
    if kind == "add":
        return {
            "op": "add",
            "added_facts": result.added_facts,
            "derived": result.derived_count,
            "rounds": result.rounds,
        }
    return {
        "op": "retract",
        "retracted_facts": result.retracted_facts,
        "ignored_facts": result.ignored_facts,
        "overdeleted": result.overdeleted,
        "rederived": result.rederived,
        "net_removed": result.net_removed,
        "rounds": result.rounds,
    }
