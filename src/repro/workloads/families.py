"""Parametric GTGD families used in the paper's propositions and examples.

* :func:`exbdr_blowup_family` — Proposition 5.14: ExbDR derives ``O(2^n)``
  times more TGDs than SkDR derives rules.
* :func:`skdr_blowup_family` — Proposition 5.15: SkDR derives ``O(2^n)`` times
  more rules than ExbDR derives TGDs.
* :func:`hypdr_advantage_family` — Proposition 5.20: SkDR derives ``O(2^n)``
  more rules than HypDR.
* :func:`running_example` — the GTGDs (8)–(13) of Example 4.3 plus the base
  instance ``{A(a, b)}``.
* :func:`cim_example` — GTGDs (1)–(4) from the CIM data-integration example of
  the introduction plus facts (5)–(6).
* :func:`fulldr_example_e3` — the three GTGDs of Example E.3 illustrating the
  substitution blow-up of FullDR's COMPOSE variant.
"""

from __future__ import annotations

from typing import List, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance
from ..logic.terms import Constant, Variable
from ..logic.tgd import TGD


def _vars(*names: str) -> Tuple[Variable, ...]:
    return tuple(Variable(name) for name in names)


def exbdr_blowup_family(n: int) -> Tuple[TGD, ...]:
    """Proposition 5.14: ``A(x) → ∃ȳ B1(x,y1) ∧ ... ∧ Bn(x,yn)`` plus n side rules."""
    if n < 1:
        raise ValueError("family parameter must be at least 1")
    (x,) = _vars("x")
    a = Predicate("A", 1)
    tgds: List[TGD] = []
    head = []
    for index in range(1, n + 1):
        y_i = Variable(f"y{index}")
        head.append(Atom(Predicate(f"B{index}", 2), (x, y_i)))
    tgds.append(TGD((Atom(a, (x,)),), tuple(head)))
    x1, x2 = _vars("x1", "x2")
    for index in range(1, n + 1):
        b_i = Predicate(f"B{index}", 2)
        c_i = Predicate(f"C{index}", 1)
        d_i = Predicate(f"D{index}", 2)
        tgds.append(
            TGD(
                (Atom(b_i, (x1, x2)), Atom(c_i, (x1,))),
                (Atom(d_i, (x1, x2)),),
            )
        )
    return tuple(tgds)


def skdr_blowup_family(n: int) -> Tuple[TGD, ...]:
    """Proposition 5.15: ``A(x) → ∃y B1(x,y) ∧ ... ∧ Bn(x,y)`` plus one collecting rule."""
    if n < 1:
        raise ValueError("family parameter must be at least 1")
    (x,) = _vars("x")
    y = Variable("y")
    a = Predicate("A", 1)
    head = tuple(Atom(Predicate(f"B{index}", 2), (x, y)) for index in range(1, n + 1))
    x1, x2 = _vars("x1", "x2")
    body = tuple(
        Atom(Predicate(f"B{index}", 2), (x1, x2)) for index in range(1, n + 1)
    )
    return (
        TGD((Atom(a, (x,)),), head),
        TGD(body, (Atom(Predicate("C", 1), (x1,)),)),
    )


def hypdr_advantage_family(n: int) -> Tuple[TGD, ...]:
    """Proposition 5.20: one existential rule, n conditional rules, one collector."""
    if n < 1:
        raise ValueError("family parameter must be at least 1")
    (x,) = _vars("x")
    y = Variable("y")
    a = Predicate("A", 1)
    b = Predicate("B", 2)
    tgds: List[TGD] = [TGD((Atom(a, (x,)),), (Atom(b, (x, y)),))]
    x1, x2 = _vars("x1", "x2")
    for index in range(1, n + 1):
        c_i = Predicate(f"C{index}", 1)
        d_i = Predicate(f"D{index}", 2)
        tgds.append(
            TGD(
                (Atom(b, (x1, x2)), Atom(c_i, (x1,))),
                (Atom(d_i, (x1, x2)),),
            )
        )
    collector_body = tuple(
        Atom(Predicate(f"D{index}", 2), (x1, x2)) for index in range(1, n + 1)
    )
    tgds.append(TGD(collector_body, (Atom(Predicate("E", 1), (x1,)),)))
    return tuple(tgds)


def running_example() -> Tuple[Tuple[TGD, ...], Instance]:
    """Example 4.3: GTGDs (8)–(13) and the base instance ``{A(a, b)}``."""
    x1, x2 = _vars("x1", "x2")
    y, y1, y2 = _vars("y", "y1", "y2")
    a = Predicate("A", 2)
    b = Predicate("B", 2)
    c = Predicate("C", 2)
    d = Predicate("D", 2)
    e = Predicate("E", 1)
    f = Predicate("F", 2)
    g = Predicate("G", 1)
    h = Predicate("H", 1)
    tgds = (
        TGD((Atom(a, (x1, x2)),), (Atom(b, (x1, y)), Atom(c, (x1, y)))),  # (8)
        TGD((Atom(c, (x1, x2)),), (Atom(d, (x1, x2)),)),  # (9)
        TGD((Atom(b, (x1, x2)), Atom(d, (x1, x2))), (Atom(e, (x1,)),)),  # (10)
        TGD(
            (Atom(a, (x1, x2)), Atom(e, (x1,))),
            (Atom(f, (x1, y1)), Atom(f, (y1, y2))),
        ),  # (11)
        TGD((Atom(e, (x1,)), Atom(f, (x1, x2))), (Atom(g, (x1,)),)),  # (12)
        TGD((Atom(b, (x1, x2)), Atom(g, (x1,))), (Atom(h, (x1,)),)),  # (13)
    )
    instance = Instance([Atom(a, (Constant("a"), Constant("b")))])
    return tgds, instance


def running_example_shortcuts() -> Tuple[TGD, ...]:
    """The "shortcut" Datalog rules (14)–(16) of Example 4.6."""
    x1, x2 = _vars("x1", "x2")
    a = Predicate("A", 2)
    e = Predicate("E", 1)
    g = Predicate("G", 1)
    h = Predicate("H", 1)
    return (
        TGD((Atom(a, (x1, x2)),), (Atom(e, (x1,)),)),  # (14)
        TGD((Atom(a, (x1, x2)), Atom(e, (x1,))), (Atom(g, (x1,)),)),  # (15)
        TGD((Atom(a, (x1, x2)), Atom(g, (x1,))), (Atom(h, (x1,)),)),  # (16)
    )


def cim_example() -> Tuple[Tuple[TGD, ...], Instance]:
    """Example 1.1: the CIM power-distribution GTGDs (1)–(4) and facts (5)–(6)."""
    x, z = _vars("x", "z")
    y = Variable("y")
    ac_equipment = Predicate("ACEquipment", 1)
    ac_terminal = Predicate("ACTerminal", 1)
    terminal = Predicate("Terminal", 1)
    equipment = Predicate("Equipment", 1)
    has_terminal = Predicate("hasTerminal", 2)
    part_of = Predicate("partOf", 2)
    tgds = (
        TGD(
            (Atom(ac_equipment, (x,)),),
            (Atom(has_terminal, (x, y)), Atom(ac_terminal, (y,))),
        ),  # (1)
        TGD((Atom(ac_terminal, (x,)),), (Atom(terminal, (x,)),)),  # (2)
        TGD(
            (Atom(has_terminal, (x, z)), Atom(terminal, (z,))),
            (Atom(equipment, (x,)),),
        ),  # (3)
        TGD(
            (Atom(ac_terminal, (x,)),),
            (Atom(part_of, (x, y)), Atom(ac_equipment, (y,))),
        ),  # (4)
    )
    sw1 = Constant("sw1")
    sw2 = Constant("sw2")
    trm1 = Constant("trm1")
    instance = Instance(
        [
            Atom(ac_equipment, (sw1,)),
            Atom(ac_equipment, (sw2,)),
            Atom(has_terminal, (sw1, trm1)),
            Atom(ac_terminal, (trm1,)),
        ]
    )
    return tgds, instance


def cim_shortcut() -> TGD:
    """Rule (7): the "shortcut" ``ACEquipment(x) → Equipment(x)`` of Example 1.2."""
    (x,) = _vars("x")
    return TGD(
        (Atom(Predicate("ACEquipment", 1), (x,)),),
        (Atom(Predicate("Equipment", 1), (x,)),),
    )


def fulldr_example_e3() -> Tuple[TGD, ...]:
    """Example E.3: the GTGDs (46)–(48) showing FullDR's substitution blow-up."""
    x1, x2, x3, x4 = _vars("x1", "x2", "x3", "x4")
    z1, z2, z3 = _vars("z1", "z2", "z3")
    y1, y2 = _vars("y1", "y2")
    r = Predicate("R", 2)
    s = Predicate("S", 4)
    t = Predicate("T", 3)
    u = Predicate("U", 1)
    p = Predicate("P", 1)
    return (
        TGD(
            (Atom(r, (x1, x2)),),
            (Atom(s, (x1, x2, y1, y2)), Atom(t, (x1, x2, y2))),
        ),  # (46)
        TGD((Atom(s, (x1, x2, x3, x4)),), (Atom(u, (x4,)),)),  # (47)
        TGD((Atom(t, (z1, z2, z3)), Atom(u, (z3,))), (Atom(p, (z1,)),)),  # (48)
    )
