"""Random guarded TGD generation for property-based and differential testing.

The generator produces small, well-formed GTGD sets whose certain answers can
still be computed by the exact chase oracle, so the rewriting algorithms can
be validated against ground truth on thousands of random inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance
from ..logic.terms import Constant, Variable
from ..logic.tgd import TGD


@dataclass(frozen=True)
class RandomGTGDConfig:
    """Parameters of the random GTGD generator."""

    predicate_count: int = 6
    max_arity: int = 2
    tgd_count: int = 6
    max_body_atoms: int = 2
    max_head_atoms: int = 2
    existential_probability: float = 0.4
    constant_count: int = 3
    seed: int = 0


def _random_predicates(rng: random.Random, config: RandomGTGDConfig) -> List[Predicate]:
    predicates = []
    for index in range(config.predicate_count):
        arity = rng.randint(1, config.max_arity)
        predicates.append(Predicate(f"P{index}", arity))
    return predicates


def generate_random_gtgds(
    config: Optional[RandomGTGDConfig] = None, seed: Optional[int] = None
) -> Tuple[TGD, ...]:
    """Generate a random set of guarded TGDs.

    Each TGD is built around a guard: a body atom over all universally
    quantified variables.  Additional body atoms use subsets of the guard
    variables; head atoms use guard variables and, with some probability,
    fresh existential variables.
    """
    config = config or RandomGTGDConfig()
    if seed is not None:
        config = RandomGTGDConfig(**{**config.__dict__, "seed": seed})
    rng = random.Random(config.seed)
    predicates = _random_predicates(rng, config)
    constants = [Constant(f"c{index}") for index in range(config.constant_count)]
    tgds: List[TGD] = []
    for _ in range(config.tgd_count):
        guard_predicate = rng.choice(predicates)
        universal = tuple(
            Variable(f"x{index}") for index in range(guard_predicate.arity)
        )
        guard = Atom(guard_predicate, universal)
        body: List[Atom] = [guard]
        for _ in range(rng.randint(0, config.max_body_atoms - 1)):
            predicate = rng.choice(predicates)
            args = tuple(rng.choice(universal) for _ in range(predicate.arity))
            body.append(Atom(predicate, args))
        use_existential = rng.random() < config.existential_probability
        existential = (
            tuple(Variable(f"y{index}") for index in range(rng.randint(1, 2)))
            if use_existential
            else ()
        )
        head: List[Atom] = []
        head_terms: Tuple = universal + existential
        for _ in range(rng.randint(1, config.max_head_atoms)):
            predicate = rng.choice(predicates)
            pool: Sequence = head_terms if existential else universal
            args = []
            for _ in range(predicate.arity):
                if rng.random() < 0.2 and constants:
                    args.append(rng.choice(constants))
                else:
                    args.append(rng.choice(pool))
            head.append(Atom(predicate, tuple(args)))
        if existential and not any(
            any(var in existential for var in atom.variables()) for atom in head
        ):
            # make sure at least one head atom actually uses an existential
            predicate = rng.choice([p for p in predicates if p.arity >= 1])
            args = [existential[0]]
            args.extend(
                rng.choice(universal + existential)
                for _ in range(predicate.arity - 1)
            )
            head.append(Atom(predicate, tuple(args)))
        tgds.append(TGD(tuple(body), tuple(head)))
    return tuple(tgds)


def generate_random_instance(
    tgds: Sequence[TGD],
    fact_count: int = 6,
    constant_count: int = 4,
    seed: int = 0,
) -> Instance:
    """Generate a random base instance over the predicates of the given TGDs."""
    rng = random.Random(seed)
    predicates = sorted(
        {atom.predicate for tgd in tgds for atom in tgd.body + tgd.head},
        key=lambda p: (p.name, p.arity),
    )
    constants = [Constant(f"a{index}") for index in range(constant_count)]
    instance = Instance()
    for _ in range(fact_count):
        predicate = rng.choice(predicates)
        args = tuple(rng.choice(constants) for _ in range(predicate.arity))
        instance.add(Atom(predicate, args))
    return instance
