"""Arity blow-up transformation (Section 7.1, used for the Figure 5 experiment).

Given a set of GTGDs and a blow-up factor ``b``, the transformation

1. replaces every variable argument of every atom with ``b`` fresh variables
   uniquely associated with the original variable (so for ``b = 2`` the atom
   ``A(x, y)`` becomes ``A(x_1, x_2, y_1, y_2)``) — constants are likewise
   replicated ``b`` times;
2. randomly introduces fresh body and head atoms over the newly introduced
   variables, taking care not to break guardedness (body atoms only use
   variables already present in the body, head atoms only variables already
   present in the head) so the ExbDR inference rule remains applicable.

The result is a set of GTGDs over relations of arity ``b`` times the original
arity — the paper uses ``b = 5`` to obtain relations of arity ten from the
binary ontology relations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.terms import Constant, Term, Variable
from ..logic.tgd import TGD


class ArityBlowup:
    """Applies the arity blow-up with a fixed factor and seed."""

    def __init__(
        self,
        factor: int = 5,
        extra_atom_probability: float = 0.3,
        seed: int = 0,
    ) -> None:
        if factor < 1:
            raise ValueError("blow-up factor must be at least 1")
        self.factor = factor
        self.extra_atom_probability = extra_atom_probability
        self._rng = random.Random(seed)
        self._predicates: Dict[Predicate, Predicate] = {}
        self._padding_predicates: List[Predicate] = []

    # ------------------------------------------------------------------
    # predicate and term replication
    # ------------------------------------------------------------------
    def _blown_predicate(self, predicate: Predicate) -> Predicate:
        blown = self._predicates.get(predicate)
        if blown is None:
            blown = Predicate(predicate.name, predicate.arity * self.factor)
            self._predicates[predicate] = blown
        return blown

    def _blow_term(self, term: Term) -> Tuple[Term, ...]:
        if isinstance(term, Variable):
            return tuple(
                Variable(f"{term.name}_{index}") for index in range(1, self.factor + 1)
            )
        if isinstance(term, Constant):
            return tuple(
                Constant(f"{term.name}_{index}") for index in range(1, self.factor + 1)
            )
        raise ValueError(f"cannot blow up term {term!r}")

    def _blow_atom(self, atom: Atom) -> Atom:
        args: List[Term] = []
        for arg in atom.args:
            args.extend(self._blow_term(arg))
        return Atom(self._blown_predicate(atom.predicate), tuple(args))

    # ------------------------------------------------------------------
    # extra atoms
    # ------------------------------------------------------------------
    def _padding_predicate(self, arity: int) -> Predicate:
        for predicate in self._padding_predicates:
            if predicate.arity == arity:
                return predicate
        predicate = Predicate(f"Pad{len(self._padding_predicates)}", arity)
        self._padding_predicates.append(predicate)
        return predicate

    def _maybe_extra_atom(self, variables: Sequence[Variable]) -> Tuple[Atom, ...]:
        if not variables or self._rng.random() >= self.extra_atom_probability:
            return ()
        width = self._rng.randint(1, min(len(variables), self.factor))
        chosen = tuple(self._rng.sample(list(variables), width))
        predicate = self._padding_predicate(width)
        return (Atom(predicate, chosen),)

    # ------------------------------------------------------------------
    # the transformation
    # ------------------------------------------------------------------
    def blow_up_tgd(self, tgd: TGD) -> TGD:
        body = tuple(self._blow_atom(atom) for atom in tgd.body)
        head = tuple(self._blow_atom(atom) for atom in tgd.head)
        body_variables: List[Variable] = []
        for atom in body:
            for var in atom.variables():
                if var not in body_variables:
                    body_variables.append(var)
        head_only_variables: List[Variable] = []
        for atom in head:
            for var in atom.variables():
                if var not in body_variables and var not in head_only_variables:
                    head_only_variables.append(var)
        body += self._maybe_extra_atom(body_variables)
        # extra head atoms over existential variables keep the TGD in a shape
        # the ExbDR inference rule can process (every new atom shares its
        # variables with existing head atoms)
        head += self._maybe_extra_atom(head_only_variables)
        return TGD(body, head)

    def blow_up(self, tgds: Sequence[TGD]) -> Tuple[TGD, ...]:
        return tuple(self.blow_up_tgd(tgd) for tgd in tgds)


def blow_up_arity(
    tgds: Sequence[TGD],
    factor: int = 5,
    extra_atom_probability: float = 0.3,
    seed: int = 0,
) -> Tuple[TGD, ...]:
    """Convenience wrapper around :class:`ArityBlowup`."""
    return ArityBlowup(factor, extra_atom_probability, seed).blow_up(tgds)
