"""Workload generators: benchmark suites, arity blow-up, instances, paper families."""

from .blowup import ArityBlowup, blow_up_arity
from .families import (
    cim_example,
    cim_shortcut,
    exbdr_blowup_family,
    fulldr_example_e3,
    hypdr_advantage_family,
    running_example,
    running_example_shortcuts,
    skdr_blowup_family,
)
from .instances import (
    generate_instance,
    generate_power_grid_instance,
    predicates_of_tgds,
    scale_report,
)
from .ontology_suite import (
    BenchmarkInput,
    OntologyGenerator,
    OntologyProfile,
    generate_input,
    generate_suite,
    suite_statistics,
)
from .random_gtgds import (
    RandomGTGDConfig,
    generate_random_gtgds,
    generate_random_instance,
)

__all__ = [
    "ArityBlowup",
    "BenchmarkInput",
    "OntologyGenerator",
    "OntologyProfile",
    "RandomGTGDConfig",
    "blow_up_arity",
    "cim_example",
    "cim_shortcut",
    "exbdr_blowup_family",
    "fulldr_example_e3",
    "generate_input",
    "generate_instance",
    "generate_power_grid_instance",
    "generate_random_gtgds",
    "generate_random_instance",
    "generate_suite",
    "hypdr_advantage_family",
    "predicates_of_tgds",
    "running_example",
    "running_example_shortcuts",
    "scale_report",
    "skdr_blowup_family",
    "suite_statistics",
]
