"""Synthetic ontology-derived GTGD benchmark suite (substitute for Section 7.1).

The paper derives its 428 input GTGD sets from the Oxford Ontology Library.
That library is not available offline, so this module generates a suite of
synthetic ontologies with the same structural ingredients:

* class hierarchies (``A ⊑ B``), including long chains and diamonds;
* existential restrictions (``A ⊑ ∃R.B``) that create the recursive,
  potentially non-terminating chase behaviour motivating the paper;
* conjunctions on the left (``A ⊓ B ⊑ C``) and on the right;
* qualified "role propagation" axioms (``∃R.A ⊑ B``) giving guarded TGDs with
  two body atoms;
* property domains, ranges, and hierarchies;
* occasional nested existentials (``A ⊑ ∃R.∃S.B``) which keep the structural
  transformation ablation meaningful.

Each generated input records both the DL ontology (consumed by the KAON2
baseline) and its GTGD translation (consumed by ExbDR/SkDR/HypDR), plus the
Table-1 statistics (numbers of full and non-full TGDs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dl.axioms import (
    Axiom,
    Conjunction,
    Existential,
    NamedClass,
    Ontology,
    PropertyDomain,
    PropertyRange,
    SubClassOf,
    SubPropertyOf,
)
from ..dl.translate import translate_ontology
from ..logic.tgd import TGD, head_normalize, split_full_non_full


@dataclass(frozen=True)
class OntologyProfile:
    """Shape parameters for one synthetic ontology."""

    class_count: int
    property_count: int
    axiom_count: int
    existential_fraction: float = 0.35
    conjunction_fraction: float = 0.15
    role_axiom_fraction: float = 0.2
    nested_existential_fraction: float = 0.05
    seed: int = 0


@dataclass
class BenchmarkInput:
    """One input of the benchmark suite: an ontology plus its GTGD translation."""

    identifier: str
    ontology: Ontology
    tgds: Tuple[TGD, ...]
    profile: OntologyProfile

    @property
    def full_tgds(self) -> Tuple[TGD, ...]:
        return split_full_non_full(head_normalize(self.tgds))[0]

    @property
    def non_full_tgds(self) -> Tuple[TGD, ...]:
        return split_full_non_full(head_normalize(self.tgds))[1]

    @property
    def size(self) -> int:
        return len(self.tgds)


class OntologyGenerator:
    """Generates one synthetic ontology from a profile."""

    def __init__(self, profile: OntologyProfile) -> None:
        self.profile = profile
        self._rng = random.Random(profile.seed)
        self._classes = [NamedClass(f"C{index}") for index in range(profile.class_count)]
        self._properties = [f"r{index}" for index in range(profile.property_count)]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _random_class(self) -> NamedClass:
        return self._rng.choice(self._classes)

    def _random_property(self) -> str:
        return self._rng.choice(self._properties)

    def _random_superclass(self) -> object:
        roll = self._rng.random()
        profile = self.profile
        if roll < profile.nested_existential_fraction:
            return Existential(
                self._random_property(),
                Existential(self._random_property(), self._random_class()),
            )
        if roll < profile.nested_existential_fraction + profile.existential_fraction:
            return Existential(self._random_property(), self._random_class())
        if roll < (
            profile.nested_existential_fraction
            + profile.existential_fraction
            + profile.conjunction_fraction
        ):
            first, second = self._rng.sample(self._classes, 2)
            return Conjunction((first, second))
        return self._random_class()

    def _random_subclass(self) -> object:
        roll = self._rng.random()
        if roll < 0.2:
            # ∃R.A on the left: guarded translation with two body atoms
            return Existential(self._random_property(), self._random_class())
        if roll < 0.35:
            first, second = self._rng.sample(self._classes, 2)
            return Conjunction((first, second))
        return self._random_class()

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate(self) -> Ontology:
        axioms: List[Axiom] = []
        profile = self.profile
        # a backbone class hierarchy guarantees long full-TGD chains
        hierarchy_length = max(2, profile.class_count // 4)
        for index in range(hierarchy_length - 1):
            axioms.append(SubClassOf(self._classes[index], self._classes[index + 1]))
        while len(axioms) < profile.axiom_count:
            roll = self._rng.random()
            if roll < profile.role_axiom_fraction:
                kind = self._rng.random()
                if kind < 0.4:
                    axioms.append(
                        PropertyDomain(self._random_property(), self._random_class())
                    )
                elif kind < 0.8:
                    axioms.append(
                        PropertyRange(self._random_property(), self._random_class())
                    )
                else:
                    sub, sup = self._rng.sample(self._properties, 2) if len(
                        self._properties
                    ) >= 2 else (self._properties[0], self._properties[0])
                    axioms.append(SubPropertyOf(sub, sup))
            else:
                axioms.append(
                    SubClassOf(self._random_subclass(), self._random_superclass())
                )
        return Ontology(tuple(axioms), name=f"synthetic-{profile.seed:05d}")


def generate_input(profile: OntologyProfile, identifier: Optional[str] = None) -> BenchmarkInput:
    """Generate one benchmark input from a profile."""
    ontology = OntologyGenerator(profile).generate()
    tgds = translate_ontology(ontology)
    return BenchmarkInput(
        identifier=identifier or ontology.name,
        ontology=ontology,
        tgds=tgds,
        profile=profile,
    )


def generate_suite(
    count: int = 60,
    seed: int = 0,
    min_axioms: int = 15,
    max_axioms: int = 400,
) -> Tuple[BenchmarkInput, ...]:
    """Generate a whole suite of inputs spanning small to large ontologies.

    Sizes follow a geometric progression between ``min_axioms`` and
    ``max_axioms`` so that, like the Oxford Ontology Library, the suite mixes
    many small inputs with a tail of much larger ones.
    """
    rng = random.Random(seed)
    inputs: List[BenchmarkInput] = []
    for index in range(count):
        fraction = index / max(count - 1, 1)
        axiom_count = int(min_axioms * (max_axioms / min_axioms) ** fraction)
        class_count = max(6, axiom_count // 2)
        property_count = max(3, axiom_count // 8)
        profile = OntologyProfile(
            class_count=class_count,
            property_count=property_count,
            axiom_count=axiom_count,
            existential_fraction=rng.uniform(0.2, 0.45),
            conjunction_fraction=rng.uniform(0.1, 0.25),
            role_axiom_fraction=rng.uniform(0.1, 0.3),
            nested_existential_fraction=rng.uniform(0.0, 0.1),
            seed=seed * 10_000 + index,
        )
        inputs.append(generate_input(profile, identifier=f"{index:05d}"))
    return tuple(inputs)


def suite_statistics(inputs: Sequence[BenchmarkInput]) -> Dict[str, Dict[str, float]]:
    """Table 1 statistics: min/max/avg/median of full and non-full TGD counts."""

    def stats(values: List[int]) -> Dict[str, float]:
        ordered = sorted(values)
        length = len(ordered)
        if length == 0:
            return {"min": 0, "max": 0, "avg": 0.0, "med": 0.0}
        median = (
            ordered[length // 2]
            if length % 2 == 1
            else (ordered[length // 2 - 1] + ordered[length // 2]) / 2
        )
        return {
            "min": ordered[0],
            "max": ordered[-1],
            "avg": sum(ordered) / length,
            "med": median,
        }

    full_counts = [len(item.full_tgds) for item in inputs]
    non_full_counts = [len(item.non_full_tgds) for item in inputs]
    return {"full": stats(full_counts), "non_full": stats(non_full_counts)}
