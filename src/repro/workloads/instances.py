"""Base-instance generation for the end-to-end experiment (Section 7.3).

The paper generates large base instances with WatDiv.  WatDiv is an RDF data
generator keyed to a specific schema, so this module provides a schema-aware
substitute: given the predicates of a GTGD set, it produces a random base
instance whose

* total size is configurable,
* per-predicate fact counts follow a Zipf-like skew (a few "hub" predicates
  carry most of the data, as in WatDiv's scalable entity classes), and
* binary predicates form a sparse graph over the constant pool so that joins
  in the rewriting produce realistically sized fixpoints.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

from ..logic.atoms import Atom, Predicate
from ..logic.instance import Instance
from ..logic.terms import Constant
from ..logic.tgd import TGD


def predicates_of_tgds(tgds: Iterable[TGD]) -> Tuple[Predicate, ...]:
    """Distinct predicates of a set of TGDs, in a deterministic order."""
    seen: Dict[Predicate, None] = {}
    for tgd in tgds:
        for atom in tgd.body + tgd.head:
            seen.setdefault(atom.predicate, None)
    return tuple(sorted(seen, key=lambda pred: (pred.name, pred.arity)))


def _zipf_weights(count: int, skew: float) -> List[float]:
    weights = [1.0 / (rank ** skew) for rank in range(1, count + 1)]
    total = sum(weights)
    return [weight / total for weight in weights]


def generate_instance(
    tgds: Sequence[TGD],
    fact_count: int = 1000,
    constant_count: int = 200,
    skew: float = 1.1,
    seed: int = 0,
) -> Instance:
    """Generate a random base instance over the predicates of the TGDs."""
    rng = random.Random(seed)
    predicates = list(predicates_of_tgds(tgds))
    if not predicates:
        return Instance()
    rng.shuffle(predicates)
    weights = _zipf_weights(len(predicates), skew)
    constants = [Constant(f"e{index}") for index in range(constant_count)]
    instance = Instance()
    attempts = 0
    while len(instance) < fact_count and attempts < fact_count * 20:
        attempts += 1
        predicate = rng.choices(predicates, weights=weights, k=1)[0]
        args = tuple(rng.choice(constants) for _ in range(predicate.arity))
        instance.add(Atom(predicate, args))
    return instance


def generate_power_grid_instance(
    equipment_count: int = 50,
    terminal_fraction: float = 0.6,
    seed: int = 0,
) -> Instance:
    """A CIM-flavoured instance: AC equipment, some with terminals, some without.

    Mirrors the incompleteness scenario of Example 1.1: every piece of
    equipment is asserted, but only a fraction has its terminals recorded, so
    the GTGDs must complete the data.
    """
    rng = random.Random(seed)
    ac_equipment = Predicate("ACEquipment", 1)
    ac_terminal = Predicate("ACTerminal", 1)
    has_terminal = Predicate("hasTerminal", 2)
    instance = Instance()
    for index in range(equipment_count):
        switch = Constant(f"sw{index}")
        instance.add(Atom(ac_equipment, (switch,)))
        if rng.random() < terminal_fraction:
            terminal = Constant(f"trm{index}")
            instance.add(Atom(has_terminal, (switch, terminal)))
            instance.add(Atom(ac_terminal, (terminal,)))
    return instance


def scale_report(instance: Instance) -> Dict[str, int]:
    """Simple size report used by the end-to-end benchmark tables."""
    return {
        "facts": len(instance),
        "constants": len(instance.constants()),
        "predicates": len(instance.predicates()),
    }
