"""repro — a reproduction of "Rewriting the Infinite Chase" (VLDB 2022).

The package implements Datalog rewriting of guarded tuple-generating
dependencies (GTGDs) together with every substrate the paper relies on: a
first-order logic layer, unification, the tree-like and one-pass chase, a
semi-naive Datalog engine, clause indexing, a small description-logic front
end, and workload generators for the paper's evaluation.

Quickstart::

    from repro import KnowledgeBase, parse_program

    program = parse_program('''
        ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
        ACTerminal(?x) -> Terminal(?x).
        hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
        ACEquipment(sw1). ACEquipment(sw2).
    ''')
    kb = KnowledgeBase.compile(program.tgds, algorithm="hypdr")
    print(kb.session(program.instance).certain_base_facts())

Query answering goes through :meth:`KnowledgeBase.answer_many` (or a
session's ``answer``/``answer_many``), optionally tuned per call with
:class:`QueryOptions` — the default ``auto`` strategy answers bound point
queries goal-directedly via the magic-sets transformation::

    from repro import QueryOptions, parse_query
    kb.answer_many([parse_query("Equipment(sw1)")], program.instance)
"""

from .api import KnowledgeBase, answer_query, entailed_base_facts
from .datalog import (
    ConjunctiveQuery,
    DatalogProgram,
    DeltaUpdateResult,
    FactStore,
    MaterializationResult,
    QueryOptions,
    ReasoningSession,
    RetractionResult,
    evaluate_query,
    materialize,
    parse_query,
)
from .logic import (
    TGD,
    Atom,
    Constant,
    Instance,
    Predicate,
    Rule,
    Substitution,
    Variable,
    parse_atom,
    parse_fact,
    parse_facts,
    parse_program,
    parse_tgd,
    parse_tgds,
)
from .rewriting import (
    AlgorithmCapabilities,
    RewritingResult,
    RewritingSettings,
    available_algorithms,
    register_algorithm,
    rewrite,
    rewrite_program,
)

__version__ = "0.1.0"

__all__ = [
    "AlgorithmCapabilities",
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "DatalogProgram",
    "DeltaUpdateResult",
    "FactStore",
    "Instance",
    "KnowledgeBase",
    "MaterializationResult",
    "Predicate",
    "QueryOptions",
    "ReasoningSession",
    "RetractionResult",
    "RewritingResult",
    "RewritingSettings",
    "Rule",
    "Substitution",
    "TGD",
    "Variable",
    "answer_query",
    "available_algorithms",
    "entailed_base_facts",
    "evaluate_query",
    "materialize",
    "parse_atom",
    "parse_fact",
    "parse_facts",
    "parse_program",
    "parse_query",
    "parse_tgd",
    "parse_tgds",
    "register_algorithm",
    "rewrite",
    "rewrite_program",
    "__version__",
]
