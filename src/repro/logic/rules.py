"""Rules in the Skolemized setting (Section 3 and Definition 5.9).

A *rule* is an implication ``∀x [β → H]`` where ``β`` is a conjunction of
atoms with free variables ``x`` and ``H`` is a single atom whose free
variables are contained in ``x``.  Rules contain no existential quantifiers,
but atoms may contain Skolem functional terms.

A rule is *guarded* (Definition 5.9) if every function symbol in the rule is a
Skolem symbol, the body contains a Skolem-free atom mentioning all variables
of the rule, and each Skolem term has the form ``f(t)`` where ``t`` is
function-free and mentions all variables of the rule.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from .atoms import Atom, atom_constants, atom_variables
from .interning import counter, maybe_evict, register_cache_clearer
from .substitution import Substitution
from .terms import Constant, FunctionTerm, Variable


class Rule:
    """A rule ``body → head`` with a single head atom and no existentials.

    Rules are interned like TGDs: re-deriving an already-seen rule returns
    the identical object, sharing the per-clause caches (guards, premise
    renamings, canonical-form flag).
    """

    __slots__ = (
        "body",
        "head",
        "_hash",
        "_variables",
        "_guards",
        "_renamed",
        "is_canonical",
        "_body_set",
        "_skolem_free",
        "_body_skolem_free",
        "_canonical_form",
    )

    _interned: dict = {}
    _counter = counter("rule")

    def __new__(cls, body: Sequence[Atom], head: Atom) -> "Rule":
        key = (tuple(body), head)
        interned = cls._interned.get(key)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        self = super().__new__(cls)
        self._init_structure(key[0], head)
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        cls._interned[key] = self
        return self

    def __init__(self, body: Sequence[Atom], head: Atom) -> None:
        # construction happens entirely in __new__ (interned); nothing to do
        pass

    def __reduce__(self):
        return (Rule, (self.body, self.head))

    def _init_structure(self, body: Tuple[Atom, ...], head: Atom) -> None:
        self.body = body
        self.head = head
        self._hash = hash(("rule", body, head))
        variables = set(atom_variables(body))
        head_vars = head.variable_set()
        if not head_vars <= variables:
            raise ValueError(
                "rule head variables must be contained in the body variables: "
                f"{head} has free variables not in {body}"
            )
        self._variables = frozenset(variables)
        self._guards: Optional[Tuple[Atom, ...]] = None
        self._renamed: Optional[dict] = None
        #: set by :func:`repro.logic.normal_form.normalize_rule` on its output
        self.is_canonical = False
        self._body_set: Optional[FrozenSet[Atom]] = None
        self._body_skolem_free = all(atom.is_function_free for atom in body)
        self._skolem_free = self._body_skolem_free and head.is_function_free
        #: set by normalize_rule: this rule's canonical-variable form
        self._canonical_form: "Optional[Rule]" = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def variables(self) -> FrozenSet[Variable]:
        return self._variables

    def constants(self) -> Tuple[Constant, ...]:
        return atom_constants(self.body + (self.head,))

    @property
    def is_skolem_free(self) -> bool:
        """``True`` if no atom of the rule contains a function symbol."""
        return self._skolem_free

    @property
    def body_is_skolem_free(self) -> bool:
        return self._body_skolem_free

    @property
    def is_datalog_rule(self) -> bool:
        """Datalog rule = function-free rule = full TGD in head-normal form."""
        return self.is_skolem_free

    @property
    def is_syntactic_tautology(self) -> bool:
        """Definition 5.1 for rules: the head occurs in the body."""
        return self.head in self.body_atom_set

    @property
    def body_atom_set(self) -> FrozenSet[Atom]:
        """The body atoms as a (cached) frozenset."""
        cached = self._body_set
        if cached is None:
            cached = self._body_set = frozenset(self.body)
        return cached

    @property
    def size(self) -> int:
        """Number of atoms, used for prioritisation in saturation."""
        return len(self.body) + 1

    @property
    def width(self) -> int:
        return len(self._variables)

    # ------------------------------------------------------------------
    # guardedness (Definition 5.9)
    # ------------------------------------------------------------------
    def guards(self) -> Tuple[Atom, ...]:
        """Skolem-free body atoms mentioning every variable of the rule."""
        cached = self._guards
        if cached is None:
            variables = self._variables
            cached = self._guards = tuple(
                atom
                for atom in self.body
                if atom.is_function_free and atom.variable_set() >= variables
            )
        return cached

    @property
    def is_guarded(self) -> bool:
        """Check Definition 5.9.

        All function symbols must be Skolem symbols, the body must contain a
        Skolem-free guard, and every Skolem term must be ``f(t)`` with ``t``
        function-free and mentioning all variables of the rule.
        """
        variables = self._variables
        if variables and not self.guards():
            return False
        for atom in self.body + (self.head,):
            for arg in atom.args:
                if isinstance(arg, FunctionTerm):
                    if not arg.symbol.is_skolem:
                        return False
                    if any(isinstance(sub, FunctionTerm) for sub in arg.args):
                        return False
                    if frozenset(arg.variables()) != variables:
                        return False
        return True

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def apply(self, substitution: Substitution) -> "Rule":
        if not substitution:
            return self
        return Rule(
            substitution.apply_atoms(self.body),
            substitution.apply_atom(self.head),
        )

    def rename_apart(self, suffix: str) -> "Rule":
        """Deterministic premise renaming, cached per suffix (see TGD)."""
        cache = self._renamed
        if cache is None:
            cache = self._renamed = {}
        renamed = cache.get(suffix)
        if renamed is None:
            mapping = {
                var: Variable(f"{var.name}@{suffix}") for var in self._variables
            }
            renamed = cache[suffix] = self.apply(Substitution(mapping))
        return renamed

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Rule)
            and self._hash == other._hash
            and self.body == other.body
            and self.head == other.head
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Rule({self.body!r}, {self.head!r})"

    def __str__(self) -> str:
        body = " & ".join(str(atom) for atom in self.body) if self.body else "true"
        return f"{body} -> {self.head}"


register_cache_clearer(Rule._interned.clear)


def datalog_rules(rules: Iterable[Rule]) -> Tuple[Rule, ...]:
    """Return the Skolem-free (Datalog) rules of a collection."""
    return tuple(rule for rule in rules if rule.is_datalog_rule)


def find_guard(rule: Rule) -> Optional[Atom]:
    """Return some guard of the rule, or ``None``."""
    guards = rule.guards()
    return guards[0] if guards else None


def rule_to_datalog_tgd(rule: Rule):
    """Convert a function-free rule into the equivalent full TGD."""
    from .tgd import TGD

    if not rule.is_skolem_free:
        raise ValueError("only function-free rules correspond to Datalog TGDs")
    return TGD(rule.body, (rule.head,))


def datalog_tgd_to_rule(tgd) -> Rule:
    """Convert a full single-head-atom TGD into a rule."""
    if not tgd.is_datalog_rule:
        raise ValueError("only full TGDs with a single head atom are Datalog rules")
    return Rule(tgd.body, tgd.head[0])
