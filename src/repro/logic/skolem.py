"""Skolemization of TGDs (Section 3, "Encoding Existentials by Function Symbols").

For a TGD ``τ = ∀x [β → ∃y η]`` and each existentially quantified variable
``y ∈ y``, Skolemization introduces a fresh ``|x|``-ary Skolem symbol
``f_{τ,y}`` and replaces ``y`` by the term ``f_{τ,y}(x)``.  The Skolemization
of ``τ`` is the set of rules ``∀x [β → σ(H)]`` for each head atom ``H``.

Skolem symbols are uniquely associated with the pair ``(τ, y)``: skolemizing
the same TGD twice yields identical symbols, while distinct TGDs always get
distinct symbols.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .atoms import Atom
from .rules import Rule
from .substitution import Substitution
from .terms import FunctionSymbol, FunctionTerm, Variable
from .tgd import TGD


class SkolemFactory:
    """Produces Skolem symbols uniquely associated with ``(TGD, variable)`` pairs."""

    def __init__(self, prefix: str = "sk") -> None:
        self._prefix = prefix
        self._symbols: Dict[Tuple[TGD, Variable], FunctionSymbol] = {}
        self._counter = 0

    def symbol_for(self, tgd: TGD, variable: Variable, arity: int) -> FunctionSymbol:
        """Return the Skolem symbol for the given TGD and existential variable."""
        key = (tgd, variable)
        symbol = self._symbols.get(key)
        if symbol is None:
            symbol = FunctionSymbol(
                f"{self._prefix}{self._counter}_{variable.name}", arity, is_skolem=True
            )
            self._symbols[key] = symbol
            self._counter += 1
        return symbol

    @property
    def count(self) -> int:
        """Number of distinct Skolem symbols produced so far."""
        return self._counter


def skolemize_tgd(tgd: TGD, factory: SkolemFactory) -> Tuple[Rule, ...]:
    """Skolemize a single TGD into a set of rules (one per head atom)."""
    universal = sorted(tgd.universal_variables, key=lambda v: v.name)
    frontier_args: Tuple[Variable, ...] = tuple(universal)
    mapping: Dict[Variable, FunctionTerm] = {}
    for var in sorted(tgd.existential_variables, key=lambda v: v.name):
        symbol = factory.symbol_for(tgd, var, len(frontier_args))
        mapping[var] = FunctionTerm(symbol, frontier_args)
    substitution = Substitution(mapping)
    rules: List[Rule] = []
    for head_atom in tgd.head:
        rules.append(Rule(tgd.body, substitution.apply_atom(head_atom)))
    return tuple(rules)


def skolemize(
    tgds: Iterable[TGD], factory: SkolemFactory | None = None
) -> Tuple[Rule, ...]:
    """Skolemize a collection of TGDs, deduplicating the resulting rules."""
    factory = factory or SkolemFactory()
    seen: Dict[Rule, None] = {}
    for tgd in tgds:
        for rule in skolemize_tgd(tgd, factory):
            if rule not in seen:
                seen[rule] = None
    return tuple(seen)


def count_existentials(tgds: Iterable[TGD]) -> int:
    """Total number of existential quantifiers across the TGDs (``e`` in Thms 5.13/5.19)."""
    return sum(len(tgd.existential_variables) for tgd in tgds)


def functional_atoms(atoms: Sequence[Atom]) -> Tuple[Atom, ...]:
    """Atoms containing at least one functional term."""
    return tuple(atom for atom in atoms if not atom.is_function_free)
