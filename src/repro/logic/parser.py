"""A small text format for dependencies and facts.

The syntax is deliberately simple (inspired by DLGP / existential-rule
formats):

* variables are written with a leading question mark: ``?x``, ``?y1``;
* constants are bare identifiers: ``sw1``, ``a``;
* atoms are ``Pred(arg, ..., arg)``;
* conjunction is written with ``,`` or ``&``;
* a TGD is ``body -> head.`` or ``body -> exists ?y1, ?y2. head.``;
* a fact is a single ground atom followed by ``.``;
* ``%`` and ``#`` start a line comment.

Example::

    % the CIM example from the paper's introduction
    ACEquipment(?x) -> exists ?y. hasTerminal(?x, ?y), ACTerminal(?y).
    ACTerminal(?x) -> Terminal(?x).
    hasTerminal(?x, ?z), Terminal(?z) -> Equipment(?x).
    ACEquipment(sw1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .atoms import Atom, Predicate
from .instance import Instance
from .terms import Constant, Term, Variable
from .tgd import TGD


class ParseError(ValueError):
    """Raised when the parser encounters malformed input."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow>->)|(?P<punct>[(),.&])|(?P<qvar>\?[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)|(?P<bad>\S))"
)


@dataclass
class _Token:
    kind: str
    value: str
    line: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("%", 1)[0].split("#", 1)[0]
        pos = 0
        while pos < len(stripped):
            match = _TOKEN_RE.match(stripped, pos)
            if match is None:
                break
            pos = match.end()
            if match.lastgroup == "bad":
                raise ParseError(
                    f"unexpected character {match.group('bad')!r}", lineno
                )
            if match.lastgroup is None:
                continue
            value = match.group(match.lastgroup)
            if value is None or not value.strip():
                continue
            tokens.append(_Token(match.lastgroup, value, lineno))
    return tokens


@dataclass
class ParsedProgram:
    """The result of parsing a program text: dependencies plus a base instance."""

    tgds: Tuple[TGD, ...]
    instance: Instance = field(default_factory=Instance)

    @property
    def facts(self) -> Tuple[Atom, ...]:
        return tuple(self.instance)


class DependencyParser:
    """Recursive-descent parser for the dependency/fact format."""

    def __init__(self) -> None:
        self._predicates: Dict[Tuple[str, int], Predicate] = {}
        self._constants: Dict[str, Constant] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def parse_program(self, text: str) -> ParsedProgram:
        """Parse a whole program (TGDs and facts)."""
        tokens = _tokenize(text)
        tgds: List[TGD] = []
        instance = Instance()
        pos = 0
        while pos < len(tokens):
            statement, pos = self._read_statement(tokens, pos)
            if isinstance(statement, TGD):
                tgds.append(statement)
            else:
                if not statement.is_ground:
                    raise ParseError(f"fact {statement} contains variables")
                instance.add(statement)
        return ParsedProgram(tuple(tgds), instance)

    def parse_tgds(self, text: str) -> Tuple[TGD, ...]:
        """Parse a program and return only its TGDs (facts are rejected)."""
        program = self.parse_program(text)
        if len(program.instance) > 0:
            raise ParseError("expected only TGDs but found facts")
        return program.tgds

    def parse_tgd(self, text: str) -> TGD:
        """Parse exactly one TGD."""
        tgds = self.parse_tgds(text if text.rstrip().endswith(".") else text + ".")
        if len(tgds) != 1:
            raise ParseError(f"expected exactly one TGD, found {len(tgds)}")
        return tgds[0]

    def parse_atom(self, text: str) -> Atom:
        """Parse a single atom (which may contain variables)."""
        tokens = _tokenize(text)
        atom, pos = self._read_atom(tokens, 0)
        if pos != len(tokens):
            raise ParseError("trailing input after atom")
        return atom

    def parse_fact(self, text: str) -> Atom:
        """Parse a single ground fact."""
        atom = self.parse_atom(text.rstrip().rstrip("."))
        if not atom.is_ground:
            raise ParseError(f"fact {atom} contains variables")
        return atom

    def parse_facts(self, text: str) -> Instance:
        """Parse a program consisting only of facts."""
        program = self.parse_program(text)
        if program.tgds:
            raise ParseError("expected only facts but found TGDs")
        return program.instance

    def parse_conjunction(self, text: str) -> Tuple[Atom, ...]:
        """Parse a conjunction of atoms (atoms may contain variables).

        A trailing ``.`` is accepted; used for query bodies.
        """
        tokens = _tokenize(text)
        atoms, pos = self._read_conjunction(tokens, 0)
        if pos < len(tokens) and tokens[pos].value == ".":
            pos += 1
        if pos != len(tokens):
            raise ParseError(
                f"trailing input after conjunction: {tokens[pos].value!r}",
                tokens[pos].line,
            )
        return tuple(atoms)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _predicate(self, name: str, arity: int) -> Predicate:
        key = (name, arity)
        predicate = self._predicates.get(key)
        if predicate is None:
            predicate = Predicate(name, arity)
            self._predicates[key] = predicate
        return predicate

    def _constant(self, name: str) -> Constant:
        constant = self._constants.get(name)
        if constant is None:
            constant = Constant(name)
            self._constants[name] = constant
        return constant

    def _expect(self, tokens: Sequence[_Token], pos: int, value: str) -> int:
        if pos >= len(tokens) or tokens[pos].value != value:
            found = tokens[pos].value if pos < len(tokens) else "end of input"
            line = tokens[pos].line if pos < len(tokens) else None
            raise ParseError(f"expected {value!r} but found {found!r}", line)
        return pos + 1

    def _read_term(self, tokens: Sequence[_Token], pos: int) -> Tuple[Term, int]:
        if pos >= len(tokens):
            raise ParseError("unexpected end of input while reading a term")
        token = tokens[pos]
        if token.kind == "qvar":
            return Variable(token.value[1:]), pos + 1
        if token.kind == "ident":
            return self._constant(token.value), pos + 1
        raise ParseError(f"expected a term but found {token.value!r}", token.line)

    def _read_atom(self, tokens: Sequence[_Token], pos: int) -> Tuple[Atom, int]:
        if pos >= len(tokens) or tokens[pos].kind != "ident":
            found = tokens[pos].value if pos < len(tokens) else "end of input"
            line = tokens[pos].line if pos < len(tokens) else None
            raise ParseError(f"expected a predicate name but found {found!r}", line)
        name = tokens[pos].value
        pos += 1
        args: List[Term] = []
        if pos < len(tokens) and tokens[pos].value == "(":
            pos += 1
            if pos < len(tokens) and tokens[pos].value == ")":
                pos += 1
            else:
                while True:
                    term, pos = self._read_term(tokens, pos)
                    args.append(term)
                    if pos < len(tokens) and tokens[pos].value == ",":
                        pos += 1
                        continue
                    pos = self._expect(tokens, pos, ")")
                    break
        predicate = self._predicate(name, len(args))
        return Atom(predicate, args), pos

    def _read_conjunction(
        self, tokens: Sequence[_Token], pos: int
    ) -> Tuple[List[Atom], int]:
        atoms: List[Atom] = []
        while True:
            atom, pos = self._read_atom(tokens, pos)
            atoms.append(atom)
            if pos < len(tokens) and tokens[pos].value in {",", "&"}:
                pos += 1
                continue
            return atoms, pos

    def _read_statement(self, tokens: Sequence[_Token], pos: int):
        body, pos = self._read_conjunction(tokens, pos)
        if pos < len(tokens) and tokens[pos].kind == "arrow":
            pos += 1
            existential: List[Variable] = []
            if (
                pos < len(tokens)
                and tokens[pos].kind == "ident"
                and tokens[pos].value == "exists"
            ):
                pos += 1
                while True:
                    if pos >= len(tokens) or tokens[pos].kind != "qvar":
                        raise ParseError(
                            "expected a variable in the existential prefix",
                            tokens[pos].line if pos < len(tokens) else None,
                        )
                    existential.append(Variable(tokens[pos].value[1:]))
                    pos += 1
                    if pos < len(tokens) and tokens[pos].value == ",":
                        pos += 1
                        continue
                    pos = self._expect(tokens, pos, ".")
                    break
            head, pos = self._read_conjunction(tokens, pos)
            pos = self._expect(tokens, pos, ".")
            tgd = TGD(tuple(body), tuple(head))
            declared = set(existential)
            if declared and declared != tgd.existential_variables:
                raise ParseError(
                    "declared existential variables "
                    f"{sorted(v.name for v in declared)} do not match the head "
                    f"variables missing from the body "
                    f"{sorted(v.name for v in tgd.existential_variables)}"
                )
            return tgd, pos
        if len(body) != 1:
            raise ParseError("a fact statement must consist of a single atom")
        pos = self._expect(tokens, pos, ".")
        return body[0], pos


# ----------------------------------------------------------------------
# module-level convenience functions
# ----------------------------------------------------------------------
def parse_program(text: str) -> ParsedProgram:
    """Parse a program text with a fresh parser."""
    return DependencyParser().parse_program(text)


def parse_tgds(text: str) -> Tuple[TGD, ...]:
    """Parse TGDs with a fresh parser."""
    return DependencyParser().parse_tgds(text)


def parse_tgd(text: str) -> TGD:
    """Parse a single TGD with a fresh parser."""
    return DependencyParser().parse_tgd(text)


def parse_atom(text: str) -> Atom:
    """Parse a single atom with a fresh parser."""
    return DependencyParser().parse_atom(text)


def parse_fact(text: str) -> Atom:
    """Parse a single ground fact with a fresh parser."""
    return DependencyParser().parse_fact(text)


def parse_facts(text: str) -> Instance:
    """Parse a fact-only program with a fresh parser."""
    return DependencyParser().parse_facts(text)


def parse_conjunction(text: str) -> Tuple[Atom, ...]:
    """Parse a conjunction of atoms with a fresh parser."""
    return DependencyParser().parse_conjunction(text)
