"""Terms of the logic substrate.

The paper uses three pairwise disjoint, infinite sets of *constants*,
*variables*, and *labeled nulls* (Section 3).  When existential quantifiers
are encoded with Skolem symbols (Section 3, "Encoding Existentials by
Function Symbols"), terms may additionally be *functional terms* built from
Skolem function symbols.

All term classes are immutable, hashable, and *interned* (hash-consed):
constructing a term that was constructed before returns the identical
object, so structural equality coincides with identity and hashes are
computed once per distinct term.  Saturation, which hashes and compares
atoms and rules constantly, never pays those costs repeatedly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence, Tuple, Union

from .interning import counter, maybe_evict, register_cache_clearer


class Term:
    """Abstract base class of all terms."""

    __slots__ = ()

    @property
    def is_ground(self) -> bool:
        """Return ``True`` if the term contains no variables."""
        raise NotImplementedError

    def variables(self) -> Iterator["Variable"]:
        """Yield the variables occurring in this term."""
        raise NotImplementedError

    def constants(self) -> Iterator["Constant"]:
        """Yield the constants occurring in this term."""
        raise NotImplementedError

    def nulls(self) -> Iterator["Null"]:
        """Yield the labeled nulls occurring in this term."""
        raise NotImplementedError

    def function_symbols(self) -> Iterator["FunctionSymbol"]:
        """Yield the function symbols occurring in this term."""
        raise NotImplementedError

    @property
    def depth(self) -> int:
        """Nesting depth: 0 for atomic terms, 1 + max child depth otherwise."""
        return 0


class Constant(Term):
    """A constant symbol, e.g. ``a`` or ``sw1``."""

    __slots__ = ("name", "_hash")

    _interned: Dict[str, "Constant"] = {}
    _counter = counter("constant")

    def __new__(cls, name: str) -> "Constant":
        interned = cls._interned.get(name)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        self = super().__new__(cls)
        self.name = name
        self._hash = hash(("const", name))
        cls._interned[name] = self
        return self

    def __reduce__(self):
        return (Constant, (self.name,))

    @property
    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def constants(self) -> Iterator["Constant"]:
        yield self

    def nulls(self) -> Iterator["Null"]:
        return iter(())

    def function_symbols(self) -> Iterator["FunctionSymbol"]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Constant) and self.name == other.name
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Variable(Term):
    """A first-order variable, e.g. ``x1`` or ``y``."""

    __slots__ = ("name", "_hash")

    _interned: Dict[str, "Variable"] = {}
    _counter = counter("variable")

    def __new__(cls, name: str) -> "Variable":
        interned = cls._interned.get(name)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        self = super().__new__(cls)
        self.name = name
        self._hash = hash(("var", name))
        cls._interned[name] = self
        return self

    def __reduce__(self):
        return (Variable, (self.name,))

    @property
    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Variable"]:
        yield self

    def constants(self) -> Iterator["Constant"]:
        return iter(())

    def nulls(self) -> Iterator["Null"]:
        return iter(())

    def function_symbols(self) -> Iterator["FunctionSymbol"]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Variable) and self.name == other.name
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"


class Null(Term):
    """A labeled null introduced by a chase step with a non-full GTGD."""

    __slots__ = ("label", "_hash")

    _interned: Dict[int, "Null"] = {}
    _counter = counter("null")

    def __new__(cls, label: int) -> "Null":
        interned = cls._interned.get(label)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        self = super().__new__(cls)
        self.label = label
        self._hash = hash(("null", label))
        cls._interned[label] = self
        return self

    def __reduce__(self):
        return (Null, (self.label,))

    @property
    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def constants(self) -> Iterator["Constant"]:
        return iter(())

    def nulls(self) -> Iterator["Null"]:
        yield self

    def function_symbols(self) -> Iterator["FunctionSymbol"]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Null) and self.label == other.label
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Null({self.label})"

    def __str__(self) -> str:
        return f"_:n{self.label}"


class FunctionSymbol:
    """A function symbol; Skolem symbols are a flagged subset of these."""

    __slots__ = ("name", "arity", "is_skolem", "_hash")

    _interned: Dict[Tuple[str, int, bool], "FunctionSymbol"] = {}
    _counter = counter("function_symbol")

    def __new__(cls, name: str, arity: int, is_skolem: bool = True) -> "FunctionSymbol":
        key = (name, arity, is_skolem)
        interned = cls._interned.get(key)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        self = super().__new__(cls)
        self.name = name
        self.arity = arity
        self.is_skolem = is_skolem
        self._hash = hash(("fsym", name, arity, is_skolem))
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (FunctionSymbol, (self.name, self.arity, self.is_skolem))

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, FunctionSymbol)
            and self.name == other.name
            and self.arity == other.arity
            and self.is_skolem == other.is_skolem
        )

    def __hash__(self) -> int:
        return self._hash

    def __call__(self, *args: Term) -> "FunctionTerm":
        return FunctionTerm(self, args)

    def __repr__(self) -> str:
        return f"FunctionSymbol({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return self.name


class FunctionTerm(Term):
    """A functional term ``f(t1, ..., tn)`` (used to encode existentials)."""

    __slots__ = ("symbol", "args", "_hash", "_ground", "_variables")

    _interned: Dict[Tuple[FunctionSymbol, Tuple[Term, ...]], "FunctionTerm"] = {}
    _counter = counter("function_term")

    def __new__(cls, symbol: FunctionSymbol, args: Sequence[Term]) -> "FunctionTerm":
        args = tuple(args)
        key = (symbol, args)
        interned = cls._interned.get(key)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        if len(args) != symbol.arity:
            raise ValueError(
                f"function symbol {symbol.name} has arity {symbol.arity}, "
                f"got {len(args)} arguments"
            )
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        self = super().__new__(cls)
        self.symbol = symbol
        self.args = args
        self._hash = hash(("fterm", symbol, args))
        self._ground = all(arg.is_ground for arg in args)
        self._variables = tuple(
            var for arg in args for var in arg.variables()
        )
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (FunctionTerm, (self.symbol, self.args))

    @property
    def is_ground(self) -> bool:
        return self._ground

    def variables(self) -> Iterator[Variable]:
        return iter(self._variables)

    def constants(self) -> Iterator[Constant]:
        for arg in self.args:
            yield from arg.constants()

    def nulls(self) -> Iterator[Null]:
        for arg in self.args:
            yield from arg.nulls()

    def function_symbols(self) -> Iterator[FunctionSymbol]:
        yield self.symbol
        for arg in self.args:
            yield from arg.function_symbols()

    @property
    def depth(self) -> int:
        if not self.args:
            return 1
        return 1 + max(arg.depth for arg in self.args)

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, FunctionTerm)
            and self._hash == other._hash
            and self.symbol == other.symbol
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"FunctionTerm({self.symbol!r}, {self.args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.symbol.name}({inner})"


register_cache_clearer(Constant._interned.clear)
register_cache_clearer(Variable._interned.clear)
register_cache_clearer(Null._interned.clear)
register_cache_clearer(FunctionSymbol._interned.clear)
register_cache_clearer(FunctionTerm._interned.clear)


GroundTerm = Union[Constant, Null, FunctionTerm]


def variables_of(terms: Iterable[Term]) -> Tuple[Variable, ...]:
    """Return the distinct variables of ``terms`` in order of first occurrence."""
    seen = {}
    for term in terms:
        for var in term.variables():
            if var not in seen:
                seen[var] = None
    return tuple(seen)


def constants_of(terms: Iterable[Term]) -> Tuple[Constant, ...]:
    """Return the distinct constants of ``terms`` in order of first occurrence."""
    seen = {}
    for term in terms:
        for const in term.constants():
            if const not in seen:
                seen[const] = None
    return tuple(seen)


def nulls_of(terms: Iterable[Term]) -> Tuple[Null, ...]:
    """Return the distinct labeled nulls of ``terms`` in order of first occurrence."""
    seen = {}
    for term in terms:
        for null in term.nulls():
            if null not in seen:
                seen[null] = None
    return tuple(seen)


class TermFactory:
    """Convenience factory producing interned variables/constants and fresh nulls.

    Interning is global (see :mod:`repro.logic.interning`); the factory
    remains as the API used by parsing and generation code, and still owns
    the fresh-null counter.
    """

    def __init__(self) -> None:
        self._next_null = 0

    def constant(self, name: str) -> Constant:
        """Return the interned constant with the given name."""
        return Constant(name)

    def variable(self, name: str) -> Variable:
        """Return the interned variable with the given name."""
        return Variable(name)

    def fresh_null(self) -> Null:
        """Return a labeled null never produced by this factory before."""
        null = Null(self._next_null)
        self._next_null += 1
        return null


DEFAULT_FACTORY = TermFactory()
