"""Terms of the logic substrate.

The paper uses three pairwise disjoint, infinite sets of *constants*,
*variables*, and *labeled nulls* (Section 3).  When existential quantifiers
are encoded with Skolem symbols (Section 3, "Encoding Existentials by
Function Symbols"), terms may additionally be *functional terms* built from
Skolem function symbols.

All term classes are immutable and hashable; hashes are computed eagerly so
that saturation, which hashes atoms and rules constantly, does not pay the
cost repeatedly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple, Union


class Term:
    """Abstract base class of all terms."""

    __slots__ = ()

    @property
    def is_ground(self) -> bool:
        """Return ``True`` if the term contains no variables."""
        raise NotImplementedError

    def variables(self) -> Iterator["Variable"]:
        """Yield the variables occurring in this term."""
        raise NotImplementedError

    def constants(self) -> Iterator["Constant"]:
        """Yield the constants occurring in this term."""
        raise NotImplementedError

    def nulls(self) -> Iterator["Null"]:
        """Yield the labeled nulls occurring in this term."""
        raise NotImplementedError

    def function_symbols(self) -> Iterator["FunctionSymbol"]:
        """Yield the function symbols occurring in this term."""
        raise NotImplementedError

    @property
    def depth(self) -> int:
        """Nesting depth: 0 for atomic terms, 1 + max child depth otherwise."""
        return 0


class Constant(Term):
    """A constant symbol, e.g. ``a`` or ``sw1``."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        self.name = name
        self._hash = hash(("const", name))

    @property
    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def constants(self) -> Iterator["Constant"]:
        yield self

    def nulls(self) -> Iterator["Null"]:
        return iter(())

    def function_symbols(self) -> Iterator["FunctionSymbol"]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Variable(Term):
    """A first-order variable, e.g. ``x1`` or ``y``."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        self.name = name
        self._hash = hash(("var", name))

    @property
    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Variable"]:
        yield self

    def constants(self) -> Iterator["Constant"]:
        return iter(())

    def nulls(self) -> Iterator["Null"]:
        return iter(())

    def function_symbols(self) -> Iterator["FunctionSymbol"]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"


class Null(Term):
    """A labeled null introduced by a chase step with a non-full GTGD."""

    __slots__ = ("label", "_hash")

    def __init__(self, label: int) -> None:
        self.label = label
        self._hash = hash(("null", label))

    @property
    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def constants(self) -> Iterator["Constant"]:
        return iter(())

    def nulls(self) -> Iterator["Null"]:
        yield self

    def function_symbols(self) -> Iterator["FunctionSymbol"]:
        return iter(())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and self.label == other.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Null({self.label})"

    def __str__(self) -> str:
        return f"_:n{self.label}"


class FunctionSymbol:
    """A function symbol; Skolem symbols are a flagged subset of these."""

    __slots__ = ("name", "arity", "is_skolem", "_hash")

    def __init__(self, name: str, arity: int, is_skolem: bool = True) -> None:
        self.name = name
        self.arity = arity
        self.is_skolem = is_skolem
        self._hash = hash(("fsym", name, arity, is_skolem))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionSymbol)
            and self.name == other.name
            and self.arity == other.arity
            and self.is_skolem == other.is_skolem
        )

    def __hash__(self) -> int:
        return self._hash

    def __call__(self, *args: Term) -> "FunctionTerm":
        return FunctionTerm(self, args)

    def __repr__(self) -> str:
        return f"FunctionSymbol({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return self.name


class FunctionTerm(Term):
    """A functional term ``f(t1, ..., tn)`` (used to encode existentials)."""

    __slots__ = ("symbol", "args", "_hash", "_ground")

    def __init__(self, symbol: FunctionSymbol, args: Sequence[Term]) -> None:
        args = tuple(args)
        if len(args) != symbol.arity:
            raise ValueError(
                f"function symbol {symbol.name} has arity {symbol.arity}, "
                f"got {len(args)} arguments"
            )
        self.symbol = symbol
        self.args = args
        self._hash = hash(("fterm", symbol, args))
        self._ground = all(arg.is_ground for arg in args)

    @property
    def is_ground(self) -> bool:
        return self._ground

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def constants(self) -> Iterator[Constant]:
        for arg in self.args:
            yield from arg.constants()

    def nulls(self) -> Iterator[Null]:
        for arg in self.args:
            yield from arg.nulls()

    def function_symbols(self) -> Iterator[FunctionSymbol]:
        yield self.symbol
        for arg in self.args:
            yield from arg.function_symbols()

    @property
    def depth(self) -> int:
        if not self.args:
            return 1
        return 1 + max(arg.depth for arg in self.args)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionTerm)
            and self._hash == other._hash
            and self.symbol == other.symbol
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"FunctionTerm({self.symbol!r}, {self.args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.symbol.name}({inner})"


GroundTerm = Union[Constant, Null, FunctionTerm]


def variables_of(terms: Iterable[Term]) -> Tuple[Variable, ...]:
    """Return the distinct variables of ``terms`` in order of first occurrence."""
    seen = {}
    for term in terms:
        for var in term.variables():
            if var not in seen:
                seen[var] = None
    return tuple(seen)


def constants_of(terms: Iterable[Term]) -> Tuple[Constant, ...]:
    """Return the distinct constants of ``terms`` in order of first occurrence."""
    seen = {}
    for term in terms:
        for const in term.constants():
            if const not in seen:
                seen[const] = None
    return tuple(seen)


def nulls_of(terms: Iterable[Term]) -> Tuple[Null, ...]:
    """Return the distinct labeled nulls of ``terms`` in order of first occurrence."""
    seen = {}
    for term in terms:
        for null in term.nulls():
            if null not in seen:
                seen[null] = None
    return tuple(seen)


class TermFactory:
    """Convenience factory producing interned variables/constants and fresh nulls.

    Interning keeps term creation cheap in hot paths (parsing, blow-up
    generation) and guarantees that equal names map to identical objects,
    which speeds up equality checks in dictionaries.
    """

    def __init__(self) -> None:
        self._constants: dict[str, Constant] = {}
        self._variables: dict[str, Variable] = {}
        self._next_null = 0

    def constant(self, name: str) -> Constant:
        """Return the interned constant with the given name."""
        const = self._constants.get(name)
        if const is None:
            const = Constant(name)
            self._constants[name] = const
        return const

    def variable(self, name: str) -> Variable:
        """Return the interned variable with the given name."""
        var = self._variables.get(name)
        if var is None:
            var = Variable(name)
            self._variables[name] = var
        return var

    def fresh_null(self) -> Null:
        """Return a labeled null never produced by this factory before."""
        null = Null(self._next_null)
        self._next_null += 1
        return null


DEFAULT_FACTORY = TermFactory()
