"""Instances (finite sets of facts) and Σ-guardedness (Section 3).

A set of ground terms ``G`` is *Σ-guarded* by a fact ``R(t)`` if
``G ⊆ t ∪ consts(Σ)``; it is Σ-guarded by a set of facts if it is guarded by
some fact of the set.  A fact ``S(u)`` is Σ-guarded by a fact (or a set of
facts) if its argument set ``u`` is.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, Set, Tuple

from .atoms import Atom, Predicate
from .terms import Constant, Term


class Instance:
    """A finite, mutable set of facts with convenience accessors."""

    __slots__ = ("_facts",)

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._facts: Set[Atom] = set()
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Add a fact; return ``True`` if it was not already present."""
        if not fact.is_ground:
            raise ValueError(f"instances may only contain ground facts, got {fact}")
        if fact in self._facts:
            return False
        self._facts.add(fact)
        return True

    def update(self, facts: Iterable[Atom]) -> int:
        """Add many facts; return the number of newly added facts."""
        added = 0
        for fact in facts:
            if self.add(fact):
                added += 1
        return added

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(sorted(str(fact) for fact in self._facts))
        return f"Instance({{{inner}}})"

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def facts(self) -> FrozenSet[Atom]:
        return frozenset(self._facts)

    def base_facts(self) -> FrozenSet[Atom]:
        """The facts containing only constants."""
        return frozenset(fact for fact in self._facts if fact.is_base_fact)

    @property
    def is_base_instance(self) -> bool:
        return all(fact.is_base_fact for fact in self._facts)

    def constants(self) -> FrozenSet[Constant]:
        result: Set[Constant] = set()
        for fact in self._facts:
            result.update(fact.constants())
        return frozenset(result)

    def predicates(self) -> FrozenSet[Predicate]:
        return frozenset(fact.predicate for fact in self._facts)

    def by_predicate(self, predicate: Predicate) -> Tuple[Atom, ...]:
        return tuple(fact for fact in self._facts if fact.predicate == predicate)

    def copy(self) -> "Instance":
        clone = Instance()
        clone._facts = set(self._facts)
        return clone


# ----------------------------------------------------------------------
# Σ-guardedness
# ----------------------------------------------------------------------
def terms_guarded_by_fact(
    terms: AbstractSet[Term], fact: Atom, sigma_constants: AbstractSet[Constant]
) -> bool:
    """``True`` if the set of ground terms is Σ-guarded by the given fact.

    ``G ⊆ t ∪ consts(Σ)`` is checked as ``G - consts(Σ) ⊆ t`` so that no
    union set has to be materialized; the fact's argument set is the
    interned-atom cache (:meth:`Atom.term_set`).
    """
    return terms - sigma_constants <= fact.term_set()


def terms_guarded_by_set(
    terms: AbstractSet[Term],
    facts: Iterable[Atom],
    sigma_constants: AbstractSet[Constant],
) -> bool:
    """``True`` if the set of ground terms is Σ-guarded by some fact of the set."""
    needed = terms - sigma_constants
    return any(needed <= fact.term_set() for fact in facts)


def fact_guarded_by_fact(
    fact: Atom, guard: Atom, sigma_constants: AbstractSet[Constant]
) -> bool:
    """``True`` if ``fact`` is Σ-guarded by ``guard``."""
    return fact.term_set() - sigma_constants <= guard.term_set()


def fact_guarded_by_set(
    fact: Atom, facts: Iterable[Atom], sigma_constants: AbstractSet[Constant]
) -> bool:
    """``True`` if ``fact`` is Σ-guarded by some fact of the set."""
    needed = fact.term_set() - sigma_constants
    return any(needed <= guard.term_set() for guard in facts)


def guarded_subset(
    candidates: Iterable[Atom],
    guards: Iterable[Atom],
    sigma_constants: AbstractSet[Constant],
) -> Tuple[Atom, ...]:
    """Facts among ``candidates`` that are Σ-guarded by the set ``guards``.

    Used both by chase steps with non-full GTGDs (which copy the guarded part
    of the parent vertex into the fresh child) and by propagation steps.  The
    guard term sets come from the interned-atom cache, so the loop does one
    set difference per candidate and subset checks per pair — no per-pair set
    construction.
    """
    guard_sets = tuple(guard.term_set() for guard in guards)
    kept = []
    for fact in candidates:
        needed = fact.term_set() - sigma_constants
        if any(needed <= guard_set for guard_set in guard_sets):
            kept.append(fact)
    return tuple(kept)
