"""Tuple-generating dependencies (TGDs) and guarded TGDs.

A TGD is a first-order formula ``∀x [β → ∃y η]`` where ``β`` (the *body*) and
``η`` (the *head*) are conjunctions of atoms, the free variables of ``β`` are
``x`` and those of ``η`` are contained in ``x ∪ y`` (Section 3).

A TGD is *full* if it has no existentially quantified head variables, and
*guarded* if its body contains an atom (a *guard*) mentioning every
universally quantified variable.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

from .atoms import Atom, atom_constants, atom_variables
from .substitution import Substitution
from .terms import Constant, Variable


class TGD:
    """A tuple-generating dependency ``∀x [body → ∃y head]``.

    The universally quantified variables are exactly the variables of the
    body; the existentially quantified variables are the head variables that
    do not occur in the body.  Both conventions follow the paper, so the
    quantifier prefix never needs to be stored explicitly.
    """

    __slots__ = ("body", "head", "_hash", "_frontier", "_existential", "_universal")

    def __init__(self, body: Sequence[Atom], head: Sequence[Atom]) -> None:
        body = tuple(body)
        head = tuple(head)
        if not head:
            raise ValueError("a TGD must have a nonempty head")
        self.body = body
        self.head = head
        self._hash = hash(("tgd", body, head))
        universal = frozenset(atom_variables(body))
        head_vars = frozenset(atom_variables(head))
        self._universal = universal
        self._existential = head_vars - universal
        self._frontier = head_vars & universal

    # ------------------------------------------------------------------
    # variable structure
    # ------------------------------------------------------------------
    @property
    def universal_variables(self) -> FrozenSet[Variable]:
        """Variables quantified universally (the body variables)."""
        return self._universal

    @property
    def existential_variables(self) -> FrozenSet[Variable]:
        """Head variables that do not occur in the body."""
        return self._existential

    @property
    def frontier(self) -> FrozenSet[Variable]:
        """Body variables that also occur in the head."""
        return self._frontier

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the TGD."""
        return self._universal | self._existential

    def constants(self) -> Tuple[Constant, ...]:
        """All constants of the TGD in order of first occurrence."""
        return atom_constants(self.body + self.head)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        """``True`` if the TGD has no existentially quantified variables."""
        return not self._existential

    @property
    def is_non_full(self) -> bool:
        return bool(self._existential)

    @property
    def is_datalog_rule(self) -> bool:
        """``True`` if the TGD is full and has a single head atom."""
        return self.is_full and len(self.head) == 1

    @property
    def is_head_normal(self) -> bool:
        """Head-normal form check (Section 3).

        A TGD is in head-normal form if it is full with a single head atom, or
        it is non-full and every head atom contains at least one existentially
        quantified variable.
        """
        if self.is_full:
            return len(self.head) == 1
        existential = self._existential
        return all(
            any(var in existential for var in atom.variables()) for atom in self.head
        )

    @property
    def is_syntactic_tautology(self) -> bool:
        """Definition 5.1: head-normal form and ``body ∩ head ≠ ∅``."""
        if not self.is_head_normal:
            return False
        body_set = set(self.body)
        return any(atom in body_set for atom in self.head)

    # ------------------------------------------------------------------
    # guardedness
    # ------------------------------------------------------------------
    def guards(self) -> Tuple[Atom, ...]:
        """Body atoms containing every universally quantified variable."""
        universal = self._universal
        return tuple(
            atom for atom in self.body if universal <= atom.variable_set()
        )

    @property
    def is_guarded(self) -> bool:
        """``True`` if some body atom is a guard."""
        if not self._universal:
            return bool(self.body) or True
        return bool(self.guards())

    # ------------------------------------------------------------------
    # widths (Section 3)
    # ------------------------------------------------------------------
    @property
    def body_width(self) -> int:
        """Number of distinct variables in the body."""
        return len(self._universal)

    @property
    def head_width(self) -> int:
        """Number of distinct variables in the head."""
        return len(self._frontier) + len(self._existential)

    @property
    def width(self) -> int:
        """Number of distinct variables in the whole TGD."""
        return len(self.variables())

    @property
    def size(self) -> int:
        """Total number of atoms (used to prioritise small TGDs in saturation)."""
        return len(self.body) + len(self.head)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def apply(self, substitution: Substitution) -> "TGD":
        """Apply a substitution to body and head."""
        return TGD(
            substitution.apply_atoms(self.body),
            substitution.apply_atoms(self.head),
        )

    def rename_apart(self, suffix: str) -> "TGD":
        """Rename all variables by appending ``@suffix`` (for premise renaming)."""
        mapping = {
            var: Variable(f"{var.name}@{suffix}") for var in self.variables()
        }
        return self.apply(Substitution(mapping))

    def head_normal_form(self) -> Tuple["TGD", ...]:
        """Split this TGD into an equivalent set of TGDs in head-normal form.

        Full head atoms (atoms without existentially quantified variables) of a
        non-full TGD are emitted as separate full single-atom TGDs; the
        remaining head atoms stay together in one non-full TGD.  A full TGD is
        split into one Datalog rule per head atom.
        """
        if self.is_head_normal:
            return (self,)
        if self.is_full:
            return tuple(TGD(self.body, (atom,)) for atom in self.head)
        existential = self._existential
        existential_atoms = []
        full_atoms = []
        for atom in self.head:
            if any(var in existential for var in atom.variables()):
                existential_atoms.append(atom)
            else:
                full_atoms.append(atom)
        result = [TGD(self.body, (atom,)) for atom in full_atoms]
        if existential_atoms:
            result.append(TGD(self.body, tuple(existential_atoms)))
        return tuple(result)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TGD)
            and self._hash == other._hash
            and self.body == other.body
            and self.head == other.head
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"TGD({self.body!r}, {self.head!r})"

    def __str__(self) -> str:
        body = " & ".join(str(atom) for atom in self.body) if self.body else "true"
        head = " & ".join(str(atom) for atom in self.head)
        if self._existential:
            exist = ", ".join(sorted(f"?{v.name}" for v in self._existential))
            return f"{body} -> exists {exist}. {head}"
        return f"{body} -> {head}"


def head_normalize(tgds: Iterable[TGD]) -> Tuple[TGD, ...]:
    """Transform a collection of TGDs into head-normal form, removing duplicates."""
    seen = {}
    for tgd in tgds:
        for normalized in tgd.head_normal_form():
            if normalized not in seen:
                seen[normalized] = None
    return tuple(seen)


def bwidth(tgds: Iterable[TGD]) -> int:
    """Maximum body width over a collection of TGDs (0 if empty)."""
    return max((tgd.body_width for tgd in tgds), default=0)


def hwidth(tgds: Iterable[TGD]) -> int:
    """Maximum head width over a collection of TGDs (0 if empty)."""
    return max((tgd.head_width for tgd in tgds), default=0)


def all_guarded(tgds: Iterable[TGD]) -> bool:
    """``True`` if every TGD in the collection is guarded."""
    return all(tgd.is_guarded for tgd in tgds)


def split_full_non_full(
    tgds: Iterable[TGD],
) -> Tuple[Tuple[TGD, ...], Tuple[TGD, ...]]:
    """Partition TGDs into (full, non-full)."""
    full = []
    non_full = []
    for tgd in tgds:
        if tgd.is_full:
            full.append(tgd)
        else:
            non_full.append(tgd)
    return tuple(full), tuple(non_full)


def program_constants(tgds: Iterable[TGD]) -> FrozenSet[Constant]:
    """All constants occurring in a set of TGDs (``consts(Σ)`` in the paper)."""
    result = set()
    for tgd in tgds:
        result.update(tgd.constants())
    return frozenset(result)


def find_guard(tgd: TGD) -> Optional[Atom]:
    """Return some guard of the TGD, or ``None`` if the TGD is not guarded."""
    guards = tgd.guards()
    return guards[0] if guards else None
