"""Tuple-generating dependencies (TGDs) and guarded TGDs.

A TGD is a first-order formula ``∀x [β → ∃y η]`` where ``β`` (the *body*) and
``η`` (the *head*) are conjunctions of atoms, the free variables of ``β`` are
``x`` and those of ``η`` are contained in ``x ∪ y`` (Section 3).

A TGD is *full* if it has no existentially quantified head variables, and
*guarded* if its body contains an atom (a *guard*) mentioning every
universally quantified variable.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

from .atoms import Atom, atom_constants, atom_variables
from .interning import counter, maybe_evict, register_cache_clearer
from .substitution import Substitution
from .terms import Constant, Variable


class TGD:
    """A tuple-generating dependency ``∀x [body → ∃y head]``.

    The universally quantified variables are exactly the variables of the
    body; the existentially quantified variables are the head variables that
    do not occur in the body.  Both conventions follow the paper, so the
    quantifier prefix never needs to be stored explicitly.

    TGDs are interned like atoms and terms: a derivation that reconstructs an
    already-seen TGD gets the identical object back, so the per-clause caches
    (guards, premise renamings, canonical-form flag) are shared and the
    variable-structure analysis below runs once per distinct clause.
    """

    __slots__ = (
        "body",
        "head",
        "_hash",
        "_frontier",
        "_existential",
        "_universal",
        "_guards",
        "_renamed",
        "is_canonical",
        "_body_set",
        "_head_set",
        "_head_normal",
        "_hnf",
        "_canonical_form",
    )

    _interned: dict = {}
    _counter = counter("tgd")

    def __new__(cls, body: Sequence[Atom], head: Sequence[Atom]) -> "TGD":
        key = (tuple(body), tuple(head))
        interned = cls._interned.get(key)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        self = super().__new__(cls)
        self._init_structure(key[0], key[1])
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        cls._interned[key] = self
        return self

    def __init__(self, body: Sequence[Atom], head: Sequence[Atom]) -> None:
        # construction happens entirely in __new__ (interned); nothing to do
        pass

    def __reduce__(self):
        return (TGD, (self.body, self.head))

    def _init_structure(self, body: Tuple[Atom, ...], head: Tuple[Atom, ...]) -> None:
        if not head:
            raise ValueError("a TGD must have a nonempty head")
        self.body = body
        self.head = head
        self._hash = hash(("tgd", body, head))
        universal = frozenset(atom_variables(body))
        head_vars = frozenset(atom_variables(head))
        self._universal = universal
        self._existential = head_vars - universal
        self._frontier = head_vars & universal
        self._guards: Optional[Tuple[Atom, ...]] = None
        self._renamed: Optional[dict] = None
        #: set by :func:`repro.logic.normal_form.normalize_tgd` on its output,
        #: so renormalizing an already-canonical TGD is a no-op
        self.is_canonical = False
        self._body_set: Optional[FrozenSet[Atom]] = None
        self._head_set: Optional[FrozenSet[Atom]] = None
        self._head_normal: Optional[bool] = None
        self._hnf: Optional[Tuple["TGD", ...]] = None
        #: set by normalize_tgd: this clause's canonical-variable form,
        #: cached on the interned clause so rederivations normalize in O(1)
        self._canonical_form: Optional["TGD"] = None

    # ------------------------------------------------------------------
    # variable structure
    # ------------------------------------------------------------------
    @property
    def universal_variables(self) -> FrozenSet[Variable]:
        """Variables quantified universally (the body variables)."""
        return self._universal

    @property
    def existential_variables(self) -> FrozenSet[Variable]:
        """Head variables that do not occur in the body."""
        return self._existential

    @property
    def frontier(self) -> FrozenSet[Variable]:
        """Body variables that also occur in the head."""
        return self._frontier

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the TGD."""
        return self._universal | self._existential

    def constants(self) -> Tuple[Constant, ...]:
        """All constants of the TGD in order of first occurrence."""
        return atom_constants(self.body + self.head)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        """``True`` if the TGD has no existentially quantified variables."""
        return not self._existential

    @property
    def is_non_full(self) -> bool:
        return bool(self._existential)

    @property
    def is_datalog_rule(self) -> bool:
        """``True`` if the TGD is full and has a single head atom."""
        return self.is_full and len(self.head) == 1

    @property
    def is_head_normal(self) -> bool:
        """Head-normal form check (Section 3), cached on the interned TGD.

        A TGD is in head-normal form if it is full with a single head atom, or
        it is non-full and every head atom contains at least one existentially
        quantified variable.
        """
        cached = self._head_normal
        if cached is None:
            if self.is_full:
                cached = len(self.head) == 1
            else:
                existential = self._existential
                cached = all(
                    not existential.isdisjoint(atom.variable_set())
                    for atom in self.head
                )
            self._head_normal = cached
        return cached

    @property
    def is_syntactic_tautology(self) -> bool:
        """Definition 5.1: head-normal form and ``body ∩ head ≠ ∅``."""
        if not self.is_head_normal:
            return False
        return not self.body_atom_set.isdisjoint(self.head)

    @property
    def body_atom_set(self) -> FrozenSet[Atom]:
        """The body atoms as a (cached) frozenset."""
        cached = self._body_set
        if cached is None:
            cached = self._body_set = frozenset(self.body)
        return cached

    @property
    def head_atom_set(self) -> FrozenSet[Atom]:
        """The head atoms as a (cached) frozenset."""
        cached = self._head_set
        if cached is None:
            cached = self._head_set = frozenset(self.head)
        return cached

    # ------------------------------------------------------------------
    # guardedness
    # ------------------------------------------------------------------
    def guards(self) -> Tuple[Atom, ...]:
        """Body atoms containing every universally quantified variable."""
        cached = self._guards
        if cached is None:
            universal = self._universal
            cached = self._guards = tuple(
                atom for atom in self.body if universal <= atom.variable_set()
            )
        return cached

    @property
    def is_guarded(self) -> bool:
        """``True`` if some body atom is a guard."""
        if not self._universal:
            return bool(self.body) or True
        return bool(self.guards())

    # ------------------------------------------------------------------
    # widths (Section 3)
    # ------------------------------------------------------------------
    @property
    def body_width(self) -> int:
        """Number of distinct variables in the body."""
        return len(self._universal)

    @property
    def head_width(self) -> int:
        """Number of distinct variables in the head."""
        return len(self._frontier) + len(self._existential)

    @property
    def width(self) -> int:
        """Number of distinct variables in the whole TGD."""
        return len(self.variables())

    @property
    def size(self) -> int:
        """Total number of atoms (used to prioritise small TGDs in saturation)."""
        return len(self.body) + len(self.head)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def apply(self, substitution: Substitution) -> "TGD":
        """Apply a substitution to body and head."""
        if not substitution:
            return self
        return TGD(
            substitution.apply_atoms(self.body),
            substitution.apply_atoms(self.head),
        )

    def rename_apart(self, suffix: str) -> "TGD":
        """Rename all variables by appending ``@suffix`` (for premise renaming).

        The renaming is deterministic, so the result is cached per suffix;
        saturation renames every retained partner apart once instead of once
        per premise pair.
        """
        cache = self._renamed
        if cache is None:
            cache = self._renamed = {}
        renamed = cache.get(suffix)
        if renamed is None:
            mapping = {
                var: Variable(f"{var.name}@{suffix}") for var in self.variables()
            }
            renamed = cache[suffix] = self.apply(Substitution(mapping))
        return renamed

    def head_normal_form(self) -> Tuple["TGD", ...]:
        """Split this TGD into an equivalent set of TGDs in head-normal form.

        Full head atoms (atoms without existentially quantified variables) of a
        non-full TGD are emitted as separate full single-atom TGDs; the
        remaining head atoms stay together in one non-full TGD.  A full TGD is
        split into one Datalog rule per head atom.  Results are cached on the
        interned TGD — every re-derivation of a clause shares the split.
        """
        cached = self._hnf
        if cached is not None:
            return cached
        cached = self._head_normal_form()
        self._hnf = cached
        return cached

    def _head_normal_form(self) -> Tuple["TGD", ...]:
        if self.is_head_normal:
            return (self,)
        if self.is_full:
            return tuple(TGD(self.body, (atom,)) for atom in self.head)
        existential = self._existential
        existential_atoms = []
        full_atoms = []
        for atom in self.head:
            if any(var in existential for var in atom.variables()):
                existential_atoms.append(atom)
            else:
                full_atoms.append(atom)
        result = [TGD(self.body, (atom,)) for atom in full_atoms]
        if existential_atoms:
            result.append(TGD(self.body, tuple(existential_atoms)))
        return tuple(result)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, TGD)
            and self._hash == other._hash
            and self.body == other.body
            and self.head == other.head
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"TGD({self.body!r}, {self.head!r})"

    def __str__(self) -> str:
        body = " & ".join(str(atom) for atom in self.body) if self.body else "true"
        head = " & ".join(str(atom) for atom in self.head)
        if self._existential:
            exist = ", ".join(sorted(f"?{v.name}" for v in self._existential))
            return f"{body} -> exists {exist}. {head}"
        return f"{body} -> {head}"


register_cache_clearer(TGD._interned.clear)


def head_normalize(tgds: Iterable[TGD]) -> Tuple[TGD, ...]:
    """Transform a collection of TGDs into head-normal form, removing duplicates."""
    seen = {}
    for tgd in tgds:
        for normalized in tgd.head_normal_form():
            if normalized not in seen:
                seen[normalized] = None
    return tuple(seen)


def bwidth(tgds: Iterable[TGD]) -> int:
    """Maximum body width over a collection of TGDs (0 if empty)."""
    return max((tgd.body_width for tgd in tgds), default=0)


def hwidth(tgds: Iterable[TGD]) -> int:
    """Maximum head width over a collection of TGDs (0 if empty)."""
    return max((tgd.head_width for tgd in tgds), default=0)


def all_guarded(tgds: Iterable[TGD]) -> bool:
    """``True`` if every TGD in the collection is guarded."""
    return all(tgd.is_guarded for tgd in tgds)


def split_full_non_full(
    tgds: Iterable[TGD],
) -> Tuple[Tuple[TGD, ...], Tuple[TGD, ...]]:
    """Partition TGDs into (full, non-full)."""
    full = []
    non_full = []
    for tgd in tgds:
        if tgd.is_full:
            full.append(tgd)
        else:
            non_full.append(tgd)
    return tuple(full), tuple(non_full)


def program_constants(tgds: Iterable[TGD]) -> FrozenSet[Constant]:
    """All constants occurring in a set of TGDs (``consts(Σ)`` in the paper)."""
    result = set()
    for tgd in tgds:
        result.update(tgd.constants())
    return frozenset(result)


def find_guard(tgd: TGD) -> Optional[Atom]:
    """Return some guard of the TGD, or ``None`` if the TGD is not guarded."""
    guards = tgd.guards()
    return guards[0] if guards else None
