"""Pretty-printing of dependencies, rules, and facts.

The printers emit text in the same format accepted by
:mod:`repro.logic.parser`, so programs can round-trip through text, plus a
Datalog-style serialization (``head :- body.``) suitable for external Datalog
engines.
"""

from __future__ import annotations

from typing import Iterable, List

from .atoms import Atom
from .rules import Rule
from .terms import Constant, FunctionTerm, Term, Variable
from .tgd import TGD


def format_term(term: Term) -> str:
    """Render a term in the parser syntax (variables get a ``?`` prefix)."""
    if isinstance(term, Variable):
        return f"?{term.name}"
    if isinstance(term, Constant):
        return term.name
    if isinstance(term, FunctionTerm):
        inner = ", ".join(format_term(arg) for arg in term.args)
        return f"{term.symbol.name}({inner})"
    return str(term)


def format_atom(atom: Atom) -> str:
    """Render an atom in the parser syntax."""
    if not atom.args:
        return atom.predicate.name
    inner = ", ".join(format_term(arg) for arg in atom.args)
    return f"{atom.predicate.name}({inner})"


def format_tgd(tgd: TGD) -> str:
    """Render a TGD in the parser syntax (with an explicit ``exists`` prefix)."""
    body = ", ".join(format_atom(atom) for atom in tgd.body)
    head = ", ".join(format_atom(atom) for atom in tgd.head)
    if tgd.existential_variables:
        exist = ", ".join(
            f"?{var.name}" for var in sorted(tgd.existential_variables, key=lambda v: v.name)
        )
        return f"{body} -> exists {exist}. {head}."
    return f"{body} -> {head}."


def format_rule(rule: Rule) -> str:
    """Render a (possibly Skolemized) rule in the parser-like syntax."""
    body = ", ".join(format_atom(atom) for atom in rule.body)
    return f"{body} -> {format_atom(rule.head)}."


def format_fact(fact: Atom) -> str:
    """Render a ground fact."""
    return f"{format_atom(fact)}."


def format_program(tgds: Iterable[TGD], facts: Iterable[Atom] = ()) -> str:
    """Render a program of TGDs followed by facts."""
    lines: List[str] = [format_tgd(tgd) for tgd in tgds]
    lines.extend(format_fact(fact) for fact in facts)
    return "\n".join(lines)


def format_datalog_rule(rule: Rule) -> str:
    """Render a Datalog rule in ``head :- body.`` syntax."""
    if not rule.is_skolem_free:
        raise ValueError("only function-free rules can be serialized as Datalog")
    head = format_atom(rule.head)
    if not rule.body:
        return f"{head}."
    body = ", ".join(format_atom(atom) for atom in rule.body)
    return f"{head} :- {body}."


def format_datalog_program(rules: Iterable[Rule]) -> str:
    """Render a Datalog program in ``head :- body.`` syntax."""
    return "\n".join(format_datalog_rule(rule) for rule in rules)
