"""Canonical variable normalization of TGDs and rules (Section 6).

Subsumption checking is NP-complete, so the paper's implementation uses an
approximate check based on a normalized representation: body and head atoms
are sorted by their relations using an arbitrary but fixed ordering (ties
broken arbitrarily but deterministically), and variables are renamed so that
the *i*-th distinct occurrence of a universally quantified variable from left
to right becomes ``x_i`` and the *i*-th distinct occurrence of an
existentially quantified variable becomes ``y_i``.

Normalization also guarantees termination of the saturation loop: the set of
normalized TGDs/rules over a fixed signature and bounded widths is finite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .atoms import Atom
from .rules import Rule
from .substitution import Substitution
from .terms import Constant, FunctionTerm, Term, Variable
from .tgd import TGD


def _atom_sort_key(atom: Atom) -> Tuple:
    """Deterministic ordering on atoms: by predicate, then by argument shape.

    The argument shape distinguishes constants and functional terms but treats
    all variables alike, so the key is invariant under variable renaming; this
    keeps the normalization canonical.
    """

    def term_shape(term: Term) -> Tuple:
        if isinstance(term, Constant):
            return (0, term.name)
        if isinstance(term, FunctionTerm):
            return (1, term.symbol.name, tuple(term_shape(arg) for arg in term.args))
        return (2, "")

    return (
        atom.predicate.name,
        atom.predicate.arity,
        tuple(term_shape(arg) for arg in atom.args),
    )


def _rename_term(term: Term, mapping: Dict[Variable, Variable], prefix: str,
                 existential: frozenset, exist_prefix: str) -> Term:
    if isinstance(term, Variable):
        renamed = mapping.get(term)
        if renamed is None:
            if term in existential:
                renamed = Variable(f"{exist_prefix}{sum(1 for v in mapping.values() if v.name.startswith(exist_prefix)) + 1}")
            else:
                renamed = Variable(f"{prefix}{sum(1 for v in mapping.values() if v.name.startswith(prefix)) + 1}")
            mapping[term] = renamed
        return renamed
    if isinstance(term, FunctionTerm):
        return FunctionTerm(
            term.symbol,
            tuple(
                _rename_term(arg, mapping, prefix, existential, exist_prefix)
                for arg in term.args
            ),
        )
    return term


def _rename_atoms(
    atoms: Sequence[Atom],
    mapping: Dict[Variable, Variable],
    existential: frozenset,
) -> Tuple[Atom, ...]:
    renamed: List[Atom] = []
    for atom in atoms:
        new_args = tuple(
            _rename_term(arg, mapping, "x", existential, "y") for arg in atom.args
        )
        renamed.append(Atom(atom.predicate, new_args))
    return tuple(renamed)


def normalize_tgd(tgd: TGD) -> TGD:
    """Return the canonical-variable form of a TGD.

    Atoms are sorted deterministically and variables renamed to
    ``x1, x2, ...`` (universal) and ``y1, y2, ...`` (existential) in order of
    first occurrence.
    """
    body = tuple(sorted(tgd.body, key=_atom_sort_key))
    head = tuple(sorted(tgd.head, key=_atom_sort_key))
    mapping: Dict[Variable, Variable] = {}
    existential = frozenset(tgd.existential_variables)
    new_body = _rename_atoms(body, mapping, existential)
    new_head = _rename_atoms(head, mapping, existential)
    return TGD(new_body, new_head)


def normalize_rule(rule: Rule) -> Rule:
    """Return the canonical-variable form of a rule (head last, body sorted)."""
    body = tuple(sorted(rule.body, key=_atom_sort_key))
    mapping: Dict[Variable, Variable] = {}
    new_body = _rename_atoms(body, mapping, frozenset())
    new_head = _rename_atoms((rule.head,), mapping, frozenset())[0]
    return Rule(new_body, new_head)


def normalize(obj):
    """Normalize either a TGD or a rule."""
    if isinstance(obj, TGD):
        return normalize_tgd(obj)
    if isinstance(obj, Rule):
        return normalize_rule(obj)
    raise TypeError(f"cannot normalize object of type {type(obj).__name__}")


def deduplicate_normalized(items: Iterable) -> Tuple:
    """Deduplicate TGDs/rules up to canonical variable renaming."""
    seen: Dict = {}
    result = []
    for item in items:
        key = normalize(item)
        if key not in seen:
            seen[key] = None
            result.append(item)
    return tuple(result)


def rename_for_freshness(obj, suffix: str):
    """Rename a TGD or rule apart with the given suffix (premise renaming)."""
    return obj.rename_apart(suffix)
