"""Canonical variable normalization of TGDs and rules (Section 6).

Subsumption checking is NP-complete, so the paper's implementation uses an
approximate check based on a normalized representation: body and head atoms
are sorted by their relations using an arbitrary but fixed ordering (ties
broken arbitrarily but deterministically), and variables are renamed so that
the *i*-th distinct occurrence of a universally quantified variable from left
to right becomes ``x_i`` and the *i*-th distinct occurrence of an
existentially quantified variable becomes ``y_i``.

Normalization also guarantees termination of the saturation loop: the set of
normalized TGDs/rules over a fixed signature and bounded widths is finite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .atoms import Atom
from .rules import Rule
from .substitution import Substitution
from .terms import Constant, FunctionTerm, Term, Variable
from .tgd import TGD


def _term_shape(term: Term) -> Tuple:
    if isinstance(term, Constant):
        return (0, term.name)
    if isinstance(term, FunctionTerm):
        return (1, term.symbol.name, tuple(_term_shape(arg) for arg in term.args))
    return (2, "")


def _atom_sort_key(atom: Atom) -> Tuple:
    """Deterministic ordering on atoms: by predicate, then by argument shape.

    The argument shape distinguishes constants and functional terms but treats
    all variables alike, so the key is invariant under variable renaming; this
    keeps the normalization canonical.  Keys are cached on the (interned)
    atom, so each distinct atom computes its shape once per process.
    """
    key = atom._sort_key
    if key is None:
        key = atom._sort_key = (
            atom.predicate.name,
            atom.predicate.arity,
            tuple(_term_shape(arg) for arg in atom.args),
        )
    return key


def _rename_term(term: Term, mapping: Dict[Variable, Variable],
                 existential: frozenset, counts: List[int]) -> Term:
    """``counts`` holds the running [universal, existential] rename counters."""
    if isinstance(term, Variable):
        renamed = mapping.get(term)
        if renamed is None:
            if term in existential:
                counts[1] += 1
                renamed = Variable(f"y{counts[1]}")
            else:
                counts[0] += 1
                renamed = Variable(f"x{counts[0]}")
            mapping[term] = renamed
        return renamed
    if isinstance(term, FunctionTerm):
        return FunctionTerm(
            term.symbol,
            tuple(
                _rename_term(arg, mapping, existential, counts)
                for arg in term.args
            ),
        )
    return term


def _rename_atoms(
    atoms: Sequence[Atom],
    mapping: Dict[Variable, Variable],
    existential: frozenset,
    counts: List[int],
) -> Tuple[Atom, ...]:
    renamed: List[Atom] = []
    for atom in atoms:
        if atom.is_ground:
            renamed.append(atom)
            continue
        new_args = tuple(
            _rename_term(arg, mapping, existential, counts) for arg in atom.args
        )
        renamed.append(Atom(atom.predicate, new_args))
    return tuple(renamed)


def normalize_tgd(tgd: TGD) -> TGD:
    """Return the canonical-variable form of a TGD.

    Atoms are sorted deterministically and variables renamed to
    ``x1, x2, ...`` (universal) and ``y1, y2, ...`` (existential) in order of
    first occurrence.  Outputs carry the ``is_canonical`` flag, so
    renormalizing a clause that is already in canonical form is O(1); the
    subsumption hot path relies on this.
    """
    cached = tgd._canonical_form
    if cached is not None:
        return cached
    if tgd.is_canonical:
        tgd._canonical_form = tgd
        return tgd
    body = tuple(sorted(tgd.body, key=_atom_sort_key))
    head = tuple(sorted(tgd.head, key=_atom_sort_key))
    mapping: Dict[Variable, Variable] = {}
    counts = [0, 0]
    existential = tgd.existential_variables
    new_body = _rename_atoms(body, mapping, existential, counts)
    new_head = _rename_atoms(head, mapping, existential, counts)
    normalized = TGD(new_body, new_head)
    normalized.is_canonical = True
    normalized._canonical_form = normalized
    tgd._canonical_form = normalized
    return normalized


def normalize_rule(rule: Rule) -> Rule:
    """Return the canonical-variable form of a rule (head last, body sorted)."""
    cached = rule._canonical_form
    if cached is not None:
        return cached
    if rule.is_canonical:
        rule._canonical_form = rule
        return rule
    body = tuple(sorted(rule.body, key=_atom_sort_key))
    mapping: Dict[Variable, Variable] = {}
    counts = [0, 0]
    new_body = _rename_atoms(body, mapping, frozenset(), counts)
    new_head = _rename_atoms((rule.head,), mapping, frozenset(), counts)[0]
    normalized = Rule(new_body, new_head)
    normalized.is_canonical = True
    normalized._canonical_form = normalized
    rule._canonical_form = normalized
    return normalized


def normalize(obj):
    """Normalize either a TGD or a rule."""
    if isinstance(obj, TGD):
        return normalize_tgd(obj)
    if isinstance(obj, Rule):
        return normalize_rule(obj)
    raise TypeError(f"cannot normalize object of type {type(obj).__name__}")


def deduplicate_normalized(items: Iterable) -> Tuple:
    """Deduplicate TGDs/rules up to canonical variable renaming."""
    seen: Dict = {}
    result = []
    for item in items:
        key = normalize(item)
        if key not in seen:
            seen[key] = None
            result.append(item)
    return tuple(result)


def rename_for_freshness(obj, suffix: str):
    """Rename a TGD or rule apart with the given suffix (premise renaming)."""
    return obj.rename_apart(suffix)
