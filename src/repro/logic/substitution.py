"""Substitutions: finite mappings from variables to terms.

A substitution ``σ`` maps finitely many variables to terms (Section 3).
Applying ``σ`` to a term, an atom, or a collection thereof replaces each free
occurrence of a variable in the domain of ``σ`` with its image.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .atoms import Atom
from .terms import FunctionTerm, Term, Variable


class Substitution:
    """An immutable substitution.

    The class behaves like a read-only mapping from :class:`Variable` to
    :class:`Term` and offers application helpers for terms and atoms.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None) -> None:
        self._mapping: Dict[Variable, Term] = dict(mapping) if mapping else {}

    @classmethod
    def _from_dict(cls, mapping: Dict[Variable, Term]) -> "Substitution":
        """Wrap a dict the caller hands over (hot path: skips the defensive copy)."""
        self = cls.__new__(cls)
        self._mapping = mapping
        return self

    # ------------------------------------------------------------------
    # mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, var: Variable) -> Term:
        return self._mapping[var]

    def __contains__(self, var: Variable) -> bool:
        return var in self._mapping

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __bool__(self) -> bool:
        return bool(self._mapping)

    def get(self, var: Variable, default: Optional[Term] = None) -> Optional[Term]:
        return self._mapping.get(var, default)

    def items(self) -> Iterable[Tuple[Variable, Term]]:
        return self._mapping.items()

    def domain(self) -> frozenset:
        """The set of variables mapped by this substitution."""
        return frozenset(self._mapping)

    def range_terms(self) -> Tuple[Term, ...]:
        """The image terms of this substitution."""
        return tuple(self._mapping.values())

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply_term(self, term: Term) -> Term:
        """Apply the substitution to a term."""
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        if isinstance(term, FunctionTerm):
            new_args = tuple(self.apply_term(arg) for arg in term.args)
            if new_args == term.args:
                return term
            return FunctionTerm(term.symbol, new_args)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to an atom."""
        # Ground atoms and atoms whose variables are disjoint from the domain
        # map to themselves; with interned atoms both checks are cheap and
        # skip the per-argument recursion entirely.
        mapping = self._mapping
        if not mapping or atom.is_ground:
            return atom
        if mapping.keys().isdisjoint(atom.variable_set()):
            return atom
        changed = False
        new_args = []
        for arg in atom.args:
            if type(arg) is Variable:
                image = mapping.get(arg, arg)
            else:
                image = self.apply_term(arg)
            if image is not arg:
                changed = True
            new_args.append(image)
        if not changed:
            return atom
        return Atom(atom.predicate, new_args)

    def apply_atoms(self, atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
        """Apply the substitution to a collection of atoms (preserving order)."""
        apply = self.apply_atom
        return tuple(apply(atom) for atom in atoms)

    def __call__(self, value):
        """Apply the substitution to a term, an atom, or an iterable of atoms."""
        if isinstance(value, Atom):
            return self.apply_atom(value)
        if isinstance(value, Term):
            return self.apply_term(value)
        return self.apply_atoms(value)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def extend(self, var: Variable, term: Term) -> "Substitution":
        """Return a new substitution with ``var -> term`` added (must be fresh)."""
        if var in self._mapping and self._mapping[var] != term:
            raise ValueError(f"variable {var} already bound to {self._mapping[var]}")
        mapping = dict(self._mapping)
        mapping[var] = term
        return Substitution(mapping)

    def merge(self, other: "Substitution") -> Optional["Substitution"]:
        """Union of two substitutions; ``None`` if they disagree on a variable."""
        mapping = dict(self._mapping)
        for var, term in other.items():
            existing = mapping.get(var)
            if existing is not None and existing != term:
                return None
            mapping[var] = term
        return Substitution(mapping)

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``other ∘ self``: first apply ``self``, then ``other``.

        Formally ``(other ∘ self)(x) = other(self(x))`` for every variable
        ``x`` in the union of the two domains.
        """
        mapping: Dict[Variable, Term] = {}
        for var, term in self._mapping.items():
            mapping[var] = other.apply_term(term)
        for var, term in other.items():
            if var not in mapping:
                mapping[var] = term
        return Substitution(mapping)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Restrict the substitution to the given variables."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._mapping.items() if v in keep})

    def without(self, variables: Iterable[Variable]) -> "Substitution":
        """Drop the given variables from the substitution's domain."""
        drop = set(variables)
        return Substitution({v: t for v, t in self._mapping.items() if v not in drop})

    def is_renaming(self) -> bool:
        """``True`` if the substitution maps variables injectively to variables."""
        images = set()
        for term in self._mapping.values():
            if not isinstance(term, Variable):
                return False
            if term in images:
                return False
            images.add(term)
        return True

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {t}" for v, t in sorted(
            self._mapping.items(), key=lambda item: item[0].name))
        return f"Substitution({{{inner}}})"


EMPTY_SUBSTITUTION = Substitution()


def fresh_variable_renaming(
    variables: Iterable[Variable], suffix: str
) -> Substitution:
    """Rename each variable ``v`` to a fresh variable ``v@suffix``.

    Used to rename apart the premises of an inference (Definition 5.3 requires
    renaming any variables shared by distinct premises).
    """
    mapping = {var: Variable(f"{var.name}@{suffix}") for var in variables}
    return Substitution(mapping)
