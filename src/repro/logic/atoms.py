"""Predicates, atoms, and facts.

Following Section 3 of the paper:

* a *fact* is ``R(t)`` where ``t`` is a vector of ground terms;
* a *base fact* additionally contains only constants;
* an *atom* is ``R(t)`` where ``t`` contains no labeled nulls (it may contain
  variables, constants, and — in the Skolemized setting — functional terms).

A single :class:`Atom` class covers both notions; helper predicates classify
an atom as a fact or a base fact.

Predicates and atoms are interned (hash-consed) like terms: equal values are
identical objects, and per-atom derived data (variable tuple/set, groundness,
function-freeness) is computed once per distinct atom and shared by every
occurrence.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Sequence, Tuple

from .interning import counter, maybe_evict, register_cache_clearer
from .terms import (
    Constant,
    FunctionSymbol,
    FunctionTerm,
    Null,
    Term,
    Variable,
)


class Predicate:
    """A relation symbol with a fixed arity."""

    __slots__ = ("name", "arity", "_hash")

    _interned: Dict[Tuple[str, int], "Predicate"] = {}
    _counter = counter("predicate")

    def __new__(cls, name: str, arity: int) -> "Predicate":
        key = (name, arity)
        interned = cls._interned.get(key)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        if arity < 0:
            raise ValueError("predicate arity must be nonnegative")
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        self = super().__new__(cls)
        self.name = name
        self.arity = arity
        self._hash = hash(("pred", name, arity))
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (Predicate, (self.name, self.arity))

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Predicate)
            and self.name == other.name
            and self.arity == other.arity
        )

    def __hash__(self) -> int:
        return self._hash

    def __call__(self, *args: Term) -> "Atom":
        return Atom(self, args)

    def __repr__(self) -> str:
        return f"Predicate({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Atom:
    """An atom ``R(t1, ..., tn)``.

    Atoms are immutable, hashable, and interned.  The same class represents
    facts (all-ground argument vectors) and base facts (all-constant vectors).
    """

    __slots__ = (
        "predicate",
        "args",
        "_hash",
        "_variables",
        "_varset",
        "_ground",
        "_function_free",
        "_sort_key",
        "_term_set",
        "_null_set",
        "_depth",
        "_str",
    )

    _interned: Dict[Tuple[Predicate, Tuple[Term, ...]], "Atom"] = {}
    _counter = counter("atom")

    def __new__(cls, predicate: Predicate, args: Sequence[Term]) -> "Atom":
        args = tuple(args)
        key = (predicate, args)
        interned = cls._interned.get(key)
        if interned is not None:
            cls._counter.hits += 1
            return interned
        if len(args) != predicate.arity:
            raise ValueError(
                f"predicate {predicate.name} has arity {predicate.arity}, "
                f"got {len(args)} arguments"
            )
        cls._counter.misses += 1
        maybe_evict(cls._interned)
        self = super().__new__(cls)
        self.predicate = predicate
        self.args = args
        self._hash = hash(("atom", predicate, args))
        variables = tuple(var for arg in args for var in arg.variables())
        self._variables = variables
        self._varset = frozenset(variables)
        self._ground = not variables
        self._function_free = not any(
            isinstance(arg, FunctionTerm) for arg in args
        )
        #: lazily computed by repro.logic.normal_form._atom_sort_key; interning
        #: makes the cache global across every occurrence of the atom
        self._sort_key = None
        # lazily computed per interned atom (see term_set/null_set/depth):
        # the chase engines test Σ-guardedness and null-freshness in tight
        # loops, so these sets must not be rebuilt per check
        self._term_set = None
        self._null_set = None
        self._depth = None
        # cached __str__: the guarded chase canonicalizes types by sorting
        # their facts on the rendered string, so each distinct fact must be
        # rendered at most once per process, not once per visit
        self._str = None
        cls._interned[key] = self
        return self

    def __reduce__(self):
        return (Atom, (self.predicate, self.args))

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def is_ground(self) -> bool:
        """``True`` if no argument contains a variable (i.e. the atom is a fact)."""
        return self._ground

    @property
    def is_fact(self) -> bool:
        """Alias of :attr:`is_ground`."""
        return self._ground

    @property
    def is_base_fact(self) -> bool:
        """``True`` if every argument is a constant."""
        return all(isinstance(arg, Constant) for arg in self.args)

    @property
    def is_function_free(self) -> bool:
        """``True`` if no argument is (or contains) a functional term."""
        return self._function_free

    @property
    def has_skolem(self) -> bool:
        """``True`` if some argument contains a Skolem function symbol."""
        return any(sym.is_skolem for sym in self.function_symbols())

    @property
    def depth(self) -> int:
        """Maximum nesting depth over the arguments (0 for function-free atoms).

        Cached on the interned atom: the depth-bounded Skolem chase checks it
        for every derived fact.
        """
        cached = self._depth
        if cached is None:
            cached = self._depth = (
                max(arg.depth for arg in self.args) if self.args else 0
            )
        return cached

    # ------------------------------------------------------------------
    # symbol access
    # ------------------------------------------------------------------
    def variables(self) -> Iterator[Variable]:
        return iter(self._variables)

    def constants(self) -> Iterator[Constant]:
        for arg in self.args:
            yield from arg.constants()

    def nulls(self) -> Iterator[Null]:
        for arg in self.args:
            yield from arg.nulls()

    def function_symbols(self) -> Iterator[FunctionSymbol]:
        for arg in self.args:
            yield from arg.function_symbols()

    def variable_set(self) -> FrozenSet[Variable]:
        return self._varset

    def term_set(self) -> FrozenSet[Term]:
        """The top-level argument terms as a (cached) frozenset.

        This is the ``t`` of Σ-guardedness checks (``G ⊆ t ∪ consts(Σ)``);
        interning makes the set shared by every occurrence of the atom, so
        the chase engines' per-loop guardedness tests stop rebuilding it.
        """
        cached = self._term_set
        if cached is None:
            cached = self._term_set = frozenset(self.args)
        return cached

    def null_set(self) -> FrozenSet[Null]:
        """The labeled nulls of the atom as a (cached) frozenset."""
        cached = self._null_set
        if cached is None:
            cached = self._null_set = frozenset(self.nulls())
        return cached

    def terms(self) -> Iterator[Term]:
        """Yield the top-level argument terms."""
        return iter(self.args)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Atom)
            and self._hash == other._hash
            and self.predicate == other.predicate
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.predicate.name!r}, {self.args!r})"

    def __str__(self) -> str:
        cached = self._str
        if cached is None:
            if not self.args:
                cached = self.predicate.name
            else:
                inner = ", ".join(str(arg) for arg in self.args)
                cached = f"{self.predicate.name}({inner})"
            self._str = cached
        return cached


register_cache_clearer(Predicate._interned.clear)
register_cache_clearer(Atom._interned.clear)


def atom_variables(atoms: Iterable[Atom]) -> Tuple[Variable, ...]:
    """Distinct variables of a collection of atoms, in order of first occurrence."""
    seen = {}
    for atom in atoms:
        for var in atom._variables:
            if var not in seen:
                seen[var] = None
    return tuple(seen)


def atom_constants(atoms: Iterable[Atom]) -> Tuple[Constant, ...]:
    """Distinct constants of a collection of atoms, in order of first occurrence."""
    seen = {}
    for atom in atoms:
        for const in atom.constants():
            if const not in seen:
                seen[const] = None
    return tuple(seen)


def predicates_of(atoms: Iterable[Atom]) -> Tuple[Predicate, ...]:
    """Distinct predicates of a collection of atoms, in order of first occurrence."""
    seen = {}
    for atom in atoms:
        if atom.predicate not in seen:
            seen[atom.predicate] = None
    return tuple(seen)
