"""Hash-consing bookkeeping shared by the interned term/atom constructors.

Every structural class of the logic substrate (constants, variables, nulls,
function symbols, functional terms, predicates, atoms) is *interned*:
constructing a value that was constructed before returns the very same
object.  Consequences exploited throughout the saturation hot path:

* structural equality coincides with object identity (``a == b`` iff
  ``a is b``), so set/dict operations degenerate to pointer comparisons;
* hashes are computed once per distinct value, ever;
* derived per-value caches (variable sets, groundness flags) are shared by
  every occurrence of the value.

This module holds the per-kind hit/miss counters that the benchmark harness
reports as the *interning hit rate*, plus the cache-clearing entry point used
by long-running processes and tests.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Dict, List


class InternCounter:
    """Hit/miss counter for one interned kind (e.g. ``atom``)."""

    __slots__ = ("kind", "hits", "misses")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.hits = 0
        self.misses = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.total
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


_counters: Dict[str, InternCounter] = {}
_cache_clearers: List[Callable[[], None]] = []

#: Safety valve for long-lived processes: when one intern table reaches this
#: many entries, its oldest half is dropped before the next insert.  Losing
#: canonical representatives is harmless for correctness — every equality
#: check falls back to structural comparison — it only forfeits
#: identity-dedup for the evicted (oldest, least likely still live) values.
INTERN_TABLE_LIMIT = 1_000_000


def maybe_evict(cache: Dict) -> None:
    """Drop the oldest half of an intern table past :data:`INTERN_TABLE_LIMIT`.

    Dicts iterate in insertion order, so this is a generational eviction:
    long-lived values (predicates, input-signature terms) re-intern on next
    use and migrate to the young half, while transient saturation garbage is
    what actually falls out.
    """
    if len(cache) >= INTERN_TABLE_LIMIT:
        for key in list(islice(iter(cache), len(cache) // 2)):
            del cache[key]


def counter(kind: str) -> InternCounter:
    """Return (creating on demand) the counter for one interned kind."""
    existing = _counters.get(kind)
    if existing is None:
        existing = InternCounter(kind)
        _counters[kind] = existing
    return existing


def register_cache_clearer(clearer: Callable[[], None]) -> None:
    """Register a callback that empties one intern table."""
    _cache_clearers.append(clearer)


def intern_stats() -> Dict[str, Dict[str, object]]:
    """Per-kind hit/miss statistics plus an aggregate ``overall`` entry."""
    stats = {kind: ctr.as_dict() for kind, ctr in sorted(_counters.items())}
    hits = sum(ctr.hits for ctr in _counters.values())
    total = sum(ctr.total for ctr in _counters.values())
    stats["overall"] = {
        "hits": hits,
        "misses": total - hits,
        "hit_rate": round(hits / total, 4) if total else 0.0,
    }
    return stats


def reset_intern_counters() -> None:
    """Zero every hit/miss counter (the intern tables are kept)."""
    for ctr in _counters.values():
        ctr.reset()


def clear_intern_tables() -> None:
    """Empty every intern table, keeping the hit/miss counters.

    Existing objects stay valid and keep their cached hashes; they merely
    stop being the canonical representative, so identity-equality with
    later-constructed equal values is no longer guaranteed.  Call only at
    quiescent points (between benchmark runs, in test teardown).
    """
    for clearer in _cache_clearers:
        clearer()


def clear_intern_caches() -> None:
    """Empty every intern table and zero the counters (see clear_intern_tables)."""
    clear_intern_tables()
    reset_intern_counters()
