"""High-level service-oriented API: compile once, serve many.

The paper's intended deployment mode is to pay for the expensive saturation
of Σ exactly once and then serve arbitrarily many instances, updates, and
queries from the compiled rewriting.  This module is that surface:

**Compile** — :meth:`KnowledgeBase.compile` rewrites the GTGDs with any
registered algorithm (see :func:`repro.rewriting.available_algorithms`).
Compilation is served from an in-process cache keyed by a canonical
fingerprint of Σ (:mod:`repro.kb.cache`), so recompiling the same Σ — even
with clauses reordered or variables renamed — is free.

**Persist** — :meth:`KnowledgeBase.save` / :meth:`KnowledgeBase.load` move a
compiled knowledge base across processes as a versioned JSON artifact
(:mod:`repro.kb.format`), so a fleet of query servers never re-runs
saturation.

**Serve** — :meth:`KnowledgeBase.session` opens a
:class:`~repro.datalog.session.ReasoningSession` holding a live
materialization: ``add_facts`` propagates deltas semi-naively without
re-materializing, ``retract_facts`` un-asserts base facts by DRed
(delete/re-derive) without rebuilding, ``answer``/``answer_many`` evaluate
queries against the live fixpoint, ``snapshot`` captures an immutable
result.

One-shot use::

    from repro import KnowledgeBase, parse_program
    program = parse_program("A(?x) -> B(?x). A(a).")
    kb = KnowledgeBase.compile(program.tgds)
    kb.session(program.instance).certain_base_facts()

Session use::

    kb = KnowledgeBase.load("cim.kb.json")
    session = kb.session(initial_facts)
    session.add_facts(delta)                  # incremental, not from scratch
    session.retract_facts(stale)              # DRed unwind, not a rebuild
    session.answer_many([query1, query2])

**Query strategies** — ``answer_many`` (and every query surface above it)
accepts a keyword-only :class:`QueryOptions`.  The default ``auto`` strategy
answers bound point queries on cold sessions *goal-directedly* through the
magic-sets transformation (:mod:`repro.datalog.magic`), deriving only the
facts the query's constants demand instead of the full fixpoint; warm
sessions and unbound queries use the live materialization.  Answers are
identical under every strategy — only the work differs::

    kb.answer_many([query], facts)                                   # auto
    kb.answer_many([query], facts, options=QueryOptions("demand"))   # forced

Deprecated surface
------------------

The legacy one-shot shims — module-level :func:`answer_query` and
:func:`entailed_base_facts`, and the per-call :meth:`KnowledgeBase.answer`
and :meth:`KnowledgeBase.certain_base_facts` — predate sessions and
:class:`QueryOptions`; each call recompiled its reasoning state from
scratch.  They still work, but emit :class:`DeprecationWarning` and will be
removed once nothing depends on them.  Migrate:

* ``answer_query(tgds, I, q)`` → ``KnowledgeBase.compile(tgds).answer_many([q], I)``
* ``entailed_base_facts(tgds, I)`` → ``KnowledgeBase.compile(tgds).session(I).certain_base_facts()``
* ``kb.answer(q, I)`` → ``kb.answer_many([q], I)`` (or keep a session)
* ``kb.certain_base_facts(I)`` → ``kb.session(I).certain_base_facts()``

The blessed query surface (:class:`KnowledgeBase`, :class:`QueryOptions`,
:class:`~repro.datalog.query.ConjunctiveQuery`) is re-exported from
:mod:`repro`.

For serving *concurrent* traffic against resident compiled KBs — an asyncio
front end that micro-batches requests, a worker-process pool holding warm
sessions, and a retraction-aware answer cache — see :mod:`repro.serve` and
the ``python -m repro serve`` command.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from .datalog.engine import (
    DatalogEngine,
    MaterializationResult,
    compiled_engine,
)
from .datalog.program import DatalogProgram
from .datalog.query import ConjunctiveQuery, QueryOptions, evaluate_query
from .datalog.session import ReasoningSession
from .kb.cache import cached_rewrite, sigma_fingerprint
from .kb.format import FactSegments, read_kb_file_with_segments, write_kb_file
from .logic.atoms import Atom
from .logic.instance import Instance
from .logic.terms import Term
from .logic.tgd import TGD
from .rewriting.base import RewritingResult, RewritingSettings
from .rewriting.rewriter import rewrite


@dataclass
class KnowledgeBase:
    """A set of GTGDs paired with its Datalog rewriting.

    The rewriting is computed once and reused across base instances, which is
    the intended deployment mode: the expensive saturation depends only on Σ,
    while each query workload only pays for Datalog materialization — or, via
    :meth:`session`, only for the consequences of its deltas.
    """

    tgds: Tuple[TGD, ...]
    rewriting: RewritingResult
    #: lazy per-predicate fact segments from a ``repro-kb/v2`` file, if the
    #: KB was loaded from one that carries them (else ``None``)
    fact_segments: Optional[FactSegments] = field(
        default=None, repr=False, compare=False
    )
    _program: Optional[DatalogProgram] = field(
        default=None, repr=False, compare=False
    )

    @property
    def program(self) -> DatalogProgram:
        """The Datalog rewriting as a program (built once per knowledge base)."""
        if self._program is None:
            self._program = self.rewriting.program()
        return self._program

    @property
    def engine(self) -> DatalogEngine:
        """The shared plan-compiled engine for this knowledge base's program.

        Served from the engine cache keyed by the program's rules, so every
        session, one-shot materialization, and sibling knowledge base over
        the same rewriting reuses one set of compiled hash-join plans.
        """
        return compiled_engine(self.program)

    @property
    def fingerprint(self) -> str:
        """Canonical fingerprint of Σ (clause-order/variable-name invariant)."""
        return sigma_fingerprint(self.tgds)

    @classmethod
    def compile(
        cls,
        tgds: Iterable[TGD],
        algorithm: str = "hypdr",
        settings: Optional[RewritingSettings] = None,
        use_cache: bool = True,
    ) -> "KnowledgeBase":
        """Rewrite the GTGDs with the chosen algorithm.

        Repeated compilations of the same Σ (same algorithm and settings) are
        served from the in-process compile cache; pass ``use_cache=False`` to
        force a fresh saturation run (benchmarks, ablations).
        """
        tgds = tuple(tgds)
        if use_cache:
            result, _ = cached_rewrite(tgds, algorithm=algorithm, settings=settings)
        else:
            result = rewrite(tgds, algorithm=algorithm, settings=settings)
        return cls(tgds=tgds, rewriting=result)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(
        self, path: "str | Path", facts: Optional[Iterable[Atom]] = None
    ) -> Path:
        """Persist Σ + ``rew(Σ)`` + statistics as a versioned JSON file.

        ``facts``, when given, are stored as per-predicate ``repro-kb/v2``
        fact segments and come back lazily through :meth:`load` /
        :meth:`load_or_compile` (only the predicates a query demands are
        decoded).
        """
        return write_kb_file(path, self.tgds, self.rewriting, facts)

    @classmethod
    def load(cls, path: "str | Path") -> "KnowledgeBase":
        """Restore a knowledge base saved by :meth:`save`.

        Accepts ``repro-kb/v2`` files and legacy ``repro-kb/v1`` files
        (upgraded in memory).  Raises
        :class:`repro.kb.KnowledgeBaseFormatError` on version or integrity
        mismatches.  Fact segments, if present, are exposed as
        :attr:`fact_segments`.
        """
        tgds, rewriting, segments = read_kb_file_with_segments(path)
        return cls(tgds=tgds, rewriting=rewriting, fact_segments=segments)

    @classmethod
    def load_or_compile(
        cls,
        path: "str | Path",
        algorithm: str = "hypdr",
        settings: Optional[RewritingSettings] = None,
    ) -> "Tuple[KnowledgeBase, Instance | FactSegments]":
        """Accept either a saved KB JSON or a raw GTGD file.

        Returns ``(kb, seed_facts)`` — facts embedded in a GTGD dependency
        file are passed along so callers can seed a session with them.  A
        saved KB JSON yields its lazy v2 fact segments when it has them
        (an iterable of atoms that decodes per predicate on demand) and an
        empty instance otherwise.  This is the loading contract shared by
        the ``serve-batch`` CLI and the long-lived server
        (:mod:`repro.serve`).
        """
        from .kb.format import load_knowledge_base_payload_with_segments
        from .logic.parser import parse_program

        text = Path(path).read_text(encoding="utf-8")
        if text.lstrip().startswith("{"):
            import json

            from .kb.format import KnowledgeBaseFormatError

            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                raise KnowledgeBaseFormatError(
                    f"KB file is not valid JSON: {exc}"
                ) from exc
            tgds, rewriting, segments = load_knowledge_base_payload_with_segments(
                payload
            )
            kb = cls(tgds=tgds, rewriting=rewriting, fact_segments=segments)
            return kb, (segments if segments is not None else Instance())
        program = parse_program(text)
        kb = cls.compile(program.tgds, algorithm=algorithm, settings=settings)
        return kb, program.instance

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def session(
        self,
        instance: Instance | Iterable[Atom] = (),
        *,
        defer_materialization: bool = False,
    ) -> ReasoningSession:
        """Open a long-lived reasoning session on an initial base instance.

        The session keeps the materialization alive and bidirectional:
        ``add_facts`` deltas are propagated semi-naively and
        ``retract_facts`` deltas are unwound by DRed, both instead of
        re-materializing from scratch.  All sessions of this knowledge base
        share one engine, so rule plans are compiled once and reused.

        With ``defer_materialization=True`` the session starts cold — no
        fixpoint is computed until something needs it — which lets the
        ``auto``/``demand`` query strategies answer bound point queries
        goal-directedly without ever paying for full materialization.
        """
        return ReasoningSession(
            self.program,
            instance,
            engine=self.engine,
            defer_materialization=defer_materialization,
        )

    # ------------------------------------------------------------------
    # one-shot reasoning services (shims over the session layer)
    # ------------------------------------------------------------------
    def materialize(
        self, instance: Instance | Iterable[Atom]
    ) -> MaterializationResult:
        """Compute the fixpoint of the rewriting on a base instance."""
        return self.engine.materialize(instance)

    def certain_base_facts(
        self, instance: Instance | Iterable[Atom]
    ) -> FrozenSet[Atom]:
        """All base facts entailed by the instance and the GTGDs.

        .. deprecated:: use ``kb.session(instance).certain_base_facts()``;
           see "Deprecated surface" in the module docstring.
        """
        warnings.warn(
            "KnowledgeBase.certain_base_facts(instance) is deprecated; use "
            "kb.session(instance).certain_base_facts()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session(instance).certain_base_facts()

    def entails(self, instance: Instance | Iterable[Atom], fact: Atom) -> bool:
        """Decide ``I, Σ |= F`` for a base fact ``F`` via the rewriting."""
        if not fact.is_base_fact:
            raise ValueError("entailment is defined for base facts only")
        return self.session(instance).entails(fact)

    def answer(
        self,
        query: ConjunctiveQuery,
        instance: Instance | Iterable[Atom],
        *,
        options: Optional[QueryOptions] = None,
    ) -> FrozenSet[Tuple[Term, ...]]:
        """Answer an existential-free conjunctive query under certain-answer semantics.

        .. deprecated:: use :meth:`answer_many` (or keep a session); see
           "Deprecated surface" in the module docstring.
        """
        warnings.warn(
            "KnowledgeBase.answer(query, instance) is deprecated; use "
            "kb.answer_many([query], instance) or keep a session",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.answer_many((query,), instance, options=options)[0]

    def answer_many(
        self,
        queries: Sequence[ConjunctiveQuery],
        instance: Instance | Iterable[Atom],
        *,
        options: Optional[QueryOptions] = None,
    ) -> Tuple[FrozenSet[Tuple[Term, ...]], ...]:
        """Batched query answering over a fresh instance.

        The session behind the batch starts cold, so the default ``auto``
        strategy answers bound point queries goal-directedly (magic sets)
        without paying for full materialization; the first
        materialized-strategy query in the batch warms it once for the
        rest.  Pass ``options`` to force a strategy (see
        :class:`QueryOptions`).
        """
        session = self.session(instance, defer_materialization=True)
        return session.answer_many(queries, options=options)


def answer_query(
    tgds: Iterable[TGD],
    instance: Instance | Iterable[Atom],
    query: ConjunctiveQuery,
    algorithm: str = "hypdr",
) -> FrozenSet[Tuple[Term, ...]]:
    """One-shot query answering: rewrite, materialize, evaluate.

    .. deprecated:: use ``KnowledgeBase.compile(tgds).answer_many([query],
       instance)``; see "Deprecated surface" in the module docstring.
    """
    warnings.warn(
        "answer_query is deprecated; use "
        "KnowledgeBase.compile(tgds).answer_many([query], instance)",
        DeprecationWarning,
        stacklevel=2,
    )
    kb = KnowledgeBase.compile(tgds, algorithm=algorithm)
    return kb.answer_many((query,), instance)[0]


def entailed_base_facts(
    tgds: Iterable[TGD],
    instance: Instance | Iterable[Atom],
    algorithm: str = "hypdr",
) -> FrozenSet[Atom]:
    """One-shot computation of all entailed base facts via the rewriting.

    .. deprecated:: use ``KnowledgeBase.compile(tgds).session(instance)
       .certain_base_facts()``; see "Deprecated surface" in the module
       docstring.
    """
    warnings.warn(
        "entailed_base_facts is deprecated; use "
        "KnowledgeBase.compile(tgds).session(instance).certain_base_facts()",
        DeprecationWarning,
        stacklevel=2,
    )
    kb = KnowledgeBase.compile(tgds, algorithm=algorithm)
    return kb.session(instance).certain_base_facts()
