"""High-level convenience API.

This module ties the pieces together for the most common end-to-end use
case described in the paper's introduction: given GTGDs and a base instance,
answer existential-free conjunctive queries (or check fact entailment) by

1. rewriting the GTGDs into a Datalog program (``rew(Σ)``),
2. materializing the program on the base instance, and
3. evaluating queries over the materialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from .datalog.engine import MaterializationResult, materialize
from .datalog.program import DatalogProgram
from .datalog.query import ConjunctiveQuery, evaluate_query
from .logic.atoms import Atom
from .logic.instance import Instance
from .logic.terms import Term
from .logic.tgd import TGD
from .rewriting.base import RewritingResult, RewritingSettings
from .rewriting.rewriter import rewrite


@dataclass
class KnowledgeBase:
    """A set of GTGDs paired with its Datalog rewriting.

    The rewriting is computed once and reused across base instances, which is
    the intended deployment mode: the expensive saturation depends only on Σ,
    while each query workload only pays for Datalog materialization.
    """

    tgds: Tuple[TGD, ...]
    rewriting: RewritingResult

    @property
    def program(self) -> DatalogProgram:
        return self.rewriting.program()

    @classmethod
    def compile(
        cls,
        tgds: Iterable[TGD],
        algorithm: str = "hypdr",
        settings: Optional[RewritingSettings] = None,
    ) -> "KnowledgeBase":
        """Rewrite the GTGDs with the chosen algorithm."""
        tgds = tuple(tgds)
        result = rewrite(tgds, algorithm=algorithm, settings=settings)
        return cls(tgds=tgds, rewriting=result)

    # ------------------------------------------------------------------
    # reasoning services
    # ------------------------------------------------------------------
    def materialize(
        self, instance: Instance | Iterable[Atom]
    ) -> MaterializationResult:
        """Compute the fixpoint of the rewriting on a base instance."""
        return materialize(self.program, instance)

    def certain_base_facts(
        self, instance: Instance | Iterable[Atom]
    ) -> FrozenSet[Atom]:
        """All base facts entailed by the instance and the GTGDs."""
        result = self.materialize(instance)
        return frozenset(fact for fact in result.facts() if fact.is_base_fact)

    def entails(self, instance: Instance | Iterable[Atom], fact: Atom) -> bool:
        """Decide ``I, Σ |= F`` for a base fact ``F`` via the rewriting."""
        if not fact.is_base_fact:
            raise ValueError("entailment is defined for base facts only")
        return fact in self.materialize(instance)

    def answer(
        self,
        query: ConjunctiveQuery,
        instance: Instance | Iterable[Atom],
    ) -> FrozenSet[Tuple[Term, ...]]:
        """Answer an existential-free conjunctive query under certain-answer semantics."""
        return evaluate_query(query, self.materialize(instance))


def answer_query(
    tgds: Iterable[TGD],
    instance: Instance | Iterable[Atom],
    query: ConjunctiveQuery,
    algorithm: str = "hypdr",
) -> FrozenSet[Tuple[Term, ...]]:
    """One-shot query answering: rewrite, materialize, evaluate."""
    return KnowledgeBase.compile(tgds, algorithm=algorithm).answer(query, instance)


def entailed_base_facts(
    tgds: Iterable[TGD],
    instance: Instance | Iterable[Atom],
    algorithm: str = "hypdr",
) -> FrozenSet[Atom]:
    """One-shot computation of all entailed base facts via the rewriting."""
    return KnowledgeBase.compile(tgds, algorithm=algorithm).certain_base_facts(instance)
