"""Unit tests for the indexed fact store."""

import pytest

from repro.datalog.index import FactStore
from repro.logic.atoms import Predicate
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

R = Predicate("R", 2)
S = Predicate("S", 1)
a, b, c = Constant("a"), Constant("b"), Constant("c")
x, y = Variable("x"), Variable("y")


class TestStorage:
    def test_add_and_len(self):
        store = FactStore([R(a, b), S(a)])
        assert len(store) == 2
        assert R(a, b) in store
        assert R(b, a) not in store

    def test_duplicate_adds_are_ignored(self):
        store = FactStore()
        assert store.add(R(a, b))
        assert not store.add(R(a, b))
        assert len(store) == 1

    def test_add_all_returns_new_count(self):
        store = FactStore([R(a, b)])
        assert store.add_all([R(a, b), R(b, c)]) == 1

    def test_non_ground_facts_rejected(self):
        with pytest.raises(ValueError):
            FactStore([R(a, x)])

    def test_relation_and_counts(self):
        store = FactStore([R(a, b), R(b, c), S(a)])
        assert store.relation(R) == {R(a, b), R(b, c)}
        assert store.count(R) == 2
        assert store.counts_by_predicate()[S] == 1

    def test_copy_is_independent(self):
        store = FactStore([R(a, b)])
        clone = store.copy()
        clone.add(S(a))
        assert len(store) == 1


class TestCandidateRetrieval:
    def test_unbound_atom_returns_whole_relation(self):
        store = FactStore([R(a, b), R(b, c)])
        assert set(store.candidates(R(x, y))) == {R(a, b), R(b, c)}

    def test_constant_argument_uses_position_index(self):
        store = FactStore([R(a, b), R(b, c), R(a, c)])
        assert set(store.candidates(R(a, y))) == {R(a, b), R(a, c)}

    def test_bound_variable_uses_position_index(self):
        store = FactStore([R(a, b), R(b, c)])
        substitution = Substitution({x: b})
        assert set(store.candidates(R(x, y), substitution)) == {R(b, c)}

    def test_most_selective_position_wins(self):
        store = FactStore([R(a, b), R(a, c), R(b, c)])
        # position 0 = a has two candidates, position 1 = c has two; both
        # bound should intersect down via the smaller index and matching
        candidates = set(store.candidates(R(a, c)))
        assert R(a, c) in candidates
        assert len(candidates) <= 2

    def test_unknown_term_yields_no_candidates(self):
        store = FactStore([R(a, b)])
        assert list(store.candidates(R(c, y))) == []

    def test_unknown_predicate_yields_no_candidates(self):
        store = FactStore([R(a, b)])
        assert list(store.candidates(S(x))) == []
