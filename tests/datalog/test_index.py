"""Unit tests for the indexed fact store."""

import pytest

from repro.datalog.index import FactStore
from repro.logic.atoms import Predicate
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

R = Predicate("R", 2)
S = Predicate("S", 1)
a, b, c = Constant("a"), Constant("b"), Constant("c")
x, y = Variable("x"), Variable("y")


class TestStorage:
    def test_add_and_len(self):
        store = FactStore([R(a, b), S(a)])
        assert len(store) == 2
        assert R(a, b) in store
        assert R(b, a) not in store

    def test_duplicate_adds_are_ignored(self):
        store = FactStore()
        assert store.add(R(a, b))
        assert not store.add(R(a, b))
        assert len(store) == 1

    def test_add_all_returns_new_count(self):
        store = FactStore([R(a, b)])
        assert store.add_all([R(a, b), R(b, c)]) == 1

    def test_non_ground_facts_rejected(self):
        with pytest.raises(ValueError):
            FactStore([R(a, x)])

    def test_relation_and_counts(self):
        store = FactStore([R(a, b), R(b, c), S(a)])
        assert store.relation(R) == {R(a, b), R(b, c)}
        assert store.count(R) == 2
        assert store.counts_by_predicate()[S] == 1

    def test_copy_is_independent(self):
        store = FactStore([R(a, b)])
        clone = store.copy()
        clone.add(S(a))
        assert len(store) == 1


class TestCandidateRetrieval:
    def test_unbound_atom_returns_whole_relation(self):
        store = FactStore([R(a, b), R(b, c)])
        assert set(store.candidates(R(x, y))) == {R(a, b), R(b, c)}

    def test_constant_argument_uses_position_index(self):
        store = FactStore([R(a, b), R(b, c), R(a, c)])
        assert set(store.candidates(R(a, y))) == {R(a, b), R(a, c)}

    def test_bound_variable_uses_position_index(self):
        store = FactStore([R(a, b), R(b, c)])
        substitution = Substitution({x: b})
        assert set(store.candidates(R(x, y), substitution)) == {R(b, c)}

    def test_most_selective_position_wins(self):
        store = FactStore([R(a, b), R(a, c), R(b, c)])
        # position 0 = a has two candidates, position 1 = c has two; both
        # bound should intersect down via the smaller index and matching
        candidates = set(store.candidates(R(a, c)))
        assert R(a, c) in candidates
        assert len(candidates) <= 2

    def test_unknown_term_yields_no_candidates(self):
        store = FactStore([R(a, b)])
        assert list(store.candidates(R(c, y))) == []

    def test_unknown_predicate_yields_no_candidates(self):
        store = FactStore([R(a, b)])
        assert list(store.candidates(S(x))) == []


class TestBaseDerivedBookkeeping:
    def test_constructor_facts_are_base(self):
        store = FactStore([R(a, b), S(a)])
        assert store.is_base(R(a, b))
        assert store.base_count == 2
        assert store.derived_count == 0
        assert store.base_facts() == {R(a, b), S(a)}

    def test_add_defaults_to_derived(self):
        store = FactStore()
        store.add(R(a, b))
        assert not store.is_base(R(a, b))
        assert store.base_count == 0
        assert store.derived_count == 1

    def test_add_all_base_promotes_existing_derived(self):
        store = FactStore()
        store.add(R(a, b))
        # asserting an already-derived fact adds nothing but promotes it
        assert store.add_all([R(a, b)], base=True) == 0
        assert store.is_base(R(a, b))
        assert store.derived_count == 0

    def test_mark_base_reports_promotion(self):
        store = FactStore()
        store.add(R(a, b))
        assert store.mark_base(R(a, b))
        assert not store.mark_base(R(a, b))

    def test_mark_base_rejects_absent_fact(self):
        store = FactStore()
        with pytest.raises(KeyError):
            store.mark_base(R(a, b))

    def test_unmark_base_demotes_without_removing(self):
        store = FactStore([R(a, b)])
        assert store.unmark_base(R(a, b))
        assert R(a, b) in store
        assert not store.is_base(R(a, b))
        assert not store.unmark_base(R(a, b))

    def test_copy_preserves_base_marks(self):
        store = FactStore([R(a, b)])
        store.add(R(b, c))
        clone = store.copy()
        assert clone.is_base(R(a, b))
        assert not clone.is_base(R(b, c))
        clone.unmark_base(R(a, b))
        assert store.is_base(R(a, b))


class TestRemoval:
    def test_remove_updates_len_and_membership(self):
        store = FactStore([R(a, b), R(b, c)])
        assert store.remove(R(a, b))
        assert len(store) == 1
        assert R(a, b) not in store
        assert store.relation(R) == {R(b, c)}

    def test_remove_absent_fact_is_a_noop(self):
        store = FactStore([R(a, b)])
        assert not store.remove(R(b, a))
        assert not store.remove(S(a))
        assert len(store) == 1

    def test_remove_trims_position_index(self):
        store = FactStore([R(a, b), R(a, c)])
        store.remove(R(a, b))
        assert set(store.candidates(R(a, y))) == {R(a, c)}
        assert list(store.candidates(R(x, b))) == []

    def test_remove_trims_key_index_buckets(self):
        store = FactStore([R(a, b), R(a, c)])
        # force a key-index bucket on position 0, then shrink it
        # (single-column keys are the bare term ID, see row_key)
        a_id = store.terms.lookup(a)

        def bucket():
            rows = store.key_index(R, (0,)).get(a_id)
            if rows is None:
                return None
            return {store.decode_row(R, row) for row in rows}

        assert bucket() == {R(a, b), R(a, c)}
        store.remove(R(a, b))
        assert bucket() == {R(a, c)}
        store.remove(R(a, c))
        assert bucket() is None

    def test_remove_discards_base_mark(self):
        store = FactStore([R(a, b)])
        store.remove(R(a, b))
        assert store.base_count == 0
        store.add(R(a, b))
        assert not store.is_base(R(a, b))
